// Wire protocol for the tsunami network front end: length-prefixed binary
// frames over a byte stream (TCP), shared by TsunamiServer and
// TsunamiClient.
//
// Every frame is a fixed 32-byte little-endian header followed by
// `payload_len` payload bytes:
//
//   offset  size  field
//        0     4  magic            "TSNF" (0x464E5354 read little-endian)
//        4     2  version          protocol version (kWireVersion)
//        6     1  type             FrameType
//        7     1  flags            reserved, must be 0
//        8     8  request_id       client-chosen; echoed on the response
//       16     4  payload_len      bytes following the header
//       20     4  priority         int32; request frames only
//       24     8  deadline_micros  remaining deadline budget at send time
//                                  (0 = none); request frames only
//
// Requests are pipelined: a client may send many kQuery frames before
// reading any response, and responses come back in *completion* order, not
// submission order — the request_id is the correlation key. Payloads are
// BinaryWriter varint encodings (src/io/serializer.h), so a torn or
// malformed payload is detected by the reader's latched-ok protocol and
// answered with a typed kError frame, never a crash.
//
// The header is deliberately parseable without the payload: the server
// rejects an oversized `payload_len` before buffering a single payload
// byte, and a bad magic/version fails the connection closed immediately
// (stream sync is gone; nothing after it can be trusted).
#ifndef TSUNAMI_NET_WIRE_H_
#define TSUNAMI_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/types.h"
#include "src/serve/query_service.h"

namespace tsunami {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x464E5354;  // "TSNF" little-endian.
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 32;

/// Hard ceiling a conforming peer may declare in `payload_len`; servers may
/// configure a lower one. Anything above is an attack or corruption, not a
/// query.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;

enum class FrameType : uint8_t {
  kQuery = 1,   // client -> server: EncodeQueryPayload
  kResult = 2,  // server -> client: EncodeResultPayload
  kError = 3,   // server -> client: EncodeErrorPayload
  kPing = 4,    // either direction; answered with kPong, same request_id
  kPong = 5,
  kInsert = 6,     // client -> server: EncodeInsertPayload (row batch)
  kInsertAck = 7,  // server -> client: EncodeInsertAckPayload
};

/// Typed wire-level error causes carried by kError frames (and produced
/// locally by the client for transport failures).
enum class WireError : uint8_t {
  kNone = 0,
  /// Frame payload failed to decode. The frame boundary was still sound, so
  /// the connection stays open.
  kMalformedFrame = 1,
  /// Declared payload_len above the server's cap. Connection closes (the
  /// server refuses to buffer or skip the body).
  kOversizedFrame = 2,
  /// Unknown protocol version. Connection closes.
  kBadVersion = 3,
  /// Frame type the receiver does not accept (e.g. kResult sent to a
  /// server). Connection stays open.
  kBadType = 4,
  /// Admission control: service queue full (AdmissionOutcome::kQueueFull).
  /// Retryable after backoff.
  kQueueFull = 5,
  /// Admission control: deadline infeasible. Not retryable with the same
  /// deadline.
  kDeadlineInfeasible = 6,
  /// Per-client in-flight cap (wire or service layer). Retryable: room
  /// opens as this client's own queries finish.
  kClientBusy = 7,
  /// Server is draining; it finishes in-flight work but admits nothing
  /// new. Retryable against another instance, not this one.
  kDraining = 8,
  /// kInsert sent to a server without an ingest-capable store. Not
  /// retryable here: this instance will never accept writes.
  kReadOnly = 9,
  /// Durable mode only: the batch could not be made durable (WAL failed —
  /// torn write, fsync failure). Fail closed: the rows were NOT acked and
  /// the store is write-disabled. Not retryable against this instance, and
  /// a retry elsewhere risks a duplicate — the rows may still be visible
  /// (and may even survive) here.
  kDurabilityFailed = 10,
  /// Resource governor refused the work *before* admission (memory budget,
  /// WAL-disk budget, or a latched ENOSPC store): nothing was applied or
  /// logged, so a retry after backoff is safe — the store re-arms itself
  /// once pressure clears (backlog folded, disk space freed).
  kResourceExhausted = 11,
};

const char* ToString(WireError error);

/// Errors a client may retry (with backoff) without risking a duplicate
/// answer or hammering a dead path: the request was *not* admitted.
bool IsRetryable(WireError error);

struct FrameHeader {
  uint16_t version = kWireVersion;
  FrameType type = FrameType::kQuery;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  int32_t priority = 0;
  uint64_t deadline_micros = 0;
};

/// Appends header + payload to `out` as one encoded frame.
void AppendFrame(const FrameHeader& header, std::string_view payload,
                 std::string* out);

enum class HeaderParse : uint8_t {
  kOk = 0,
  kNeedMore,    // Fewer than kFrameHeaderSize bytes buffered.
  kBadMagic,    // Not a tsunami frame; stream sync is lost.
  kBadVersion,  // Protocol version the receiver cannot speak.
};

/// Parses the frame header at the front of `buffer` (payload not required
/// to be buffered yet).
HeaderParse ParseFrameHeader(std::string_view buffer, FrameHeader* out);

// --- Payload codecs (BinaryWriter/BinaryReader varint encodings) ---------

std::string EncodeQueryPayload(const Query& query);
/// Strict decode: returns false on truncation, trailing bytes, out-of-range
/// enum values, or absurd element counts. `*out` is unspecified on failure.
bool DecodeQueryPayload(std::string_view payload, Query* out);

/// A completed (or fail-closed) query answer plus its serving metadata.
struct ResultPayload {
  QueryOutcome outcome = QueryOutcome::kCompleted;
  double server_latency_seconds = 0.0;
  QueryResult result;
};

std::string EncodeResultPayload(const ResultPayload& payload);
bool DecodeResultPayload(std::string_view payload, ResultPayload* out);

std::string EncodeErrorPayload(WireError error, std::string_view message);
bool DecodeErrorPayload(std::string_view payload, WireError* error,
                        std::string* message);

/// Row batch for a kInsert frame: every row carries one Value per store
/// dimension. Bounded (kMaxInsertRows / kMaxInsertDims) so a hostile count
/// can never balloon the decode.
inline constexpr int64_t kMaxInsertRows = 65536;
inline constexpr int64_t kMaxInsertDims = 4096;

std::string EncodeInsertPayload(const std::vector<std::vector<Value>>& rows);
bool DecodeInsertPayload(std::string_view payload,
                         std::vector<std::vector<Value>>* out);

/// kInsertAck: rows the server appended (all-or-nothing today) and the
/// store version observed after the append — a client can tell when its
/// writes have been folded by watching the version advance.
struct InsertAckPayload {
  int64_t accepted = 0;
  uint64_t store_version = 0;
};

std::string EncodeInsertAckPayload(const InsertAckPayload& payload);
bool DecodeInsertAckPayload(std::string_view payload, InsertAckPayload* out);

}  // namespace net
}  // namespace tsunami

#endif  // TSUNAMI_NET_WIRE_H_
