#include "src/query/bool_expr.h"

#include <algorithm>
#include <utility>

namespace tsunami {

Box Box::All(int dims) {
  Box box;
  box.lo.assign(dims, kValueMin);
  box.hi.assign(dims, kValueMax);
  return box;
}

bool Box::Empty() const {
  for (int d = 0; d < dims(); ++d) {
    if (lo[d] > hi[d]) return true;
  }
  return false;
}

bool Box::Contains(const std::vector<Value>& point) const {
  for (int d = 0; d < dims(); ++d) {
    if (point[d] < lo[d] || point[d] > hi[d]) return false;
  }
  return true;
}

void Box::Intersect(const Predicate& p) {
  lo[p.dim] = std::max(lo[p.dim], p.lo);
  hi[p.dim] = std::min(hi[p.dim], p.hi);
}

Query Box::ToQuery(const Query& proto) const {
  Query q;
  q.agg = proto.agg;
  q.agg_dim = proto.agg_dim;
  q.aggs = proto.aggs;
  q.type = proto.type;
  for (int d = 0; d < dims(); ++d) {
    if (lo[d] != kValueMin || hi[d] != kValueMax) {
      q.filters.push_back(Predicate{d, lo[d], hi[d]});
    }
  }
  return q;
}

BoolExpr BoolExpr::Leaf(Predicate p) {
  BoolExpr e;
  e.kind = Kind::kLeaf;
  e.leaf = p;
  return e;
}

BoolExpr BoolExpr::And(std::vector<BoolExpr> cs) {
  BoolExpr e;
  e.kind = Kind::kAnd;
  e.children = std::move(cs);
  return e;
}

BoolExpr BoolExpr::Or(std::vector<BoolExpr> cs) {
  BoolExpr e;
  e.kind = Kind::kOr;
  e.children = std::move(cs);
  return e;
}

BoolExpr BoolExpr::Not(BoolExpr c) {
  BoolExpr e;
  e.kind = Kind::kNot;
  e.children.push_back(std::move(c));
  return e;
}

bool BoolExpr::IsConjunctive() const {
  if (kind == Kind::kLeaf) return true;
  if (kind != Kind::kAnd) return false;
  for (const BoolExpr& c : children) {
    if (c.kind != Kind::kLeaf) return false;
  }
  return true;
}

bool BoolExpr::Matches(const std::vector<Value>& point) const {
  switch (kind) {
    case Kind::kLeaf:
      return leaf.Matches(point[leaf.dim]);
    case Kind::kAnd:
      for (const BoolExpr& c : children) {
        if (!c.Matches(point)) return false;
      }
      return true;
    case Kind::kOr:
      for (const BoolExpr& c : children) {
        if (c.Matches(point)) return true;
      }
      return false;
    case Kind::kNot:
      return !children[0].Matches(point);
  }
  return false;
}

std::string BoolExpr::ToString() const {
  switch (kind) {
    case Kind::kLeaf:
      return "d" + std::to_string(leaf.dim) + " in [" +
             std::to_string(leaf.lo) + ", " + std::to_string(leaf.hi) + "]";
    case Kind::kNot:
      return "NOT " + children[0].ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      if (children.empty()) return kind == Kind::kAnd ? "TRUE" : "FALSE";
      std::string sep = kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i].ToString();
      }
      return out + ")";
    }
  }
  return "";
}

namespace {

// Rewrites `expr` into negation normal form: NOT is eliminated entirely.
// The negation of a leaf `lo <= x <= hi` is the union of the two outside
// ranges; sides that fall off the value domain are dropped.
BoolExpr ToNnf(const BoolExpr& expr, bool negate) {
  switch (expr.kind) {
    case BoolExpr::Kind::kLeaf: {
      if (!negate) return expr;
      // An empty leaf (lo > hi) negates to all-space.
      if (expr.leaf.lo > expr.leaf.hi) {
        return BoolExpr::Leaf(Predicate{expr.leaf.dim, kValueMin, kValueMax});
      }
      std::vector<BoolExpr> parts;
      if (expr.leaf.lo > kValueMin) {
        parts.push_back(BoolExpr::Leaf(
            Predicate{expr.leaf.dim, kValueMin, expr.leaf.lo - 1}));
      }
      if (expr.leaf.hi < kValueMax) {
        parts.push_back(BoolExpr::Leaf(
            Predicate{expr.leaf.dim, expr.leaf.hi + 1, kValueMax}));
      }
      // A full-domain leaf negates to the empty OR, i.e. `false`.
      return BoolExpr::Or(std::move(parts));
    }
    case BoolExpr::Kind::kNot:
      return ToNnf(expr.children[0], !negate);
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr: {
      bool is_and = (expr.kind == BoolExpr::Kind::kAnd) != negate;
      std::vector<BoolExpr> cs;
      cs.reserve(expr.children.size());
      for (const BoolExpr& c : expr.children) cs.push_back(ToNnf(c, negate));
      return is_and ? BoolExpr::And(std::move(cs))
                    : BoolExpr::Or(std::move(cs));
    }
  }
  return expr;
}

// Expands an NNF expression into a union of (possibly overlapping) boxes.
// Returns false if the expansion exceeds `max_boxes` at any point.
bool ExpandToBoxes(const BoolExpr& expr, int dims, int64_t max_boxes,
                   std::vector<Box>* out) {
  switch (expr.kind) {
    case BoolExpr::Kind::kLeaf: {
      Box box = Box::All(dims);
      box.Intersect(expr.leaf);
      if (!box.Empty()) out->push_back(std::move(box));
      return true;
    }
    case BoolExpr::Kind::kOr: {
      for (const BoolExpr& c : expr.children) {
        if (!ExpandToBoxes(c, dims, max_boxes, out)) return false;
        if (static_cast<int64_t>(out->size()) > max_boxes) return false;
      }
      return true;
    }
    case BoolExpr::Kind::kAnd: {
      // Cross product of the children's box lists, intersecting as we go.
      std::vector<Box> acc = {Box::All(dims)};
      for (const BoolExpr& c : expr.children) {
        std::vector<Box> child_boxes;
        if (!ExpandToBoxes(c, dims, max_boxes, &child_boxes)) return false;
        std::vector<Box> next;
        for (const Box& a : acc) {
          for (const Box& b : child_boxes) {
            Box merged = a;
            for (int d = 0; d < dims; ++d) {
              merged.lo[d] = std::max(merged.lo[d], b.lo[d]);
              merged.hi[d] = std::min(merged.hi[d], b.hi[d]);
            }
            if (!merged.Empty()) next.push_back(std::move(merged));
            if (static_cast<int64_t>(next.size()) > max_boxes) return false;
          }
        }
        acc = std::move(next);
        if (acc.empty()) break;  // Contradiction: whole AND is empty.
      }
      out->insert(out->end(), std::make_move_iterator(acc.begin()),
                  std::make_move_iterator(acc.end()));
      return static_cast<int64_t>(out->size()) <= max_boxes;
    }
    case BoolExpr::Kind::kNot:
      // Unreachable after NNF.
      return false;
  }
  return false;
}

}  // namespace

void SubtractBox(const Box& a, const Box& b, std::vector<Box>* out) {
  // No overlap: a survives whole.
  Box overlap = a;
  for (int d = 0; d < a.dims(); ++d) {
    overlap.lo[d] = std::max(overlap.lo[d], b.lo[d]);
    overlap.hi[d] = std::min(overlap.hi[d], b.hi[d]);
  }
  if (overlap.Empty()) {
    out->push_back(a);
    return;
  }
  // Carve off the parts of `a` outside the overlap, one dimension at a
  // time; `rest` shrinks to the overlap as we go, so emitted pieces are
  // pairwise disjoint.
  Box rest = a;
  for (int d = 0; d < a.dims(); ++d) {
    if (rest.lo[d] < overlap.lo[d]) {
      Box below = rest;
      below.hi[d] = overlap.lo[d] - 1;
      out->push_back(std::move(below));
      rest.lo[d] = overlap.lo[d];
    }
    if (rest.hi[d] > overlap.hi[d]) {
      Box above = rest;
      above.lo[d] = overlap.hi[d] + 1;
      out->push_back(std::move(above));
      rest.hi[d] = overlap.hi[d];
    }
  }
  // `rest` is now exactly the overlap — dropped.
}

NormalizeResult ToDisjointBoxes(const BoolExpr& expr, int dims,
                                const NormalizeLimits& limits) {
  NormalizeResult result;
  BoolExpr nnf = ToNnf(expr, /*negate=*/false);
  std::vector<Box> raw;
  if (!ExpandToBoxes(nnf, dims, limits.max_boxes, &raw)) {
    result.error = "DNF expansion exceeds " +
                   std::to_string(limits.max_boxes) + " boxes";
    return result;
  }
  // Make the union disjoint: each new box keeps only the part not covered
  // by boxes already accepted.
  std::vector<Box>& disjoint = result.boxes;
  for (const Box& box : raw) {
    std::vector<Box> fragments = {box};
    for (const Box& seen : disjoint) {
      std::vector<Box> next;
      for (const Box& frag : fragments) SubtractBox(frag, seen, &next);
      fragments = std::move(next);
      if (fragments.empty()) break;
      if (static_cast<int64_t>(disjoint.size() + fragments.size()) >
          limits.max_boxes) {
        result.error = "disjoint decomposition exceeds " +
                       std::to_string(limits.max_boxes) + " boxes";
        return result;
      }
    }
    disjoint.insert(disjoint.end(),
                    std::make_move_iterator(fragments.begin()),
                    std::make_move_iterator(fragments.end()));
  }
  result.ok = true;
  return result;
}

QueryResult ExecuteBoxUnion(const MultiDimIndex& index,
                            const std::vector<Box>& boxes,
                            const Query& proto) {
  QueryResult total = InitResult(proto);
  for (const Box& box : boxes) {
    if (box.Empty()) continue;
    MergeQueryResults(proto, index.Execute(box.ToQuery(proto)), &total);
  }
  return total;
}

}  // namespace tsunami
