// Disjunctive filter support: boolean predicate trees (AND / OR / NOT over
// range and equality predicates), normalization to disjoint axis-aligned
// boxes, and execution of box unions over any MultiDimIndex.
//
// The paper's query class (§2) is conjunctive; real analytics statements
// also use OR, IN (...), and NOT. Every such WHERE clause over range
// predicates denotes a finite union of axis-aligned rectangles, so it can be
// served exactly by a conjunctive-rectangle index: normalize the expression
// to DNF, turn each conjunct into a box, make the boxes pairwise disjoint
// (so COUNT/SUM do not double-count), and run one index query per box.
#ifndef TSUNAMI_QUERY_BOOL_EXPR_H_
#define TSUNAMI_QUERY_BOOL_EXPR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"

namespace tsunami {

/// An axis-aligned box over all `d` dimensions, inclusive on both ends.
/// Dimensions a filter does not constrain hold [kValueMin, kValueMax].
struct Box {
  std::vector<Value> lo;
  std::vector<Value> hi;

  /// The all-space box over `dims` dimensions.
  static Box All(int dims);

  int dims() const { return static_cast<int>(lo.size()); }
  bool Empty() const;
  bool Contains(const std::vector<Value>& point) const;

  /// Narrows this box by `lo <= dim <= hi` (intersection).
  void Intersect(const Predicate& p);

  /// The conjunctive Query this box denotes: one filter per dimension that
  /// is narrower than the full value domain. Aggregate settings are copied
  /// from `proto`.
  Query ToQuery(const Query& proto) const;

  bool operator==(const Box&) const = default;
};

/// A boolean combination of single-dimension range predicates.
///
/// Leaves hold a bound Predicate; kNot has exactly one child; kAnd / kOr
/// have one or more. An empty kAnd is `true`; an empty kOr is `false`.
struct BoolExpr {
  enum class Kind { kLeaf, kAnd, kOr, kNot };

  Kind kind = Kind::kAnd;  // Default: empty AND == `true` (no WHERE clause).
  Predicate leaf;
  std::vector<BoolExpr> children;

  static BoolExpr Leaf(Predicate p);
  static BoolExpr And(std::vector<BoolExpr> cs);
  static BoolExpr Or(std::vector<BoolExpr> cs);
  static BoolExpr Not(BoolExpr c);

  /// True when the expression is a (possibly empty) conjunction of leaves —
  /// the paper's query class, servable by one index query.
  bool IsConjunctive() const;

  /// Evaluates the expression on one point (reference semantics for tests
  /// and for scanning delta buffers).
  bool Matches(const std::vector<Value>& point) const;

  /// Compact notation, e.g. "(d0 in [3, 8] AND NOT d1 in [5, 5])".
  std::string ToString() const;
};

/// Limits for normalization. DNF can blow up exponentially in the number of
/// OR alternations; conversion fails cleanly past the cap instead of eating
/// unbounded memory.
struct NormalizeLimits {
  int64_t max_boxes = 1 << 14;
};

/// Normalizes `expr` over `dims` dimensions into *pairwise disjoint* boxes
/// whose union contains exactly the points matching `expr`. Empty output
/// with ok=true means the expression is unsatisfiable.
struct NormalizeResult {
  bool ok = false;
  std::string error;
  std::vector<Box> boxes;
};
NormalizeResult ToDisjointBoxes(const BoolExpr& expr, int dims,
                                const NormalizeLimits& limits = {});

/// Subtracts `b` from `a`: up to 2*dims disjoint boxes covering exactly
/// a \ b. Appends to `out`.
void SubtractBox(const Box& a, const Box& b, std::vector<Box>* out);

/// Executes the union of pairwise-disjoint boxes over `index`, combining
/// per-box results into one QueryResult (counters add; MIN/MAX combine by
/// min/max). `proto` supplies the aggregate list (all aggregates of a
/// multi-aggregate proto are combined).
QueryResult ExecuteBoxUnion(const MultiDimIndex& index,
                            const std::vector<Box>& boxes,
                            const Query& proto);

}  // namespace tsunami

#endif  // TSUNAMI_QUERY_BOOL_EXPR_H_
