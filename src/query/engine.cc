#include "src/query/engine.h"

#include <type_traits>

#include "src/common/stats.h"
#include "src/serve/query_service.h"

namespace tsunami {

std::shared_ptr<const QueryPlan> QueryEngine::PlanQuery(
    const Query& query) const {
  if (service_ != nullptr) {
    // Bind through the service's plan cache: repeated ad-hoc statements
    // over the same rectangle (and repeated disjunctive boxes) share one
    // prepared plan instead of re-planning per Prepare call.
    return service_->CachedPlan(query);
  }
  return std::make_shared<const QueryPlan>(index_->Prepare(query));
}

PreparedStatement QueryEngine::Prepare(std::string_view sql) const {
  PreparedStatement stmt;
  ParseResult parsed = ParseSql(sql, schema_);
  if (!parsed.ok) {
    stmt.error = parsed.error;
    return stmt;
  }
  stmt.query = parsed.query;
  stmt.empty_result = parsed.empty_result;
  if (parsed.disjunctive) {
    // OR / NOT / IN: serve the clause as a union of disjoint rectangles,
    // one index query per rectangle (bool_expr.h). Normalization happens
    // here, at prepare time, so repeated executions pay only the scans.
    NormalizeResult norm = ToDisjointBoxes(
        parsed.where, static_cast<int>(schema_.columns.size()));
    if (!norm.ok) {
      stmt.error = norm.error;
      return stmt;
    }
    stmt.disjunctive = true;
    // Plan every non-empty box now; executions replay the plans.
    for (const Box& box : norm.boxes) {
      if (box.Empty()) continue;
      stmt.box_plans.push_back(PlanQuery(box.ToQuery(stmt.query)));
    }
    stmt.ok = true;
    return stmt;
  }
  if (!stmt.empty_result) stmt.plan = PlanQuery(parsed.query);
  stmt.ok = true;
  return stmt;
}

SqlResult QueryEngine::Finalize(const PreparedStatement& stmt,
                                QueryResult stats) const {
  SqlResult out;
  out.ok = true;
  out.query = stmt.query;
  out.stats = std::move(stats);
  out.values.resize(stmt.query.num_aggs());
  for (int a = 0; a < stmt.query.num_aggs(); ++a) {
    out.values[a] = FinalAggValue(stmt.query, out.stats, a);
  }
  out.value = out.values[0];
  return out;
}

static_assert(std::is_same_v<QueryService::Ticket, uint64_t>,
              "engine.h declares service tickets as uint64_t");

std::vector<uint64_t> QueryEngine::SubmitToService(
    const PreparedStatement& stmt, ExecContext& ctx) const {
  // Carry the context's remaining budget into per-query submit options
  // (Fork computes the remaining deadline without restarting any clock).
  ExecContext remaining = ctx.Fork();
  SubmitOptions sub;
  sub.deadline_seconds = remaining.deadline_seconds;
  sub.cancel = ctx.cancel;
  sub.scan = ctx.scan;
  sub.priority = ctx.priority;

  // A disjunctive statement's boxes are all admitted at once, so they
  // execute concurrently on the service's workers.
  std::vector<uint64_t> tickets;
  if (stmt.disjunctive) {
    tickets.reserve(stmt.box_plans.size());
    for (const std::shared_ptr<const QueryPlan>& plan : stmt.box_plans) {
      tickets.push_back(service_->SubmitPlan(plan, sub));
    }
  } else {
    tickets.push_back(service_->SubmitPlan(stmt.plan, sub));
  }
  return tickets;
}

SqlResult QueryEngine::AwaitService(
    const PreparedStatement& stmt, std::span<const uint64_t> tickets) const {
  QueryResult stats = InitResult(stmt.query);
  bool any_cancelled = false;
  for (uint64_t ticket : tickets) {
    bool cancelled = false;
    QueryResult partial = service_->Await(ticket, &cancelled);
    any_cancelled = any_cancelled || cancelled;
    // Boxes are disjoint rectangles, so merging their full results keeps
    // counts exact — same as ExecuteBoxUnion.
    MergeQueryResults(stmt.query, partial, &stats);
  }
  if (any_cancelled) {
    SqlResult out;
    out.query = stmt.query;
    out.error = "cancelled";
    return out;
  }
  return Finalize(stmt, std::move(stats));
}

SqlResult QueryEngine::RunViaService(const PreparedStatement& stmt,
                                     ExecContext& ctx) const {
  std::vector<uint64_t> tickets = SubmitToService(stmt, ctx);
  return AwaitService(stmt, tickets);
}

SqlResult QueryEngine::RunPrepared(const PreparedStatement& stmt,
                                   ExecContext& ctx) const {
  if (!stmt.ok) {
    SqlResult out;
    out.error = stmt.error;
    return out;
  }
  if (stmt.empty_result) {
    // An unsatisfiable predicate (empty range / unknown dictionary string):
    // answer without touching the index, matching SQL semantics.
    return Finalize(stmt, InitResult(stmt.query));
  }
  if (service_ != nullptr) return RunViaService(stmt, ctx);
  QueryResult stats;
  if (stmt.disjunctive) {
    stats = InitResult(stmt.query);
    for (const std::shared_ptr<const QueryPlan>& plan : stmt.box_plans) {
      if (ctx.ShouldStop()) break;
      MergeQueryResults(stmt.query, index_->ExecutePlan(*plan, ctx), &stats);
    }
  } else {
    stats = index_->ExecutePlan(*stmt.plan, ctx);
  }
  if (ctx.ShouldStop()) {
    // Execution was (or may have been) cut short mid-flight: never pass a
    // partial aggregate off as an answer.
    SqlResult out;
    out.query = stmt.query;
    out.error = "cancelled";
    return out;
  }
  return Finalize(stmt, std::move(stats));
}

std::vector<SqlResult> QueryEngine::RunBatch(
    std::span<const PreparedStatement> stmts, ExecContext& ctx) const {
  ctx.StartBatch();
  Timer timer;
  std::vector<SqlResult> results(stmts.size());
  // With a service attached, admit every executable statement's plans up
  // front, then await in order: all statements' chunks interleave on the
  // shared scheduler (cross-statement overlap, not just the boxes within
  // one disjunctive statement).
  std::vector<std::vector<uint64_t>> tickets;
  if (service_ != nullptr) {
    tickets.resize(stmts.size());
    for (size_t i = 0; i < stmts.size(); ++i) {
      if (stmts[i].ok && !stmts[i].empty_result && !ctx.ShouldStop()) {
        tickets[i] = SubmitToService(stmts[i], ctx);
      }
    }
  }
  for (size_t i = 0; i < stmts.size(); ++i) {
    if (service_ != nullptr && !tickets[i].empty()) {
      // Already in flight: always awaited, even if the batch was cancelled
      // meanwhile (the tickets must be consumed; a cut-short statement
      // comes back as "cancelled").
      results[i] = AwaitService(stmts[i], tickets[i]);
    } else if (ctx.ShouldStop()) {
      results[i].error = "cancelled";
      continue;
    } else {
      // Fork per statement: the statement sees only the batch's remaining
      // deadline, and its nested StartBatch/stats cannot clobber the
      // batch-level bookkeeping.
      ExecContext stmt_ctx = ctx.Fork();
      results[i] = RunPrepared(stmts[i], stmt_ctx);
    }
    if (results[i].ok) {
      ++ctx.stats.queries;
      ctx.stats.AddResult(results[i].stats);
    }
  }
  ctx.stats.seconds += timer.ElapsedSeconds();
  return results;
}

SqlResult QueryEngine::Run(std::string_view sql) const {
  PreparedStatement stmt = Prepare(sql);
  if (!stmt.ok) {
    SqlResult out;
    out.error = stmt.error;
    return out;
  }
  ExecContext ctx;
  return RunPrepared(stmt, ctx);
}

}  // namespace tsunami
