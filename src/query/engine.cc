#include "src/query/engine.h"

#include "src/common/stats.h"

namespace tsunami {

PreparedStatement QueryEngine::Prepare(std::string_view sql) const {
  PreparedStatement stmt;
  ParseResult parsed = ParseSql(sql, schema_);
  if (!parsed.ok) {
    stmt.error = parsed.error;
    return stmt;
  }
  stmt.query = parsed.query;
  stmt.empty_result = parsed.empty_result;
  if (parsed.disjunctive) {
    // OR / NOT / IN: serve the clause as a union of disjoint rectangles,
    // one index query per rectangle (bool_expr.h). Normalization happens
    // here, at prepare time, so repeated executions pay only the scans.
    NormalizeResult norm = ToDisjointBoxes(
        parsed.where, static_cast<int>(schema_.columns.size()));
    if (!norm.ok) {
      stmt.error = norm.error;
      return stmt;
    }
    stmt.disjunctive = true;
    // Plan every non-empty box now; executions replay the plans.
    for (const Box& box : norm.boxes) {
      if (box.Empty()) continue;
      stmt.box_plans.push_back(index_->Prepare(box.ToQuery(stmt.query)));
    }
    stmt.ok = true;
    return stmt;
  }
  if (!stmt.empty_result) stmt.plan = index_->Prepare(parsed.query);
  stmt.ok = true;
  return stmt;
}

SqlResult QueryEngine::Finalize(const PreparedStatement& stmt,
                                QueryResult stats) const {
  SqlResult out;
  out.ok = true;
  out.query = stmt.query;
  out.stats = std::move(stats);
  out.values.resize(stmt.query.num_aggs());
  for (int a = 0; a < stmt.query.num_aggs(); ++a) {
    out.values[a] = FinalAggValue(stmt.query, out.stats, a);
  }
  out.value = out.values[0];
  return out;
}

SqlResult QueryEngine::RunPrepared(const PreparedStatement& stmt,
                                   ExecContext& ctx) const {
  if (!stmt.ok) {
    SqlResult out;
    out.error = stmt.error;
    return out;
  }
  if (stmt.empty_result) {
    // An unsatisfiable predicate (empty range / unknown dictionary string):
    // answer without touching the index, matching SQL semantics.
    return Finalize(stmt, InitResult(stmt.query));
  }
  QueryResult stats;
  if (stmt.disjunctive) {
    stats = InitResult(stmt.query);
    for (const QueryPlan& plan : stmt.box_plans) {
      if (ctx.ShouldStop()) break;
      MergeQueryResults(stmt.query, index_->ExecutePlan(plan, ctx), &stats);
    }
  } else {
    stats = index_->ExecutePlan(stmt.plan, ctx);
  }
  if (ctx.ShouldStop()) {
    // Execution was (or may have been) cut short mid-flight: never pass a
    // partial aggregate off as an answer.
    SqlResult out;
    out.query = stmt.query;
    out.error = "cancelled";
    return out;
  }
  return Finalize(stmt, std::move(stats));
}

std::vector<SqlResult> QueryEngine::RunBatch(
    std::span<const PreparedStatement> stmts, ExecContext& ctx) const {
  ctx.StartBatch();
  Timer timer;
  std::vector<SqlResult> results(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    if (ctx.ShouldStop()) {
      results[i].error = "cancelled";
      continue;
    }
    // Fork per statement: the statement sees only the batch's remaining
    // deadline, and its nested StartBatch/stats cannot clobber the
    // batch-level bookkeeping.
    ExecContext stmt_ctx = ctx.Fork();
    results[i] = RunPrepared(stmts[i], stmt_ctx);
    if (results[i].ok) {
      ++ctx.stats.queries;
      ctx.stats.AddResult(results[i].stats);
    }
  }
  ctx.stats.seconds += timer.ElapsedSeconds();
  return results;
}

SqlResult QueryEngine::Run(std::string_view sql) const {
  PreparedStatement stmt = Prepare(sql);
  if (!stmt.ok) {
    SqlResult out;
    out.error = stmt.error;
    return out;
  }
  ExecContext ctx;
  return RunPrepared(stmt, ctx);
}

}  // namespace tsunami
