#include "src/query/engine.h"

#include "src/query/bool_expr.h"

namespace tsunami {

SqlResult QueryEngine::Run(std::string_view sql) const {
  SqlResult out;
  ParseResult parsed = ParseSql(sql, schema_);
  if (!parsed.ok) {
    out.error = parsed.error;
    return out;
  }
  out.query = parsed.query;
  if (parsed.disjunctive) {
    // OR / NOT / IN: serve the clause as a union of disjoint rectangles,
    // one index query per rectangle (bool_expr.h).
    NormalizeResult norm = ToDisjointBoxes(
        parsed.where, static_cast<int>(schema_.columns.size()));
    if (!norm.ok) {
      out.error = norm.error;
      return out;
    }
    out.ok = true;
    out.stats = ExecuteBoxUnion(*index_, norm.boxes, parsed.query);
    out.value = FinalAggValue(parsed.query, out.stats);
    return out;
  }
  out.ok = true;
  if (parsed.empty_result) {
    // An unsatisfiable predicate (empty range / unknown dictionary string):
    // answer without touching the index, matching SQL semantics.
    out.stats = InitResult(parsed.query);
    out.value = FinalAggValue(parsed.query, out.stats);
    return out;
  }
  out.stats = index_->Execute(parsed.query);
  out.value = FinalAggValue(parsed.query, out.stats);
  return out;
}

}  // namespace tsunami
