// Executes SQL-subset statements against any MultiDimIndex. This is the
// thin "analytics accelerator" veneer the paper envisions (§1: Tsunami as a
// building block for in-memory analytics): parse, bind against the table
// schema, plan against the index, execute, finalize the aggregates.
//
// Two surfaces:
//  * Run(sql) — parse + plan + execute one statement, inline.
//  * Prepare(sql) -> PreparedStatement, then RunPrepared / RunBatch with an
//    ExecContext — planning (parse, bind, disjunctive normalization, index
//    range planning) happens once at Prepare time; execution reuses the
//    plan, shares the context's thread pool and scan options, and honors
//    its cancellation/deadline.
// Statements may compute several aggregates in one pass:
// `SELECT SUM(x), COUNT(*), MIN(y) FROM t WHERE ...`.
#ifndef TSUNAMI_QUERY_ENGINE_H_
#define TSUNAMI_QUERY_ENGINE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/query/bool_expr.h"
#include "src/query/sql_parser.h"

namespace tsunami {

/// Outcome of running one statement.
struct SqlResult {
  bool ok = false;
  std::string error;
  Query query;         // The bound query (for inspection / EXPLAIN-style use).
  QueryResult stats;   // Raw counters from the index.
  double value = 0.0;  // Finalized first aggregate (mean for AVG).
  /// Finalized value per SELECT-list aggregate; values[0] == value.
  std::vector<double> values;
};

/// A parsed, bound, and planned statement, ready for (repeated) execution.
/// Holds the index's QueryPlan for conjunctive statements and the
/// pre-normalized disjoint boxes for disjunctive ones, so per-execution
/// work is the scans alone. Produced by QueryEngine::Prepare; only
/// executable by the engine (and index) that prepared it.
struct PreparedStatement {
  bool ok = false;
  std::string error;
  Query query;              // Bound aggregates (+ filters when conjunctive).
  bool empty_result = false;  // Unsatisfiable predicate: answer without I/O.
  bool disjunctive = false;   // Executes as a union of disjoint boxes.
  QueryPlan plan;             // Conjunctive case: the index's range plan.
  /// Disjunctive case: one index plan per non-empty disjoint box, built at
  /// Prepare time so repeated executions replay instead of re-planning.
  std::vector<QueryPlan> box_plans;
};

/// Binds a table schema to an index and runs SQL statements against it.
/// The engine borrows the index and the schema's dictionaries; both must
/// outlive it (and any PreparedStatement it hands out).
class QueryEngine {
 public:
  QueryEngine(const MultiDimIndex* index, TableSchema schema)
      : index_(index), schema_(std::move(schema)) {}

  /// Parses, binds, plans, and executes one statement inline.
  SqlResult Run(std::string_view sql) const;

  /// Parses, binds, and plans one statement without executing it.
  PreparedStatement Prepare(std::string_view sql) const;

  /// Executes a prepared statement with the context's pool, scan options,
  /// and cancellation. A statement whose execution was cut short by the
  /// context's cancel flag or deadline comes back ok = false with
  /// error = "cancelled" — partial aggregates are never passed off as
  /// answers. (Conservative: a statement finishing exactly as the deadline
  /// expires may also be flagged.)
  SqlResult RunPrepared(const PreparedStatement& stmt, ExecContext& ctx) const;

  /// Executes a batch of prepared statements. Cancellation/deadline is
  /// checked between statements; skipped statements come back with
  /// ok = false and error = "cancelled" (unlike the index-level
  /// ExecuteBatch, which returns identity results — SQL callers need to
  /// tell an aborted statement from a zero-row answer). Fills ctx.stats
  /// across the batch.
  std::vector<SqlResult> RunBatch(std::span<const PreparedStatement> stmts,
                                  ExecContext& ctx) const;

  const TableSchema& schema() const { return schema_; }
  const MultiDimIndex& index() const { return *index_; }

 private:
  SqlResult Finalize(const PreparedStatement& stmt, QueryResult stats) const;

  const MultiDimIndex* index_;
  TableSchema schema_;
};

}  // namespace tsunami

#endif  // TSUNAMI_QUERY_ENGINE_H_
