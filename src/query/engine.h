// Executes SQL-subset statements against any MultiDimIndex. This is the
// thin "analytics accelerator" veneer the paper envisions (§1: Tsunami as a
// building block for in-memory analytics): parse, bind against the table
// schema, plan against the index, execute, finalize the aggregates.
//
// Two surfaces:
//  * Run(sql) — parse + plan + execute one statement, inline.
//  * Prepare(sql) -> PreparedStatement, then RunPrepared / RunBatch with an
//    ExecContext — planning (parse, bind, disjunctive normalization, index
//    range planning) happens once at Prepare time; execution reuses the
//    plan, shares the context's thread pool and scan options, and honors
//    its cancellation/deadline.
// Statements may compute several aggregates in one pass:
// `SELECT SUM(x), COUNT(*), MIN(y) FROM t WHERE ...`.
#ifndef TSUNAMI_QUERY_ENGINE_H_
#define TSUNAMI_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/query/bool_expr.h"
#include "src/query/sql_parser.h"

namespace tsunami {

/// Outcome of running one statement.
struct SqlResult {
  bool ok = false;
  std::string error;
  Query query;         // The bound query (for inspection / EXPLAIN-style use).
  QueryResult stats;   // Raw counters from the index.
  double value = 0.0;  // Finalized first aggregate (mean for AVG).
  /// Finalized value per SELECT-list aggregate; values[0] == value.
  std::vector<double> values;
};

class QueryService;

/// A parsed, bound, and planned statement, ready for (repeated) execution.
/// Holds the index's QueryPlan for conjunctive statements and the
/// pre-normalized disjoint boxes for disjunctive ones, so per-execution
/// work is the scans alone. Produced by QueryEngine::Prepare; only
/// executable by the engine (and index) that prepared it. Plans are
/// shared_ptr so a statement bound through an attached QueryService aliases
/// the service's plan cache instead of copying task lists.
struct PreparedStatement {
  bool ok = false;
  std::string error;
  Query query;              // Bound aggregates (+ filters when conjunctive).
  bool empty_result = false;  // Unsatisfiable predicate: answer without I/O.
  bool disjunctive = false;   // Executes as a union of disjoint boxes.
  /// Conjunctive case: the index's range plan (null when empty_result).
  std::shared_ptr<const QueryPlan> plan;
  /// Disjunctive case: one index plan per non-empty disjoint box, built at
  /// Prepare time so repeated executions replay instead of re-planning.
  std::vector<std::shared_ptr<const QueryPlan>> box_plans;
};

/// Binds a table schema to an index and runs SQL statements against it.
/// The engine borrows the index and the schema's dictionaries; both must
/// outlive it (and any PreparedStatement it hands out).
class QueryEngine {
 public:
  QueryEngine(const MultiDimIndex* index, TableSchema schema)
      : index_(index), schema_(std::move(schema)) {}

  /// Routes this engine through a serving layer (borrowed; must outlive
  /// the engine and wrap the same index): Prepare binds statements to the
  /// service's plan cache — repeated ad-hoc SQL over the same rectangle
  /// stops re-planning — and RunPrepared / RunBatch submit plans to the
  /// service's work-stealing scheduler instead of executing on the calling
  /// thread (RunBatch's statements run concurrently, box unions of one
  /// disjunctive statement too). Results stay bit-identical to the
  /// unattached engine. Pass nullptr to detach.
  void AttachService(QueryService* service) { service_ = service; }
  QueryService* service() const { return service_; }

  /// Parses, binds, plans, and executes one statement inline.
  SqlResult Run(std::string_view sql) const;

  /// Parses, binds, and plans one statement without executing it.
  PreparedStatement Prepare(std::string_view sql) const;

  /// Executes a prepared statement with the context's pool, scan options,
  /// and cancellation. A statement whose execution was cut short by the
  /// context's cancel flag or deadline comes back ok = false with
  /// error = "cancelled" — partial aggregates are never passed off as
  /// answers. (Conservative: a statement finishing exactly as the deadline
  /// expires may also be flagged.)
  SqlResult RunPrepared(const PreparedStatement& stmt, ExecContext& ctx) const;

  /// Executes a batch of prepared statements. Cancellation/deadline is
  /// checked between statements; skipped statements come back with
  /// ok = false and error = "cancelled" (unlike the index-level
  /// ExecuteBatch, which returns identity results — SQL callers need to
  /// tell an aborted statement from a zero-row answer). Fills ctx.stats
  /// across the batch.
  std::vector<SqlResult> RunBatch(std::span<const PreparedStatement> stmts,
                                  ExecContext& ctx) const;

  const TableSchema& schema() const { return schema_; }
  const MultiDimIndex& index() const { return *index_; }

 private:
  SqlResult Finalize(const PreparedStatement& stmt, QueryResult stats) const;
  /// Admits the statement's plan(s) to the attached service (deadline /
  /// cancel / priority carried over from `ctx`) and returns the tickets
  /// (QueryService::Ticket, i.e. uint64_t — kept untyped here so the
  /// header need not pull in the serve layer).
  std::vector<uint64_t> SubmitToService(const PreparedStatement& stmt,
                                        ExecContext& ctx) const;
  /// Awaits previously submitted tickets and finalizes the statement
  /// (identity + "cancelled" if any ticket was cut short).
  SqlResult AwaitService(const PreparedStatement& stmt,
                         std::span<const uint64_t> tickets) const;
  /// Service path for RunPrepared: SubmitToService + AwaitService.
  SqlResult RunViaService(const PreparedStatement& stmt,
                          ExecContext& ctx) const;
  /// Plans one bound conjunctive query: through the service's plan cache
  /// when attached, directly against the index otherwise.
  std::shared_ptr<const QueryPlan> PlanQuery(const Query& query) const;

  const MultiDimIndex* index_;
  TableSchema schema_;
  QueryService* service_ = nullptr;  // Borrowed; null = execute inline.
};

}  // namespace tsunami

#endif  // TSUNAMI_QUERY_ENGINE_H_
