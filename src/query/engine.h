// Executes SQL-subset statements against any MultiDimIndex. This is the
// thin "analytics accelerator" veneer the paper envisions (§1: Tsunami as a
// building block for in-memory analytics): parse, bind against the table
// schema, delegate the filter to the index, finalize the aggregate.
#ifndef TSUNAMI_QUERY_ENGINE_H_
#define TSUNAMI_QUERY_ENGINE_H_

#include <string>
#include <string_view>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/query/sql_parser.h"

namespace tsunami {

/// Outcome of running one statement.
struct SqlResult {
  bool ok = false;
  std::string error;
  Query query;         // The bound query (for inspection / EXPLAIN-style use).
  QueryResult stats;   // Raw counters from the index.
  double value = 0.0;  // Finalized aggregate (mean for AVG).
};

/// Binds a table schema to an index and runs SQL statements against it.
/// The engine borrows the index and the schema's dictionaries; both must
/// outlive it.
class QueryEngine {
 public:
  QueryEngine(const MultiDimIndex* index, TableSchema schema)
      : index_(index), schema_(std::move(schema)) {}

  /// Parses, binds, and executes one statement.
  SqlResult Run(std::string_view sql) const;

  /// Parses and binds without executing (EXPLAIN-style).
  ParseResult Prepare(std::string_view sql) const {
    return ParseSql(sql, schema_);
  }

  const TableSchema& schema() const { return schema_; }
  const MultiDimIndex& index() const { return *index_; }

 private:
  const MultiDimIndex* index_;
  TableSchema schema_;
};

}  // namespace tsunami

#endif  // TSUNAMI_QUERY_ENGINE_H_
