#include "src/query/router.h"

#include <algorithm>
#include <cmath>

#include "src/common/stats.h"
#include "src/core/query_clustering.h"

namespace tsunami {

AccessPathRouter::AccessPathRouter(
    std::vector<const MultiDimIndex*> indexes, const Dataset& data,
    const Workload& calibration, const Options& options)
    : indexes_(std::move(indexes)), dims_(data.dims()) {
  // Sorted per-dimension sample columns: selectivity of [lo, hi] is the
  // rank difference of its endpoints.
  int64_t n = data.size();
  int64_t stride =
      std::max<int64_t>(1, n / std::max<int64_t>(options.max_sample_rows, 1));
  sample_.resize(dims_);
  for (int d = 0; d < dims_; ++d) {
    for (int64_t r = 0; r < n; r += stride) {
      sample_[d].push_back(data.at(r, d));
    }
    std::sort(sample_[d].begin(), sample_[d].end());
  }
  if (indexes_.empty() || calibration.empty()) return;

  // Embed and cluster the calibration workload (§4.3.1): queries with
  // different dimension signatures never share a cluster, so cluster
  // within signature groups.
  std::vector<uint64_t> masks(calibration.size());
  std::vector<std::vector<double>> embeddings(calibration.size());
  for (size_t i = 0; i < calibration.size(); ++i) {
    embeddings[i] = Embed(calibration[i], &masks[i]);
  }
  std::vector<uint64_t> unique_masks = masks;
  std::sort(unique_masks.begin(), unique_masks.end());
  unique_masks.erase(std::unique(unique_masks.begin(), unique_masks.end()),
                     unique_masks.end());

  std::vector<double> total_micros(indexes_.size(), 0.0);
  for (uint64_t mask : unique_masks) {
    std::vector<int> members;
    std::vector<std::vector<double>> group;
    for (size_t i = 0; i < calibration.size(); ++i) {
      if (masks[i] == mask) {
        members.push_back(static_cast<int>(i));
        group.push_back(embeddings[i]);
      }
    }
    int num_clusters = 0;
    std::vector<int> labels =
        Dbscan(group, options.eps, options.min_pts, &num_clusters);
    for (int c = 0; c < num_clusters; ++c) {
      CalibratedType type;
      type.dim_mask = mask;
      type.centroid.assign(dims_, 0.0);
      std::vector<int> cluster_members;
      for (size_t g = 0; g < group.size(); ++g) {
        if (labels[g] != c) continue;
        cluster_members.push_back(members[g]);
        for (int d = 0; d < dims_; ++d) type.centroid[d] += group[g][d];
      }
      if (cluster_members.empty()) continue;
      type.count = static_cast<int64_t>(cluster_members.size());
      for (int d = 0; d < dims_; ++d) {
        type.centroid[d] /= static_cast<double>(type.count);
      }

      // Measure each index on an even subsample of the cluster.
      int take = std::min<int>(options.max_measured_per_type,
                               static_cast<int>(cluster_members.size()));
      type.avg_micros.assign(indexes_.size(), 0.0);
      for (size_t x = 0; x < indexes_.size(); ++x) {
        volatile int64_t sink = 0;  // Defeats dead-code elimination.
        Timer timer;
        for (int rep = 0; rep < options.repeats; ++rep) {
          for (int t = 0; t < take; ++t) {
            const Query& q =
                calibration[cluster_members[t * cluster_members.size() /
                                            take]];
            sink = sink + indexes_[x]->Execute(q).agg;
          }
        }
        type.avg_micros[x] = timer.ElapsedNanos() / 1e3 /
                             (static_cast<double>(take) * options.repeats);
        // Weight the global fallback by cluster size.
        total_micros[x] += type.avg_micros[x] * static_cast<double>(
                                                    type.count);
      }
      type.winner = static_cast<int>(
          std::min_element(type.avg_micros.begin(), type.avg_micros.end()) -
          type.avg_micros.begin());
      types_.push_back(std::move(type));
    }
  }
  if (!types_.empty()) {
    fallback_ = static_cast<int>(
        std::min_element(total_micros.begin(), total_micros.end()) -
        total_micros.begin());
  }
}

std::vector<double> AccessPathRouter::Embed(const Query& query,
                                            uint64_t* mask) const {
  *mask = 0;
  std::vector<double> embedding(dims_, 0.0);
  for (const Predicate& p : query.filters) {
    if (p.dim >= 0 && p.dim < 64) *mask |= uint64_t{1} << p.dim;
    const std::vector<Value>& column = sample_[p.dim];
    if (column.empty()) continue;
    auto lo = std::lower_bound(column.begin(), column.end(), p.lo);
    auto hi = std::upper_bound(column.begin(), column.end(), p.hi);
    embedding[p.dim] =
        static_cast<double>(hi - lo) / static_cast<double>(column.size());
  }
  return embedding;
}

int AccessPathRouter::RouteIndex(const Query& query) const {
  if (types_.empty()) return fallback_;
  uint64_t mask = 0;
  std::vector<double> embedding = Embed(query, &mask);
  const CalibratedType* best = nullptr;
  double best_dist = 0.0;
  for (const CalibratedType& type : types_) {
    if (type.dim_mask != mask) continue;
    double dist = 0.0;
    for (int d = 0; d < dims_; ++d) {
      double delta = embedding[d] - type.centroid[d];
      dist += delta * delta;
    }
    if (best == nullptr || dist < best_dist) {
      best = &type;
      best_dist = dist;
    }
  }
  // Unseen dimension signature: fall back to the global winner.
  return best != nullptr ? best->winner : fallback_;
}

const MultiDimIndex& AccessPathRouter::Route(const Query& query) const {
  return *indexes_[RouteIndex(query)];
}

QueryPlan AccessPathRouter::Prepare(const Query& query) const {
  int choice = RouteIndex(query);
  QueryPlan plan = indexes_[choice]->Prepare(query);
  plan.routed_index = choice;
  return plan;
}

QueryResult AccessPathRouter::ExecutePlan(const QueryPlan& plan,
                                          ExecContext& ctx) const {
  // Plans this router prepared carry their access path; replays skip the
  // embed + nearest-type routing cost. A foreign (untagged) plan's tasks
  // address some other index's clustered store and cannot be trusted here,
  // so only its query is honored: route and execute from scratch.
  if (plan.routed_index >= 0 &&
      plan.routed_index < static_cast<int>(indexes_.size())) {
    return indexes_[plan.routed_index]->ExecutePlan(plan, ctx);
  }
  return Route(plan.query).Execute(plan.query);
}

std::vector<QueryResult> AccessPathRouter::ExecuteBatch(
    std::span<const Query> queries, ExecContext& ctx) const {
  ctx.StartBatch();
  Timer timer;
  std::vector<QueryResult> results(queries.size());
  // Group per chosen access path, preserving in-group order, then forward
  // one sub-batch per index and scatter results back positionally.
  std::vector<std::vector<int64_t>> groups(indexes_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    groups[RouteIndex(queries[i])].push_back(static_cast<int64_t>(i));
  }
  for (size_t x = 0; x < indexes_.size(); ++x) {
    if (groups[x].empty()) continue;
    if (ctx.ShouldStop()) {
      // Deadline/cancel between groups: the skipped groups' queries keep
      // their identity results, matching ExecuteBatch semantics.
      for (int64_t i : groups[x]) results[i] = InitResult(queries[i]);
      continue;
    }
    Workload sub;
    sub.reserve(groups[x].size());
    for (int64_t i : groups[x]) sub.push_back(queries[i]);
    // Fork: the sub-batch inherits only the *remaining* deadline, so one
    // routed group cannot restart the batch's clock.
    ExecContext sub_ctx = ctx.Fork();
    std::vector<QueryResult> sub_results = indexes_[x]->ExecuteBatch(
        std::span<const Query>(sub.data(), sub.size()), sub_ctx);
    for (size_t j = 0; j < groups[x].size(); ++j) {
      results[groups[x][j]] = std::move(sub_results[j]);
    }
    ctx.stats.MergeCounters(sub_ctx.stats);
  }
  ctx.stats.seconds += timer.ElapsedSeconds();
  return results;
}

int64_t AccessPathRouter::IndexSizeBytes() const {
  int64_t bytes = 0;
  for (const std::vector<Value>& column : sample_) {
    bytes += static_cast<int64_t>(column.size()) * sizeof(Value);
  }
  for (const CalibratedType& type : types_) {
    bytes += static_cast<int64_t>(sizeof(CalibratedType)) +
             static_cast<int64_t>(type.centroid.size() +
                                  type.avg_micros.size()) *
                 static_cast<int64_t>(sizeof(double));
  }
  return bytes;
}

std::string AccessPathRouter::Describe() const {
  std::string out = "access-path routing table (" +
                    std::to_string(types_.size()) + " learned types)\n";
  for (const CalibratedType& type : types_) {
    out += "  dims {";
    bool first = true;
    for (int d = 0; d < dims_; ++d) {
      if ((type.dim_mask >> d) & 1) {
        if (!first) out += ",";
        out += std::to_string(d);
        first = false;
      }
    }
    out += "} x" + std::to_string(type.count) + ":";
    for (size_t x = 0; x < indexes_.size(); ++x) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " %s=%.1fus",
                    indexes_[x]->Name().c_str(), type.avg_micros[x]);
      out += buf;
    }
    out += " -> " + indexes_[type.winner]->Name() + "\n";
  }
  out += "  fallback -> " + indexes_[fallback_]->Name() + "\n";
  return out;
}

}  // namespace tsunami
