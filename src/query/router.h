// Access-path routing: pick the cheapest index for each query.
//
// The paper envisions Tsunami as "the building block for a
// multi-dimensional in-memory key-value store or ... commercial in-memory
// analytics accelerators" (§1). An integrating system rarely has exactly
// one access path: alongside the clustered multi-dimensional index there
// are secondary indexes (src/secondary) whose cost profile is the mirror
// image — unbeatable for needle lookups, linearly degrading for wide
// ranges (§1, bench_secondary). The router makes the choice per query, the
// same way Tsunami itself adapts: learn from a sample workload.
//
// Calibration clusters the sample into query types (§4.3.1 machinery:
// dimension-set signature + selectivity embedding, DBSCAN) and measures
// every index on every type. At query time the query is embedded, matched
// to the nearest calibrated type with the same dimension signature, and
// dispatched to that type's winner.
#ifndef TSUNAMI_QUERY_ROUTER_H_
#define TSUNAMI_QUERY_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"

namespace tsunami {

/// Implements MultiDimIndex itself, so a router slots anywhere an index
/// does: behind a QueryEngine (SQL over routed access paths), inside
/// RunWorkload, or even as an input to another router.
class AccessPathRouter : public MultiDimIndex {
 public:
  struct Options {
    /// Queries measured per (type, index) pair: min(cluster size, this).
    int max_measured_per_type = 16;
    /// Timing repeats per measured query.
    int repeats = 2;
    /// Row sample used for selectivity embeddings.
    int64_t max_sample_rows = 20000;
    /// DBSCAN parameters (§4.3.1 defaults).
    double eps = 0.2;
    int min_pts = 4;
  };

  /// `indexes` are borrowed and must outlive the router; at least one is
  /// required and all must hold the same logical table. `data` supplies
  /// the selectivity sample; `calibration` is the sample workload to
  /// learn from.
  AccessPathRouter(std::vector<const MultiDimIndex*> indexes,
                   const Dataset& data, const Workload& calibration)
      : AccessPathRouter(std::move(indexes), data, calibration, Options()) {}
  AccessPathRouter(std::vector<const MultiDimIndex*> indexes,
                   const Dataset& data, const Workload& calibration,
                   const Options& options);

  /// The index calibration chose for this query's type.
  const MultiDimIndex& Route(const Query& query) const;

  std::string Name() const override { return "Router"; }

  /// Routes and executes.
  QueryResult Execute(const Query& query) const override {
    return Route(query).Execute(query);
  }

  /// Routes and plans: the returned plan is the routed index's plan,
  /// tagged with the chosen access path (QueryPlan::routed_index) so
  /// ExecutePlan forwards straight back to it without re-routing — the
  /// tasks address that index's clustered store.
  QueryPlan Prepare(const Query& query) const override;
  QueryResult ExecutePlan(const QueryPlan& plan,
                          ExecContext& ctx) const override;

  /// A routed plan's tasks address the chosen access path's clustered
  /// store, not the router's; external executors (QueryService) must scan
  /// and finish against that index.
  const MultiDimIndex& PlanTarget(const QueryPlan& plan) const override {
    if (plan.routed_index >= 0 &&
        plan.routed_index < static_cast<int>(indexes_.size())) {
      return indexes_[plan.routed_index]->PlanTarget(plan);
    }
    return *this;
  }

  /// Routes a batch by grouping the queries per chosen access path and
  /// forwarding one sub-batch per index; results are scattered back to
  /// their original positions, so output order matches input order.
  std::vector<QueryResult> ExecuteBatch(std::span<const Query> queries,
                                        ExecContext& ctx) const override;

  /// The router's own overhead: the selectivity sample plus the
  /// calibration table (the routed indexes account for themselves).
  int64_t IndexSizeBytes() const override;

  /// The first registered index's store (all hold the same table).
  const ColumnStore& store() const override { return indexes_[0]->store(); }

  /// Human-readable calibration table: one row per learned type with its
  /// dimension signature, per-index average microseconds, and the winner.
  std::string Describe() const;

  int num_types() const { return static_cast<int>(types_.size()); }

 private:
  /// Position in indexes_ of the access path Route() would pick.
  int RouteIndex(const Query& query) const;

  struct CalibratedType {
    uint64_t dim_mask = 0;  // Bit d set when dimension d is filtered.
    std::vector<double> centroid;  // Selectivity embedding (size = dims).
    std::vector<double> avg_micros;  // Parallel to indexes_.
    int winner = 0;
    int64_t count = 0;  // Calibration queries of this type.
  };

  std::vector<double> Embed(const Query& query, uint64_t* mask) const;

  std::vector<const MultiDimIndex*> indexes_;
  std::vector<CalibratedType> types_;
  int fallback_ = 0;  // Winner over the whole calibration workload.
  int dims_ = 0;
  // Per-dimension sorted sample columns for selectivity estimation.
  std::vector<std::vector<Value>> sample_;
};

}  // namespace tsunami

#endif  // TSUNAMI_QUERY_ROUTER_H_
