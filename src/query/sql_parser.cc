#include "src/query/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>

namespace tsunami {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

enum class TokenKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string_view text;  // Points into the statement.
  size_t offset = 0;      // Character offset, for error messages.

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
  }
  bool IsSymbol(std::string_view s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// Splits the statement into tokens. Unterminated strings and stray bytes
/// produce an error token list (signalled through `error`).
class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  bool Tokenize(std::vector<Token>* out, std::string* error) {
    size_t i = 0;
    while (i < sql_.size()) {
      char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[i])) ||
                sql_[i] == '_')) {
          ++i;
        }
        out->push_back({TokenKind::kIdent, sql_.substr(start, i - start),
                        start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[i + 1])))) {
        size_t start = i;
        bool seen_dot = false;
        while (i < sql_.size() &&
               (std::isdigit(static_cast<unsigned char>(sql_[i])) ||
                (sql_[i] == '.' && !seen_dot))) {
          if (sql_[i] == '.') seen_dot = true;
          ++i;
        }
        out->push_back({TokenKind::kNumber, sql_.substr(start, i - start),
                        start});
        continue;
      }
      if (c == '\'') {
        size_t start = i++;
        while (i < sql_.size() && sql_[i] != '\'') ++i;
        if (i == sql_.size()) {
          *error = "unterminated string literal at offset " +
                   std::to_string(start);
          return false;
        }
        // Text excludes the quotes.
        out->push_back({TokenKind::kString,
                        sql_.substr(start + 1, i - start - 1), start});
        ++i;
        continue;
      }
      // Multi-character comparison operators first.
      if ((c == '<' || c == '>' || c == '!') && i + 1 < sql_.size() &&
          sql_[i + 1] == '=') {
        out->push_back({TokenKind::kSymbol, sql_.substr(i, 2), i});
        i += 2;
        continue;
      }
      if (c == '<' && i + 1 < sql_.size() && sql_[i + 1] == '>') {
        out->push_back({TokenKind::kSymbol, sql_.substr(i, 2), i});
        i += 2;
        continue;
      }
      if (std::string_view("<>=()*,;-").find(c) != std::string_view::npos) {
        out->push_back({TokenKind::kSymbol, sql_.substr(i, 1), i});
        ++i;
        continue;
      }
      *error = std::string("unexpected character '") + c + "' at offset " +
               std::to_string(i);
      return false;
    }
    out->push_back({TokenKind::kEnd, std::string_view(), sql_.size()});
    return true;
  }

 private:
  std::string_view sql_;
};

/// A numeric literal held exactly as (sign, digits, implied denominator
/// 10^frac_digits) so that fixed-point scaling never loses precision.
struct Decimal {
  bool negative = false;
  __int128 numer = 0;  // Digits with the dot removed.
  int64_t denom = 1;   // 10^(number of fractional digits).

  /// Saturates literals beyond the value domain; comparisons against them
  /// then behave like comparisons against the domain bounds.
  static int64_t Saturate(__int128 q) {
    if (q > static_cast<__int128>(kValueMax)) return kValueMax;
    if (q < static_cast<__int128>(kValueMin)) return kValueMin;
    return static_cast<int64_t>(q);
  }

  /// The literal scaled by `scale`, rounded toward -inf (floor) or +inf
  /// (ceil). Exact when the scaled value is integral.
  int64_t Floor(int64_t scale) const {
    __int128 n = (negative ? -numer : numer) * scale;
    __int128 q = n / denom;
    if (n % denom != 0 && n < 0) --q;
    return Saturate(q);
  }
  int64_t Ceil(int64_t scale) const {
    __int128 n = (negative ? -numer : numer) * scale;
    __int128 q = n / denom;
    if (n % denom != 0 && n > 0) ++q;
    return Saturate(q);
  }
  bool IsExact(int64_t scale) const {
    return (numer * scale) % denom == 0;
  }
};

/// One comparison before merging: `column op literal`.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq };

CompareOp Mirror(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
      return CompareOp::kEq;
  }
  return CompareOp::kEq;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const TableSchema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  ParseResult Parse() {
    ParseResult out;
    out.where = BoolExpr::And({});  // No WHERE clause == TRUE.

    if (!Expect("SELECT")) return Fail();
    if (!ParseAggregateList(&out.query)) return Fail();
    if (!Expect("FROM")) return Fail();
    if (!ParseTableName()) return Fail();
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      if (!ParseOrExpr(&out.where)) return Fail();
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      error_ = "unexpected trailing input at offset " +
               std::to_string(Peek().offset) + ": '" +
               std::string(Peek().text) + "'";
      return Fail();
    }

    if (out.where.IsConjunctive()) {
      // The paper's query class: merge all leaves into one rectangle.
      std::vector<Value> lo(schema_.columns.size(), kValueMin);
      std::vector<Value> hi(schema_.columns.size(), kValueMax);
      std::vector<bool> touched(schema_.columns.size(), false);
      auto merge = [&](const Predicate& p) {
        lo[p.dim] = std::max(lo[p.dim], p.lo);
        hi[p.dim] = std::min(hi[p.dim], p.hi);
        touched[p.dim] = true;
      };
      if (out.where.kind == BoolExpr::Kind::kLeaf) {
        merge(out.where.leaf);
      } else {
        for (const BoolExpr& c : out.where.children) merge(c.leaf);
      }
      for (size_t d = 0; d < touched.size(); ++d) {
        if (!touched[d]) continue;
        if (lo[d] > hi[d]) out.empty_result = true;
        out.query.filters.push_back(
            Predicate{static_cast<int>(d), lo[d], hi[d]});
      }
    } else {
      out.disjunctive = true;
    }
    out.ok = true;
    return out;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  ParseResult Fail() {
    ParseResult out;
    out.error = error_.empty() ? "parse error" : error_;
    return out;
  }

  bool Expect(std::string_view keyword) {
    if (Peek().IsKeyword(keyword)) {
      Advance();
      return true;
    }
    error_ = "expected " + std::string(keyword) + " at offset " +
             std::to_string(Peek().offset);
    return false;
  }

  bool ExpectSymbol(std::string_view sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    error_ = "expected '" + std::string(sym) + "' at offset " +
             std::to_string(Peek().offset);
    return false;
  }

  /// One `AGG(col)` / `COUNT(*)` term of the SELECT list.
  bool ParseAggregate(AggregateSpec* spec) {
    const Token& fn = Peek();
    AggKind kind;
    if (fn.IsKeyword("COUNT")) {
      kind = AggKind::kCount;
    } else if (fn.IsKeyword("SUM")) {
      kind = AggKind::kSum;
    } else if (fn.IsKeyword("MIN")) {
      kind = AggKind::kMin;
    } else if (fn.IsKeyword("MAX")) {
      kind = AggKind::kMax;
    } else if (fn.IsKeyword("AVG")) {
      kind = AggKind::kAvg;
    } else {
      error_ = "expected aggregate (COUNT/SUM/MIN/MAX/AVG) at offset " +
               std::to_string(fn.offset);
      return false;
    }
    Advance();
    if (!ExpectSymbol("(")) return false;
    spec->op = kind;
    spec->column = 0;
    if (kind == AggKind::kCount && Peek().IsSymbol("*")) {
      Advance();
    } else {
      const Token& col = Peek();
      if (col.kind != TokenKind::kIdent) {
        error_ = "expected column name in aggregate at offset " +
                 std::to_string(col.offset);
        return false;
      }
      int dim = schema_.ColumnIndex(col.text);
      if (dim < 0) {
        error_ = "unknown column '" + std::string(col.text) + "'";
        return false;
      }
      spec->column = dim;
      Advance();
    }
    return ExpectSymbol(")");
  }

  /// Comma-separated aggregate list; every aggregate of one statement is
  /// computed in a single scan pass.
  bool ParseAggregateList(Query* query) {
    std::vector<AggregateSpec> specs;
    while (true) {
      AggregateSpec spec;
      if (!ParseAggregate(&spec)) return false;
      specs.push_back(spec);
      if (static_cast<int>(specs.size()) > kMaxQueryAggs) {
        error_ = "too many aggregates in SELECT list (max " +
                 std::to_string(kMaxQueryAggs) + ")";
        return false;
      }
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    query->SetAggregates(std::move(specs));
    return true;
  }

  bool ParseTableName() {
    const Token& name = Peek();
    if (name.kind != TokenKind::kIdent) {
      error_ = "expected table name at offset " +
               std::to_string(name.offset);
      return false;
    }
    if (!schema_.table_name.empty() &&
        !EqualsIgnoreCase(name.text, schema_.table_name)) {
      error_ = "unknown table '" + std::string(name.text) + "' (expected '" +
               schema_.table_name + "')";
      return false;
    }
    Advance();
    return true;
  }

  /// A literal as written: either a string token or a (possibly negated)
  /// number token.
  struct Literal {
    Token token;
    bool negative = false;
  };

  // Boolean expression grammar over predicates; AND binds tighter than OR.
  //   orExpr  := andExpr (OR andExpr)*
  //   andExpr := unary (AND unary)*
  //   unary   := NOT unary | '(' orExpr ')' | predicate
  bool ParseOrExpr(BoolExpr* out) {
    BoolExpr first;
    if (!ParseAndExpr(&first)) return false;
    if (!Peek().IsKeyword("OR")) {
      *out = std::move(first);
      return true;
    }
    std::vector<BoolExpr> alts;
    alts.push_back(std::move(first));
    while (Peek().IsKeyword("OR")) {
      Advance();
      BoolExpr next;
      if (!ParseAndExpr(&next)) return false;
      alts.push_back(std::move(next));
    }
    *out = BoolExpr::Or(std::move(alts));
    return true;
  }

  bool ParseAndExpr(BoolExpr* out) {
    BoolExpr first;
    if (!ParseUnaryExpr(&first)) return false;
    if (!Peek().IsKeyword("AND")) {
      *out = std::move(first);
      return true;
    }
    std::vector<BoolExpr> terms;
    terms.push_back(std::move(first));
    while (Peek().IsKeyword("AND")) {
      Advance();
      BoolExpr next;
      if (!ParseUnaryExpr(&next)) return false;
      terms.push_back(std::move(next));
    }
    // Flatten nested conjunctions so `a AND b AND c` stays recognizable as
    // the paper's conjunctive class even when written `(a AND b) AND c`.
    std::vector<BoolExpr> flat;
    for (BoolExpr& t : terms) {
      if (t.kind == BoolExpr::Kind::kAnd) {
        for (BoolExpr& c : t.children) flat.push_back(std::move(c));
      } else {
        flat.push_back(std::move(t));
      }
    }
    *out = BoolExpr::And(std::move(flat));
    return true;
  }

  bool ParseUnaryExpr(BoolExpr* out) {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      BoolExpr inner;
      if (!ParseUnaryExpr(&inner)) return false;
      *out = BoolExpr::Not(std::move(inner));
      return true;
    }
    if (Peek().IsSymbol("(")) {
      Advance();
      if (!ParseOrExpr(out)) return false;
      return ExpectSymbol(")");
    }
    return ParsePredicate(out);
  }

  // Predicate forms: `col op literal`, `literal op col`,
  // `col [NOT] BETWEEN lit AND lit`, `col [NOT] IN (lit, ...)`,
  // `col != literal`, `col <> literal`.
  bool ParsePredicate(BoolExpr* out) {
    const Token& first = Peek();
    if (first.kind == TokenKind::kIdent) {
      int dim = schema_.ColumnIndex(first.text);
      if (dim < 0) {
        error_ = "unknown column '" + std::string(first.text) + "'";
        return false;
      }
      Advance();
      bool negated = false;
      if (Peek().IsKeyword("NOT")) {
        // Only the composite forms follow `col NOT`.
        Advance();
        negated = true;
        if (!Peek().IsKeyword("BETWEEN") && !Peek().IsKeyword("IN")) {
          error_ = "expected BETWEEN or IN after NOT at offset " +
                   std::to_string(Peek().offset);
          return false;
        }
      }
      if (Peek().IsKeyword("BETWEEN")) {
        Advance();
        Literal lo_lit, hi_lit;
        if (!ParseLiteral(&lo_lit)) return false;
        if (!Expect("AND")) return false;
        if (!ParseLiteral(&hi_lit)) return false;
        Predicate lo_p, hi_p;
        if (!MakePredicate(dim, CompareOp::kGe, lo_lit, &lo_p) ||
            !MakePredicate(dim, CompareOp::kLe, hi_lit, &hi_p)) {
          return false;
        }
        std::vector<BoolExpr> terms;
        terms.push_back(BoolExpr::Leaf(lo_p));
        terms.push_back(BoolExpr::Leaf(hi_p));
        *out = BoolExpr::And(std::move(terms));
        if (negated) *out = BoolExpr::Not(std::move(*out));
        return true;
      }
      if (Peek().IsKeyword("IN")) {
        Advance();
        if (!ExpectSymbol("(")) return false;
        std::vector<BoolExpr> alts;
        while (true) {
          Literal lit;
          if (!ParseLiteral(&lit)) return false;
          Predicate p;
          if (!MakePredicate(dim, CompareOp::kEq, lit, &p)) return false;
          alts.push_back(BoolExpr::Leaf(p));
          if (Peek().IsSymbol(",")) {
            Advance();
            continue;
          }
          break;
        }
        if (!ExpectSymbol(")")) return false;
        *out = BoolExpr::Or(std::move(alts));
        if (negated) *out = BoolExpr::Not(std::move(*out));
        return true;
      }
      CompareOp op;
      bool op_negated = false;
      if (!ParseOp(&op, &op_negated)) return false;
      Literal lit;
      if (!ParseLiteral(&lit)) return false;
      Predicate p;
      if (!MakePredicate(dim, op, lit, &p)) return false;
      *out = BoolExpr::Leaf(p);
      if (op_negated) *out = BoolExpr::Not(std::move(*out));
      return true;
    }
    // literal op col
    Literal lit;
    if (!ParseLiteral(&lit)) return false;
    CompareOp op;
    bool op_negated = false;
    if (!ParseOp(&op, &op_negated)) return false;
    const Token& col = Peek();
    if (col.kind != TokenKind::kIdent) {
      error_ = "expected column name at offset " +
               std::to_string(col.offset);
      return false;
    }
    int dim = schema_.ColumnIndex(col.text);
    if (dim < 0) {
      error_ = "unknown column '" + std::string(col.text) + "'";
      return false;
    }
    Advance();
    Predicate p;
    if (!MakePredicate(dim, Mirror(op), lit, &p)) return false;
    *out = BoolExpr::Leaf(p);
    if (op_negated) *out = BoolExpr::Not(std::move(*out));
    return true;
  }

  /// `negated` is set for `!=` / `<>`, which parse as an equality the
  /// caller wraps in NOT.
  bool ParseOp(CompareOp* op, bool* negated) {
    const Token& t = Peek();
    *negated = false;
    if (t.IsSymbol("<")) {
      *op = CompareOp::kLt;
    } else if (t.IsSymbol("<=")) {
      *op = CompareOp::kLe;
    } else if (t.IsSymbol(">")) {
      *op = CompareOp::kGt;
    } else if (t.IsSymbol(">=")) {
      *op = CompareOp::kGe;
    } else if (t.IsSymbol("=")) {
      *op = CompareOp::kEq;
    } else if (t.IsSymbol("!=") || t.IsSymbol("<>")) {
      *op = CompareOp::kEq;
      *negated = true;
    } else {
      error_ = "expected comparison operator at offset " +
               std::to_string(t.offset);
      return false;
    }
    Advance();
    return true;
  }

  /// Consumes a number (with optional leading '-') or string token.
  bool ParseLiteral(Literal* out) {
    out->negative = false;
    if (Peek().IsSymbol("-")) {
      out->negative = true;
      Advance();
    }
    const Token& t = Peek();
    if (t.kind == TokenKind::kString) {
      if (out->negative) {
        error_ = "cannot negate a string literal at offset " +
                 std::to_string(t.offset);
        return false;
      }
      out->token = t;
      Advance();
      return true;
    }
    if (t.kind != TokenKind::kNumber) {
      error_ = "expected literal at offset " + std::to_string(t.offset);
      return false;
    }
    out->token = t;
    Advance();
    return true;
  }

  bool ParseDecimal(const Literal& lit, Decimal* out) {
    out->negative = lit.negative;
    out->numer = 0;
    out->denom = 1;
    bool frac = false;
    for (char c : lit.token.text) {
      if (c == '.') {
        frac = true;
        continue;
      }
      out->numer = out->numer * 10 + (c - '0');
      if (frac) out->denom *= 10;
      if (out->numer > (__int128{1} << 100)) {
        error_ = "numeric literal too large at offset " +
                 std::to_string(lit.token.offset);
        return false;
      }
    }
    return true;
  }

  /// Binds `dim op literal` to a single range predicate. Unsatisfiable
  /// comparisons (unknown dictionary string, fractional equality on an
  /// integer column) produce the canonical empty range lo=1, hi=0.
  bool MakePredicate(int dim, CompareOp op, const Literal& lit,
                     Predicate* out) {
    Value lo = kValueMin, hi = kValueMax;
    if (lit.token.kind == TokenKind::kString) {
      const Dictionary* dict = schema_.DictionaryOf(dim);
      if (dict == nullptr) {
        error_ = "column '" + schema_.columns[dim] +
                 "' is numeric; string literal not allowed";
        return false;
      }
      const std::string s(lit.token.text);
      switch (op) {
        case CompareOp::kEq: {
          Value code = dict->Encode(s);
          if (code < 0) {
            lo = 1;
            hi = 0;  // Not in dictionary: matches nothing.
          } else {
            lo = hi = code;
          }
          break;
        }
        case CompareOp::kLe:
          hi = dict->EncodeUpperBound(s);
          break;
        case CompareOp::kLt:
          hi = dict->EncodeLowerBound(s) - 1;
          break;
        case CompareOp::kGe:
          lo = dict->EncodeLowerBound(s);
          break;
        case CompareOp::kGt:
          lo = dict->EncodeUpperBound(s) + 1;
          break;
      }
    } else {
      Decimal d;
      if (!ParseDecimal(lit, &d)) return false;
      int64_t scale = schema_.ScaleOf(dim);
      switch (op) {
        case CompareOp::kEq:
          if (!d.IsExact(scale)) {
            lo = 1;
            hi = 0;  // E.g. `col = 1.5` on an integer column.
          } else {
            lo = hi = d.Floor(scale);
          }
          break;
        case CompareOp::kLe:
          hi = d.Floor(scale);
          break;
        case CompareOp::kLt: {
          Value bound = d.Ceil(scale);
          if (bound == kValueMin) {  // `x < min` matches nothing.
            lo = 1;
            hi = 0;
          } else {
            hi = bound - 1;
          }
          break;
        }
        case CompareOp::kGe:
          lo = d.Ceil(scale);
          break;
        case CompareOp::kGt: {
          Value bound = d.Floor(scale);
          if (bound == kValueMax) {  // `x > max` matches nothing.
            lo = 1;
            hi = 0;
          } else {
            lo = bound + 1;
          }
          break;
        }
      }
    }
    out->dim = dim;
    out->lo = lo;
    out->hi = hi;
    return true;
  }

  std::vector<Token> tokens_;
  const TableSchema& schema_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

int TableSchema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i], name)) return static_cast<int>(i);
  }
  return -1;
}

int64_t TableSchema::ScaleOf(int column) const {
  if (column < 0 || column >= static_cast<int>(scales.size())) return 1;
  return scales[column] > 0 ? scales[column] : 1;
}

const Dictionary* TableSchema::DictionaryOf(int column) const {
  if (column < 0 || column >= static_cast<int>(dictionaries.size())) {
    return nullptr;
  }
  return dictionaries[column];
}

ParseResult ParseSql(std::string_view sql, const TableSchema& schema) {
  std::vector<Token> tokens;
  std::string error;
  if (!Lexer(sql).Tokenize(&tokens, &error)) {
    ParseResult out;
    out.error = error;
    return out;
  }
  return Parser(std::move(tokens), schema).Parse();
}

}  // namespace tsunami
