// A small SQL-subset parser for the query class Tsunami serves (§2):
//
//   SELECT <agg> FROM <table> WHERE <expr>
//
// where <agg> is COUNT(*), SUM(col), MIN(col), MAX(col) or AVG(col), and
// <expr> is a boolean combination (AND / OR / NOT, with parentheses; AND
// binds tighter than OR) of predicates over single columns: `col <= 5`,
// `3 < col`, `col = 'JFK'`, `col != 7`, `col BETWEEN 2 AND 7`,
// `col [NOT] IN (1, 2, 3)`. Conjunctions of predicates are merged into one
// rectangle (the paper's query class); anything with OR / NOT / IN binds to
// a BoolExpr the engine serves as a union of disjoint rectangles. The
// parser binds column names against a TableSchema, dictionary-encodes
// string literals, and scales decimal literals to the column's fixed-point
// integer domain (§6.1).
#ifndef TSUNAMI_QUERY_SQL_PARSER_H_
#define TSUNAMI_QUERY_SQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/query/bool_expr.h"
#include "src/storage/dictionary.h"

namespace tsunami {

/// Schema the parser binds column names against. Copies nothing heavy: the
/// dictionaries are borrowed pointers that must outlive the schema.
struct TableSchema {
  std::string table_name;
  std::vector<std::string> columns;
  /// Power-of-ten fixed-point scale per column (§6.1: floating point values
  /// are scaled by the smallest power of 10 that makes them integers).
  /// A scale of 100 means the stored value for literal 12.34 is 1234.
  /// Empty means every column has scale 1.
  std::vector<int64_t> scales;
  /// Optional order-preserving dictionary per column for string-valued
  /// columns; empty vector or null entries mean "numeric column".
  std::vector<const Dictionary*> dictionaries;

  /// Index of `name` in `columns` (case-insensitive), or -1.
  int ColumnIndex(std::string_view name) const;
  int64_t ScaleOf(int column) const;
  const Dictionary* DictionaryOf(int column) const;
};

/// Outcome of parsing one statement. On failure, `error` names the offending
/// token and its character offset. On success, `query` is fully bound.
struct ParseResult {
  bool ok = false;
  std::string error;
  Query query;
  /// True when a predicate is unsatisfiable (e.g. equality with a string
  /// not present in the dictionary, or an empty numeric range). The query
  /// is still well-formed; it just matches no rows. Only meaningful for
  /// conjunctive statements.
  bool empty_result = false;
  /// The bound WHERE clause as a boolean expression (TRUE when absent).
  BoolExpr where;
  /// False when the WHERE clause is a pure conjunction — `query` then holds
  /// the merged rectangle and can be executed directly. True when the
  /// clause uses OR / NOT / IN in a way that denotes a union of rectangles;
  /// execute via ToDisjointBoxes + ExecuteBoxUnion (`query` carries only
  /// the aggregate settings).
  bool disjunctive = false;
};

/// Parses and binds one statement against `schema`. Never throws.
ParseResult ParseSql(std::string_view sql, const TableSchema& schema);

}  // namespace tsunami

#endif  // TSUNAMI_QUERY_SQL_PARSER_H_
