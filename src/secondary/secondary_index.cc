#include "src/secondary/secondary_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tsunami {

namespace {

/// Sort permutation by `dim`, ties broken by original row order.
std::vector<uint32_t> SortPermByDim(const Dataset& data, int dim) {
  std::vector<uint32_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return data.at(a, dim) < data.at(b, dim);
  });
  return perm;
}

/// Probes one physical row against every filter, accumulating on match.
/// Each probe is a random access into the host store — the "pointer
/// chasing" cost of secondary indexes (§1) — so it also counts one range.
void ProbeRow(const ColumnStore& store, int64_t row, const Query& query,
              QueryResult* out) {
  ++out->scanned;
  ++out->cell_ranges;
  for (const Predicate& p : query.filters) {
    Value v = store.Get(row, p.dim);
    if (v < p.lo || v > p.hi) return;
  }
  ++out->matched;
  for (int a = 0; a < query.num_aggs(); ++a) {
    const AggregateSpec spec = query.agg_spec(a);
    AccumulateAgg(spec.op,
                  spec.op == AggKind::kCount ? 0 : store.Get(row, spec.column),
                  out->agg_accumulator(a));
  }
}

/// Plans the scan bounded by the host filter when present, else the whole
/// store, as a RangeTask batch (of one) — the same ScanBatch seam the grid
/// and baselines execute.
QueryPlan PlanHostScan(const ColumnStore& store, int host_dim,
                       const Query& query) {
  QueryPlan plan;
  plan.query = query;
  plan.counters = InitResult(query);
  plan.use_tasks = true;
  int64_t begin = 0, end = store.size();
  if (const Predicate* p = query.FilterOn(host_dim)) {
    begin = store.LowerBound(host_dim, 0, store.size(), p->lo);
    end = store.UpperBound(host_dim, begin, store.size(), p->hi);
  }
  if (begin < end) {
    plan.counters.cell_ranges = 1;
    plan.tasks.push_back(RangeTask{begin, end, /*exact=*/false});
  }
  return plan;
}

/// Serial execution of a host-scan plan (the legacy Execute path).
QueryResult HostScan(const ColumnStore& store, int host_dim,
                     const Query& query) {
  QueryPlan plan = PlanHostScan(store, host_dim, query);
  QueryResult result = plan.counters;
  store.ScanRanges(plan.tasks, query, &result);
  return result;
}

}  // namespace

SortedSecondaryIndex::SortedSecondaryIndex(const Dataset& data, int host_dim,
                                           int key_dim)
    : host_dim_(host_dim), key_dim_(key_dim) {
  store_ = ColumnStore(data, SortPermByDim(data, host_dim));
  int64_t n = store_.size();
  rows_.resize(n);
  std::iota(rows_.begin(), rows_.end(), 0u);
  // Build-time materialization: the key sort needs random access to the
  // whole column, which the encoded store serves as a decoded copy.
  const std::vector<Value> key_col = store_.DecodeColumn(key_dim_);
  std::stable_sort(rows_.begin(), rows_.end(), [&](uint32_t a, uint32_t b) {
    return key_col[a] < key_col[b];
  });
  keys_.resize(n);
  for (int64_t i = 0; i < n; ++i) keys_[i] = key_col[rows_[i]];
}

QueryPlan SortedSecondaryIndex::Prepare(const Query& query) const {
  if (query.FilterOn(key_dim_) != nullptr) {
    // Probe path: row-id chasing has no contiguous ranges to plan.
    return MultiDimIndex::Prepare(query);
  }
  return PlanHostScan(store_, host_dim_, query);
}

QueryResult SortedSecondaryIndex::Execute(const Query& query) const {
  const Predicate* key_filter = query.FilterOn(key_dim_);
  if (key_filter == nullptr) {
    return HostScan(store_, host_dim_, query);
  }
  QueryResult result = InitResult(query);
  auto first = std::lower_bound(keys_.begin(), keys_.end(), key_filter->lo);
  auto last = std::upper_bound(first, keys_.end(), key_filter->hi);
  for (auto it = first; it != last; ++it) {
    ProbeRow(store_, rows_[it - keys_.begin()], query, &result);
  }
  return result;
}

int64_t SortedSecondaryIndex::IndexSizeBytes() const {
  return static_cast<int64_t>(keys_.size()) *
         (sizeof(Value) + sizeof(uint32_t));
}

CorrelationSecondaryIndex::CorrelationSecondaryIndex(const Dataset& data,
                                                     int host_dim,
                                                     int key_dim,
                                                     const Options& options)
    : host_dim_(host_dim), key_dim_(key_dim) {
  store_ = ColumnStore(data, SortPermByDim(data, host_dim));
  int64_t n = store_.size();
  if (n == 0) return;
  const std::vector<Value> key_col = store_.DecodeColumn(key_dim_);
  const std::vector<Value> host_col = store_.DecodeColumn(host_dim_);

  // Equi-depth segmentation of the key domain.
  std::vector<uint32_t> by_key(n);
  std::iota(by_key.begin(), by_key.end(), 0u);
  std::stable_sort(by_key.begin(), by_key.end(), [&](uint32_t a, uint32_t b) {
    return key_col[a] < key_col[b];
  });
  int segments = std::max(1, std::min<int>(options.segments,
                                           static_cast<int>(n / 8 + 1)));
  std::vector<int64_t> seg_begin;
  for (int s = 0; s < segments; ++s) {
    int64_t begin = s * n / segments;
    // Segment boundaries must not split equal keys: a key value belongs to
    // exactly one segment so query routing stays unambiguous.
    if (s > 0) {
      Value boundary = key_col[by_key[begin]];
      while (begin > seg_begin.back() &&
             key_col[by_key[begin - 1]] == boundary) {
        --begin;
      }
      if (begin <= seg_begin.back()) continue;
    }
    seg_begin.push_back(begin);
  }
  seg_begin.push_back(n);

  std::vector<Value> seg_keys, seg_hosts;
  for (size_t s = 0; s + 1 < seg_begin.size(); ++s) {
    int64_t begin = seg_begin[s], end = seg_begin[s + 1];
    seg_keys.clear();
    seg_hosts.clear();
    for (int64_t i = begin; i < end; ++i) {
      seg_keys.push_back(key_col[by_key[i]]);
      seg_hosts.push_back(host_col[by_key[i]]);
    }
    BoundedLinearModel robust =
        BoundedLinearModel::FitRobust(seg_keys, seg_hosts);

    // Residual quantile fence: rows far outside the robust fit become
    // outliers when evicting them tightens the band enough to pay off.
    std::vector<long double> residuals(seg_keys.size());
    for (size_t i = 0; i < seg_keys.size(); ++i) {
      residuals[i] = static_cast<long double>(seg_hosts[i]) -
                     robust.PredictL(seg_keys[i]);
    }
    std::vector<long double> sorted = residuals;
    std::sort(sorted.begin(), sorted.end());
    size_t cut = static_cast<size_t>(
        options.outlier_fraction * static_cast<double>(sorted.size()));
    long double fence_lo = sorted[cut];
    long double fence_hi = sorted[sorted.size() - 1 - cut];
    long double full_band = sorted.back() - sorted.front();
    long double fenced_band = fence_hi - fence_lo;
    bool use_fence = cut > 0 && fenced_band > 0 &&
                     full_band >= options.min_shrink * fenced_band;

    // Refit the bounds on inliers only; fenced-out rows go to the buffer.
    std::vector<Value> in_keys, in_hosts;
    for (size_t i = 0; i < seg_keys.size(); ++i) {
      bool inlier = !use_fence ||
                    (residuals[i] >= fence_lo && residuals[i] <= fence_hi);
      if (inlier) {
        in_keys.push_back(seg_keys[i]);
        in_hosts.push_back(seg_hosts[i]);
      } else {
        outliers_.push_back(by_key[begin + static_cast<int64_t>(i)]);
      }
    }
    BoundedLinearModel model =
        in_keys.size() >= 2 ? BoundedLinearModel::Fit(in_keys, in_hosts)
                            : robust;
    Segment seg;
    seg.key_lo = seg_keys.front();
    seg.key_hi = seg_keys.back();
    segments_.push_back(seg);
    models_.push_back(model);
  }
  std::sort(outliers_.begin(), outliers_.end());
}

QueryPlan CorrelationSecondaryIndex::Prepare(const Query& query) const {
  const Predicate* key_filter = query.FilterOn(key_dim_);
  if (key_filter == nullptr || segments_.empty()) {
    return PlanHostScan(store_, host_dim_, query);
  }
  QueryPlan plan;
  plan.query = query;
  plan.counters = InitResult(query);
  plan.use_tasks = true;

  // Map the key range through each overlapping segment's model. The host
  // ranges of different segments can overlap arbitrarily (and are not even
  // ordered when the correlation is negative), so merge before scanning to
  // keep every row counted exactly once.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (size_t s = 0; s < segments_.size(); ++s) {
    if (segments_[s].key_hi < key_filter->lo ||
        segments_[s].key_lo > key_filter->hi) {
      continue;
    }
    Value lo = std::max(segments_[s].key_lo, key_filter->lo);
    Value hi = std::min(segments_[s].key_hi, key_filter->hi);
    auto [host_lo, host_hi] = models_[s].MapRange(lo, hi);
    int64_t begin = store_.LowerBound(host_dim_, 0, store_.size(), host_lo);
    int64_t end = store_.UpperBound(host_dim_, begin, store_.size(), host_hi);
    if (begin < end) ranges.emplace_back(begin, end);
  }
  std::sort(ranges.begin(), ranges.end());
  for (const auto& r : ranges) {
    if (!plan.tasks.empty() && r.first <= plan.tasks.back().end) {
      plan.tasks.back().end = std::max(plan.tasks.back().end, r.second);
    } else {
      plan.tasks.push_back(RangeTask{r.first, r.second, /*exact=*/false});
    }
  }
  plan.counters.cell_ranges += static_cast<int64_t>(plan.tasks.size());
  return plan;
}

void CorrelationSecondaryIndex::FinishPlan(const QueryPlan& plan,
                                           QueryResult* result) const {
  const Query& query = plan.query;
  const Predicate* key_filter = query.FilterOn(key_dim_);
  if (key_filter == nullptr || segments_.empty()) return;

  // Outliers live outside their segment's model band, but the band of
  // *another* segment may still cover them — probe only rows no scanned
  // range (the plan's merged, sorted tasks) already visited. Depends on
  // the plan alone, not on how the scans were chunked, so any executor of
  // the plan (base ExecutePlan, QueryService) runs it after the scans.
  auto covered = [&](int64_t row) {
    auto it = std::upper_bound(
        plan.tasks.begin(), plan.tasks.end(), row,
        [](int64_t r, const RangeTask& range) { return r < range.begin; });
    return it != plan.tasks.begin() && row < (it - 1)->end;
  };
  for (uint32_t row : outliers_) {
    Value key = store_.Get(row, key_dim_);
    if (key < key_filter->lo || key > key_filter->hi) continue;
    if (covered(row)) continue;
    ProbeRow(store_, row, query, result);
  }
}

QueryResult CorrelationSecondaryIndex::Execute(const Query& query) const {
  ExecContext ctx;
  return ExecutePlan(Prepare(query), ctx);
}

int64_t CorrelationSecondaryIndex::IndexSizeBytes() const {
  return static_cast<int64_t>(segments_.size()) *
             (2 * sizeof(Value) + BoundedLinearModel::kSizeBytes) +
         static_cast<int64_t>(outliers_.size()) * sizeof(uint32_t);
}

}  // namespace tsunami
