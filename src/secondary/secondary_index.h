// Secondary indexes over a host-clustered table.
//
// The paper's introduction motivates clustered multi-dimensional indexes by
// the weaknesses of secondary indexes: "their large storage overhead and
// the latency incurred by chasing pointers make them viable only when the
// predicate on the indexed dimension has a very high selectivity" (§1), and
// §7 discusses Correlation Map [20] and Hermit [45], which shrink secondary
// indexes by exploiting column correlation. This module makes both claims
// reproducible:
//
//  * SortedSecondaryIndex — the conventional design: a sorted
//    (value, row id) list over one column of a table clustered by another.
//    Lookups chase row ids into the host store (random access), so cost
//    scales with the candidate count; storage is O(n).
//  * CorrelationSecondaryIndex — a Hermit/Correlation-Map-style learned
//    design: per-segment robust linear mappings from the indexed column to
//    the host (clustered) column plus an explicit outlier row-id buffer.
//    A filter over the indexed column becomes a host-range scan, and the
//    structure is model-sized instead of O(n).
//
// Both implement MultiDimIndex over a store sorted by the host dimension,
// so they slot directly into the benchmark harness; bench_secondary
// reproduces the selectivity crossover and the size gap.
#ifndef TSUNAMI_SECONDARY_SECONDARY_INDEX_H_
#define TSUNAMI_SECONDARY_SECONDARY_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/linear_model.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

/// Conventional secondary index: sorted (value, row id) pairs over
/// `key_dim` of a table clustered by `host_dim`. Queries filtering
/// `key_dim` probe candidates by row id; anything else falls back to a
/// scan of the host-sorted store (using the host filter when present).
class SortedSecondaryIndex : public MultiDimIndex {
 public:
  SortedSecondaryIndex(const Dataset& data, int host_dim, int key_dim);

  std::string Name() const override { return "SecondaryBTree"; }
  QueryResult Execute(const Query& query) const override;

  /// Host-scan queries (no key filter) plan their bounded host range as a
  /// task batch; key-filtered queries keep the probe path (random row-id
  /// chasing cannot be expressed as contiguous RangeTasks) and return a
  /// passthrough plan.
  QueryPlan Prepare(const Query& query) const override;

  /// The entry list: one (value, row id) pair per row.
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  int key_dim() const { return key_dim_; }

 private:
  int host_dim_ = 0;
  int key_dim_ = 0;
  std::vector<Value> keys_;      // Sorted.
  std::vector<uint32_t> rows_;   // Parallel to keys_.
  ColumnStore store_;            // Clustered by host_dim_.
};

/// Hermit-style learned secondary index: segments the indexed column,
/// fits a robust bounded linear mapping key -> host per segment, and
/// buffers rows outside the tightened error band in an explicit outlier
/// list. A filter [lo, hi] over the key maps to one host range per
/// overlapping segment (merged when adjacent), scanned in the clustered
/// store; outliers are probed individually.
class CorrelationSecondaryIndex : public MultiDimIndex {
 public:
  struct Options {
    int segments = 64;
    /// Residual quantile fence: rows outside the
    /// [fraction, 1 - fraction] residual band of their segment become
    /// outliers when that tightens the band by at least `min_shrink`.
    double outlier_fraction = 0.01;
    double min_shrink = 2.0;
  };

  CorrelationSecondaryIndex(const Dataset& data, int host_dim, int key_dim)
      : CorrelationSecondaryIndex(data, host_dim, key_dim, Options()) {}
  CorrelationSecondaryIndex(const Dataset& data, int host_dim, int key_dim,
                            const Options& options);

  std::string Name() const override { return "SecondaryHermit"; }
  QueryResult Execute(const Query& query) const override;

  /// Plans the merged host ranges (key-filtered queries) or the bounded
  /// host scan up front; execution scans them as one batch and then probes
  /// the uncovered outliers (the plan epilogue below).
  QueryPlan Prepare(const Query& query) const override;

  /// Probes the outlier rows no planned range covers — the non-range half
  /// of a Hermit plan, run by base ExecutePlan and by QueryService's
  /// chunked jobs after the task scans.
  void FinishPlan(const QueryPlan& plan, QueryResult* result) const override;

  /// Segment boundaries + models + outlier row ids: model-sized.
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  int64_t num_outliers() const {
    return static_cast<int64_t>(outliers_.size());
  }
  int num_segments() const { return static_cast<int>(models_.size()); }

 private:
  struct Segment {
    Value key_lo = 0;  // Inclusive key range this segment covers.
    Value key_hi = 0;
  };

  int host_dim_ = 0;
  int key_dim_ = 0;
  std::vector<Segment> segments_;
  std::vector<BoundedLinearModel> models_;  // Parallel to segments_.
  std::vector<uint32_t> outliers_;          // Host-store row ids, sorted.
  ColumnStore store_;                       // Clustered by host_dim_.
};

}  // namespace tsunami

#endif  // TSUNAMI_SECONDARY_SECONDARY_INDEX_H_
