#include "src/serve/plan_cache.h"

#include <utility>

namespace tsunami {

int64_t PlanCache::EstimatePlanBytes(const QueryPlan& plan) {
  // The dominant variable cost is the task vector — a broad rectangle over
  // a fragmented grid can plan thousands of ranges while a point lookup
  // plans one — plus the bound query's own vectors. The cache entry's key
  // (normalized rect + aggregate list) and list/map node overhead ride in
  // the sizeof(Entry) constant added at insert time.
  int64_t bytes = static_cast<int64_t>(sizeof(QueryPlan));
  bytes += static_cast<int64_t>(plan.tasks.capacity() * sizeof(RangeTask));
  bytes += static_cast<int64_t>(plan.query.filters.capacity() *
                                sizeof(Predicate));
  bytes += static_cast<int64_t>(plan.query.aggs.capacity() *
                                sizeof(AggregateSpec));
  bytes += static_cast<int64_t>(plan.counters.extra.capacity() *
                                sizeof(int64_t));
  return bytes;
}

namespace {

/// Footprint of one Entry beyond the plan itself: the entry, its key's
/// vectors, and the bucket-map node.
int64_t EntryOverheadBytes(const std::vector<Predicate>& rect,
                           const std::vector<AggregateSpec>& aggs) {
  return static_cast<int64_t>(rect.capacity() * sizeof(Predicate)) +
         static_cast<int64_t>(aggs.capacity() * sizeof(AggregateSpec)) +
         64;  // List/map node bookkeeping, amortized.
}

}  // namespace

PlanCache::Key PlanCache::Key::Of(const Query& query) {
  Key key;
  key.rect = NormalizedFilters(query);
  key.aggs = AggregateList(query);
  key.fingerprint = QueryFingerprint(key.rect, key.aggs);
  return key;
}

bool PlanCache::Key::Matches(const Key& other) const {
  return aggs == other.aggs && NormalizedRectEqual(rect, other.rect);
}

PlanCache::LruList::iterator PlanCache::FindLocked(const MultiDimIndex& index,
                                                   const Key& key) {
  auto [first, last] = map_.equal_range(key.fingerprint);
  for (auto it = first; it != last; ++it) {
    LruList::iterator entry = it->second;
    if (entry->index == &index && entry->key.Matches(key)) {
      return entry;
    }
  }
  return lru_.end();
}

std::shared_ptr<const QueryPlan> PlanCache::LookupKeyed(
    const MultiDimIndex& index, const Key& key) {
  // Read the version outside the lock (it's an atomic on versioned stores,
  // a constant 0 elsewhere).
  const uint64_t version = index.StoreVersion();
  std::lock_guard<std::mutex> lock(mu_);
  LruList::iterator entry = FindLocked(index, key);
  if (entry == lru_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (entry->plan->store_version != version) {
    // The store published a new snapshot since this plan was prepared: the
    // plan's tasks (and its pin) address a superseded version. Drop the
    // entry — releasing the stale snapshot pin — and miss, so the caller
    // re-prepares against the current version.
    EraseLocked(entry);
    ++stats_.stale;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, entry);  // Touch: move to MRU position.
  return entry->plan;
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const MultiDimIndex& index,
                                                   const Query& query) {
  return LookupKeyed(index, Key::Of(query));
}

std::shared_ptr<const QueryPlan> PlanCache::GetOrPrepare(
    const MultiDimIndex& index, const Query& query) {
  // Normalize and hash once, outside the lock; hits and the miss's insert
  // both reuse the key.
  Key key = Key::Of(query);
  if (std::shared_ptr<const QueryPlan> plan = LookupKeyed(index, key)) {
    return plan;
  }
  // Prepare outside the lock: planning is the expensive part and must not
  // serialize concurrent submitters. A racing miss on the same key wastes
  // one Prepare; Insert below deduplicates the cache itself.
  auto plan = std::make_shared<const QueryPlan>(index.Prepare(query));
  InsertKeyed(index, std::move(key), plan);
  return plan;
}

void PlanCache::InsertKeyed(const MultiDimIndex& index, Key key,
                            std::shared_ptr<const QueryPlan> plan) {
  if (capacity_ <= 0) return;
  const int64_t entry_bytes = static_cast<int64_t>(sizeof(Entry)) +
                              EstimatePlanBytes(*plan) +
                              EntryOverheadBytes(key.rect, key.aggs);
  std::lock_guard<std::mutex> lock(mu_);
  LruList::iterator existing = FindLocked(index, key);
  if (existing != lru_.end()) {
    // Racing preparer got here first: refresh (the plans are equivalent)
    // and touch. Re-account: the fresh plan's footprint can differ.
    AccountLocked(entry_bytes - existing->bytes);
    existing->bytes = entry_bytes;
    existing->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, existing);
  } else {
    const uint64_t fp = key.fingerprint;
    lru_.push_front(Entry{&index, std::move(key), std::move(plan),
                          entry_bytes});
    map_.emplace(fp, lru_.begin());
    AccountLocked(entry_bytes);
  }
  // Evict by entries AND bytes: a giant plan costs what it costs, not
  // "one slot". The newest entry itself is never evicted — a cache whose
  // budget fits nothing degenerates to caching exactly the MRU plan.
  while (lru_.size() > 1 &&
         (static_cast<int64_t>(lru_.size()) > capacity_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
  }
}

void PlanCache::AccountLocked(int64_t delta) {
  bytes_ += delta;
  if (governor_ != nullptr) {
    if (delta >= 0) {
      governor_->Charge(ResourcePool::kPlanCache, delta);
    } else {
      governor_->Release(ResourcePool::kPlanCache, -delta);
    }
  }
}

void PlanCache::EraseLocked(LruList::iterator entry) {
  auto [first, last] = map_.equal_range(entry->key.fingerprint);
  for (auto it = first; it != last; ++it) {
    if (it->second == entry) {
      map_.erase(it);
      break;
    }
  }
  AccountLocked(-entry->bytes);
  lru_.erase(entry);
}

int64_t PlanCache::InvalidateIndex(const MultiDimIndex& index) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    LruList::iterator entry = it++;
    if (entry->index == &index) {
      EraseLocked(entry);
      ++dropped;
    }
  }
  stats_.stale += dropped;
  return dropped;
}

void PlanCache::Insert(const MultiDimIndex& index, const Query& query,
                       std::shared_ptr<const QueryPlan> plan) {
  InsertKeyed(index, Key::Of(query), std::move(plan));
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  AccountLocked(-bytes_);
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.size = static_cast<int64_t>(lru_.size());
  out.bytes = bytes_;
  return out;
}

}  // namespace tsunami
