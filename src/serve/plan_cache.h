// Bounded LRU cache of prepared QueryPlans, keyed on a normalized
// filter-rectangle fingerprint. Bounded two ways: by entry count and —
// because plans vary enormously in size (a point lookup plans one range, a
// broad rectangle over a fragmented grid plans thousands) — by estimated
// bytes, optionally mirrored into a ResourceGovernor's plan-cache pool.
//
// The serving path's planning cost (region collection, grid cell
// enumeration, binary-search refinement, secondary-range merging) repeats
// on every arrival of ad-hoc traffic even when the traffic itself repeats —
// dashboards refresh the same rectangles, applications template the same
// statements with identical constants. The cache closes that gap: a plan is
// keyed by (index identity, normalized filter rectangle, aggregate list),
// so any later query answer-equivalent to a cached one replays the prepared
// ExecutePlan path without re-routing or re-planning. Normalization
// (NormalizedFilters in types.h) sorts predicates by dimension and
// intersects same-dimension conjuncts, so filter order and redundant
// conjuncts do not fragment the cache; the `type` label is excluded — it
// never affects answers.
//
// Plans are handed out as shared_ptr<const QueryPlan>: hits are a hash
// probe plus a refcount, never a task-vector copy, and an evicted plan
// stays alive for whoever is still executing it.
//
// Invalidation: plans record the producing index's StoreVersion(); a hit
// whose version no longer matches is dropped (releasing the plan's snapshot
// pin) and counted as a stale miss, so cached plans never scan a superseded
// snapshot. Static indexes are always version 0, where this check is free
// and never fires — for those, a cache still must not outlive its index or
// survive an in-place rebuild (QueryService owns one cache per index for
// exactly this reason). Versioned stores (src/ingest) bump the version on
// every publish; wiring IngestStore::AddPublishListener to InvalidateIndex
// additionally drops stale entries eagerly, bounding how long a dead
// version stays pinned by idle cache entries. Delta inserts do NOT
// invalidate — delta rows are a FinishPlan epilogue read at execution time,
// not part of the plan (and a chunk roll bumps the version anyway).
//
// Thread-safe; one mutex. Lookups are a short critical section and misses
// prepare *outside* the lock, so concurrent submitters never serialize
// behind each other's planning (two racing misses on the same key both
// prepare and the loser's insert becomes a refresh — wasted work, never a
// wrong answer).
#ifndef TSUNAMI_SERVE_PLAN_CACHE_H_
#define TSUNAMI_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/index.h"
#include "src/common/resource_governor.h"
#include "src/common/types.h"

namespace tsunami {

class PlanCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    /// Entries dropped because their store_version fell behind the index
    /// (each also counted as a miss when dropped on lookup).
    int64_t stale = 0;
    int64_t size = 0;   // Entries currently cached.
    int64_t bytes = 0;  // Estimated footprint of the cached entries.

    double HitRate() const {
      int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  /// `capacity` caps the number of cached plans; 0 disables caching
  /// entirely (every GetOrPrepare prepares fresh — the cold baseline the
  /// bench A/Bs against). `max_bytes` additionally caps the cache's
  /// estimated footprint (a giant plan — many tasks — counts for what it
  /// actually costs, not "one entry"); 0 = entries-only. `governor` (when
  /// set; must outlive the cache) mirrors the footprint into
  /// ResourcePool::kPlanCache so the process-wide resource picture
  /// includes cached plans.
  explicit PlanCache(int64_t capacity, int64_t max_bytes = 0,
                     ResourceGovernor* governor = nullptr)
      : capacity_(capacity), max_bytes_(max_bytes), governor_(governor) {}
  ~PlanCache() { Clear(); }

  /// Estimated heap footprint of one cached plan (the eviction currency).
  static int64_t EstimatePlanBytes(const QueryPlan& plan);

  /// The cached plan for a query answer-equivalent to `query` on `index`,
  /// or nullptr. Counts a hit or miss.
  std::shared_ptr<const QueryPlan> Lookup(const MultiDimIndex& index,
                                          const Query& query);

  /// Cache-through prepare: Lookup, and on a miss call index.Prepare
  /// (outside the lock) and insert the result.
  std::shared_ptr<const QueryPlan> GetOrPrepare(const MultiDimIndex& index,
                                                const Query& query);

  /// Inserts (or refreshes) the plan for `query`, evicting the least
  /// recently used entry when over capacity. No-op at capacity 0.
  void Insert(const MultiDimIndex& index, const Query& query,
              std::shared_ptr<const QueryPlan> plan);

  /// Drops every entry (stats persist). Call when the backing index is
  /// rebuilt in place.
  void Clear();

  /// Drops every entry for `index`, returning how many. The eager arm of
  /// version invalidation: a versioned store's publish listener calls this
  /// so idle cached plans release their superseded snapshot pins promptly
  /// instead of waiting to be looked up or evicted.
  int64_t InvalidateIndex(const MultiDimIndex& index);

  Stats stats() const;

 private:
  /// A query's cache identity, normalized once per call — *outside* mu_ —
  /// so the locked sections compare plain vectors instead of re-running
  /// NormalizedFilters (which allocates) per candidate entry.
  struct Key {
    uint64_t fingerprint = 0;
    std::vector<Predicate> rect;       // NormalizedFilters(query).
    std::vector<AggregateSpec> aggs;   // The query's aggregate list.

    static Key Of(const Query& query);
    bool Matches(const Key& other) const;
  };
  struct Entry {
    const MultiDimIndex* index = nullptr;
    Key key;  // For collision confirmation on fingerprint match.
    std::shared_ptr<const QueryPlan> plan;
    int64_t bytes = 0;  // Estimated footprint charged for this entry.
  };
  using LruList = std::list<Entry>;

  /// Finds the entry for (index, key) in the bucket map, confirming
  /// semantic equivalence allocation-free. Caller holds mu_.
  LruList::iterator FindLocked(const MultiDimIndex& index, const Key& key);

  /// Removes one entry from the list and its bucket. Caller holds mu_.
  void EraseLocked(LruList::iterator entry);

  /// Adjusts bytes_ by `delta` and mirrors it into the governor's
  /// plan-cache pool. Caller holds mu_.
  void AccountLocked(int64_t delta);

  std::shared_ptr<const QueryPlan> LookupKeyed(const MultiDimIndex& index,
                                               const Key& key);
  void InsertKeyed(const MultiDimIndex& index, Key key,
                   std::shared_ptr<const QueryPlan> plan);

  int64_t capacity_;
  int64_t max_bytes_;
  ResourceGovernor* governor_;
  mutable std::mutex mu_;
  LruList lru_;  // Front = most recently used.
  /// fingerprint -> entries (collisions chain); iterators into lru_ stay
  /// valid across splices.
  std::unordered_multimap<uint64_t, LruList::iterator> map_;
  int64_t bytes_ = 0;  // Sum of Entry::bytes (mu_).
  Stats stats_;
};

}  // namespace tsunami

#endif  // TSUNAMI_SERVE_PLAN_CACHE_H_
