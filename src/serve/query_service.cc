#include "src/serve/query_service.h"

#include "src/exec/runner.h"
#include "src/exec/thread_pool.h"

namespace tsunami {

QueryService::QueryService(const MultiDimIndex* index,
                           const ServiceOptions& options)
    : index_(index),
      options_(options),
      cache_(options.plan_cache_capacity),
      scheduler_(options.threads < 0 ? ThreadPool::DefaultThreads()
                                     : options.threads) {}

QueryService::~QueryService() = default;

QueryService::Ticket QueryService::Submit(const Query& query,
                                          const SubmitOptions& options) {
  return Admit(cache_.GetOrPrepare(*index_, query), options);
}

QueryService::Ticket QueryService::SubmitPlan(
    std::shared_ptr<const QueryPlan> plan, const SubmitOptions& options) {
  return Admit(std::move(plan), options);
}

std::vector<QueryService::Ticket> QueryService::SubmitBatch(
    std::span<const Query> queries, const SubmitOptions& options) {
  std::vector<Ticket> tickets;
  tickets.reserve(queries.size());
  for (const Query& query : queries) {
    tickets.push_back(Submit(query, options));
  }
  return tickets;
}

QueryService::Ticket QueryService::Admit(
    std::shared_ptr<const QueryPlan> plan, const SubmitOptions& options) {
  auto pending = std::make_unique<Pending>();
  Pending* p = pending.get();
  p->plan = std::move(plan);
  p->target = &index_->PlanTarget(*p->plan);
  p->ctx.scan = options.scan;
  p->ctx.cancel = options.cancel;
  p->ctx.deadline_seconds = options.deadline_seconds;
  p->ctx.priority = options.priority;
  p->ctx.StartBatch();  // Deadline clock starts at admission.

  int64_t num_chunks;
  if (p->plan->use_tasks) {
    p->chunks = ChunkRangeTasks(
        std::span<const RangeTask>(p->plan->tasks), options_.chunk_rows);
    num_chunks = static_cast<int64_t>(p->chunks.size());
    p->partials.resize(p->chunks.size());
  } else {
    // Passthrough plan (no plan-then-scan path): one chunk running the
    // index's own ExecutePlan inline on a worker — still overlapped with
    // other queries, just not decomposed within itself.
    num_chunks = 1;
    p->partials.resize(1);
  }

  submitted_.fetch_add(1, std::memory_order_relaxed);
  const bool use_tasks = p->plan->use_tasks;
  p->stop_target = {&p->ctx, &p->stopped};
  p->chunks_left.store(num_chunks, std::memory_order_relaxed);
  p->job = scheduler_.Submit(
      num_chunks,
      [p, use_tasks](int64_t chunk, int /*worker*/) {
        QueryResult& partial = p->partials[chunk];
        partial = InitResult(p->plan->query);
        if (p->ctx.ShouldStop()) {
          // Skipped outright: record it, so Await returns the identity
          // result even if a borrowed cancel flag is cleared again later.
          p->stopped.store(true, std::memory_order_relaxed);
        } else if (use_tasks) {
          // One disjoint slice of the planned ranges. The stop probe rides
          // in the scan options so a deadline lands mid-chunk too — and it
          // records the cut on the Pending the instant it fires, which is
          // the only race-free witness that this scan was abandoned.
          ScanOptions scan = p->ctx.scan;
          if (p->ctx.Cancellable()) {
            scan.stop_probe = [](const void* arg) {
              const auto* t = static_cast<const Pending::StopTarget*>(arg);
              if (!t->ctx->ShouldStop()) return false;
              t->stopped->store(true, std::memory_order_relaxed);
              return true;
            };
            scan.stop_arg = &p->stop_target;
          }
          p->target->store().ScanRanges(p->chunks[chunk], p->plan->query,
                                        &partial, scan);
        } else {
          ExecContext inline_ctx = p->ctx.Fork();
          partial = p->target->ExecutePlan(*p->plan, inline_ctx);
          // The passthrough executor checks the context internally; a stop
          // it observed is still observable here (deadlines never
          // un-expire, and a toggled flag closes an ~ns window at worst).
          if (inline_ctx.ShouldStop()) {
            p->stopped.store(true, std::memory_order_relaxed);
          }
        }
        // Last chunk out stamps the query's true completion time, on the
        // worker — Await's return can be much later on a saturated host.
        if (p->chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          p->latency_seconds = p->admit_timer.ElapsedSeconds();
        }
      },
      options.priority);
  // Register only after the Pending is fully initialized (job assigned):
  // tickets are sequential, so a concurrent Await guessing the next id
  // must find either nothing or a complete entry — never a null JobRef.
  // Chunks already running don't care; they hold `p`, not the ticket.
  Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket = next_ticket_++;
    tickets_.emplace(ticket, std::move(pending));
  }
  return ticket;
}

QueryResult QueryService::Await(Ticket ticket, bool* cancelled) {
  AwaitInfo info;
  QueryResult result = Await(ticket, &info);
  if (cancelled != nullptr) *cancelled = info.cancelled;
  return result;
}

QueryResult QueryService::Await(Ticket ticket, AwaitInfo* info) {
  bool* cancelled = info != nullptr ? &info->cancelled : nullptr;
  std::unique_ptr<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tickets_.find(ticket);
    if (it != tickets_.end()) {
      pending = std::move(it->second);
      tickets_.erase(it);
    }
  }
  if (pending == nullptr) {
    // Unknown or already-awaited ticket: nothing to wait for.
    if (cancelled != nullptr) *cancelled = true;
    return QueryResult{};
  }
  scheduler_.Wait(pending->job);
  if (info != nullptr) info->latency_seconds = pending->latency_seconds;
  const Query& query = pending->plan->query;
  if (pending->stopped.load(std::memory_order_relaxed)) {
    // A worker recorded that it skipped or cut short at least one chunk:
    // some partials may be partial accumulations. Never pass those off as
    // an answer — the query reverts to its identity result. (The record is
    // consulted instead of re-evaluating ShouldStop() here: a query whose
    // chunks all finished before the deadline expired is returned intact,
    // and a cancel flag cleared again after cutting a scan short cannot
    // smuggle partials through.)
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    if (cancelled != nullptr) *cancelled = true;
    return InitResult(query);
  }
  if (cancelled != nullptr) *cancelled = false;
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!pending->plan->use_tasks) {
    return std::move(pending->partials[0]);
  }
  // Merge: plan counters + every disjoint chunk partial + the target's
  // non-range epilogue — the FinishPlan contract that makes this equal to
  // Execute(query) bit for bit.
  QueryResult result = pending->plan->counters;
  for (const QueryResult& partial : pending->partials) {
    MergeQueryResults(query, partial, &result);
  }
  pending->target->FinishPlan(*pending->plan, &result);
  return result;
}

QueryResult QueryService::Run(const Query& query,
                              const SubmitOptions& options, bool* cancelled) {
  return Await(Submit(query, options), cancelled);
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.queue_depth = scheduler_.queue_depth();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.tickets_in_flight = static_cast<int64_t>(tickets_.size());
  }
  s.cache = cache_.stats();
  s.scheduler = scheduler_.stats();
  return s;
}

}  // namespace tsunami
