#include "src/serve/query_service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <ostream>
#include <thread>
#include <utility>

#include "src/exec/runner.h"
#include "src/exec/thread_pool.h"

namespace tsunami {

const char* ToString(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kQueueFull:
      return "queue-full";
    case AdmissionOutcome::kDeadlineInfeasible:
      return "deadline-infeasible";
    case AdmissionOutcome::kClientBusy:
      return "client-busy";
    case AdmissionOutcome::kDraining:
      return "draining";
  }
  return "unknown-admission-outcome";
}

const char* ToString(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kCompleted:
      return "completed";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kTimedOut:
      return "timed-out";
    case QueryOutcome::kShed:
      return "shed";
    case QueryOutcome::kFailed:
      return "failed";
    case QueryOutcome::kRejected:
      return "rejected";
    case QueryOutcome::kAlreadyConsumed:
      return "already-consumed";
  }
  return "unknown-query-outcome";
}

std::ostream& operator<<(std::ostream& os, AdmissionOutcome outcome) {
  return os << ToString(outcome);
}

std::ostream& operator<<(std::ostream& os, QueryOutcome outcome) {
  return os << ToString(outcome);
}

namespace {

ServiceOptions SanitizeOptions(ServiceOptions options) {
  // The watermark is a fraction of the admission caps; a value outside
  // [0, 1] would silently disable (or invert) the low-priority
  // reservation, so it is clamped rather than trusted.
  options.low_priority_watermark =
      std::clamp(options.low_priority_watermark, 0.0, 1.0);
  return options;
}

}  // namespace

QueryService::QueryService(const MultiDimIndex* index,
                           const ServiceOptions& options)
    : index_(index),
      options_(SanitizeOptions(options)),
      cache_(options.plan_cache_capacity, options.plan_cache_max_bytes,
             options.governor),
      scheduler_(options.threads < 0 ? ThreadPool::DefaultThreads()
                                     : options.threads) {}

QueryService::~QueryService() = default;

QueryService::Admission QueryService::Submit(const Query& query,
                                             const SubmitOptions& options) {
  return Admit(cache_.GetOrPrepare(*index_, query), options);
}

QueryService::Admission QueryService::SubmitPlan(
    std::shared_ptr<const QueryPlan> plan, const SubmitOptions& options) {
  return Admit(std::move(plan), options);
}

std::vector<QueryService::Admission> QueryService::SubmitBatch(
    std::span<const Query> queries, const SubmitOptions& options) {
  std::vector<Admission> admissions;
  admissions.reserve(queries.size());
  for (const Query& query : queries) {
    admissions.push_back(Submit(query, options));
  }
  return admissions;
}

bool QueryService::RecordStop(const Pending* p, uint8_t cause) {
  // First writer wins: the earliest recorded cause is the truthful one (a
  // deadline expiring after a shed does not relabel the shed). Returns
  // whether this call installed the cause, so a caller that counts an
  // outcome (the shedder) counts only causes it actually recorded.
  uint8_t expected = Pending::kStopNone;
  return p->stop_cause.compare_exchange_strong(expected, cause,
                                               std::memory_order_relaxed);
}

uint8_t QueryService::CauseOf(const ExecContext& ctx) {
  if (ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_relaxed)) {
    return Pending::kStopCancelled;
  }
  return Pending::kStopTimedOut;
}

bool QueryService::HasRoom(int64_t num_chunks, int priority) const {
  // Low-priority traffic only fills up to the watermark; the remainder is
  // headroom for latency-sensitive queries.
  const bool low = priority <= 0;
  if (options_.max_queued_queries > 0) {
    int64_t cap = options_.max_queued_queries;
    if (low) {
      cap = std::max<int64_t>(
          1, static_cast<int64_t>(cap * options_.low_priority_watermark));
    }
    if (active_queries_.load(std::memory_order_relaxed) + 1 > cap) {
      return false;
    }
  }
  if (options_.max_queued_chunks > 0) {
    int64_t cap = options_.max_queued_chunks;
    if (low) {
      cap = std::max<int64_t>(
          1, static_cast<int64_t>(cap * options_.low_priority_watermark));
    }
    if (admitted_chunks_.load(std::memory_order_relaxed) + num_chunks > cap) {
      return false;
    }
  }
  return true;
}

void QueryService::ReleaseChunks(Pending* p, int64_t n) {
  // CAS-take: a finishing chunk (n = 1) and a shed releasing the remainder
  // (n = max) race here; each unit of the held budget is returned exactly
  // once no matter how the takes interleave.
  int64_t held = p->gauge_held.load(std::memory_order_relaxed);
  int64_t take;
  do {
    take = std::min(held, n);
    if (take <= 0) return;
  } while (!p->gauge_held.compare_exchange_weak(held, held - take,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed));
  admitted_chunks_.fetch_sub(take, std::memory_order_relaxed);
}

void QueryService::ReleaseQuery(Pending* p) {
  bool expected = false;
  if (p->query_released.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
    active_queries_.fetch_sub(1, std::memory_order_relaxed);
    ReleaseClientSlot(p->client_id, p->client_count);
  }
}

std::shared_ptr<std::atomic<int64_t>> QueryService::ReserveClientSlot(
    int64_t client_id) {
  std::lock_guard<std::mutex> lock(clients_mu_);
  std::shared_ptr<std::atomic<int64_t>>& slot = client_inflight_[client_id];
  if (slot == nullptr) slot = std::make_shared<std::atomic<int64_t>>(0);
  if (slot->load(std::memory_order_relaxed) >=
      options_.max_inflight_per_client) {
    return nullptr;
  }
  slot->fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void QueryService::ReleaseClientSlot(
    int64_t client_id, const std::shared_ptr<std::atomic<int64_t>>& count) {
  if (count == nullptr) return;
  if (count->fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Opportunistic cleanup so ephemeral client ids don't grow the map
    // without bound. Re-checked under the lock: an admitter that already
    // took the map slot increments under clients_mu_, so a zero observed
    // here while we still own the mapping really is idle.
    std::lock_guard<std::mutex> lock(clients_mu_);
    auto it = client_inflight_.find(client_id);
    if (it != client_inflight_.end() && it->second == count &&
        it->second->load(std::memory_order_relaxed) == 0) {
      client_inflight_.erase(it);
    }
  }
}

void QueryService::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

void QueryService::Drain() {
  BeginDrain();
  // Drain is a shutdown-path rarity: a poll loop is simpler and no less
  // correct than wiring a condition variable through every release path.
  while (active_queries_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

bool QueryService::Ready(Ticket ticket) const {
  if (ticket == 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return true;  // Await returns at once anyway.
  const TaskScheduler::JobRef& job = it->second->job;
  return job == nullptr || job->finished();
}

void QueryService::ShedVictims(int priority, int64_t num_chunks) {
  // admission_mu_ is held: no new victims can be admitted under us, and no
  // competing shed can double-release (ReleaseChunks is race-free anyway).
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, Pending*>> victims;
  for (auto& entry : tickets_) {
    Pending* v = entry.second.get();
    if (v->ctx.priority >= priority) continue;
    if (v->stop_cause.load(std::memory_order_relaxed) != Pending::kStopNone) {
      continue;
    }
    // A finished query holds no reclaimable budget — and must not be
    // relabelled as shed under its awaiter. (A victim finishing between
    // this check and the stop record loses a completed answer, but never
    // yields a wrong one: its Await returns the identity result as shed.)
    if (v->job != nullptr && v->job->finished()) continue;
    victims.emplace_back(v->ctx.priority, v);
  }
  std::sort(victims.begin(), victims.end(),
            [](const std::pair<int, Pending*>& a,
               const std::pair<int, Pending*>& b) {
              return a.first < b.first;
            });
  for (const auto& victim : victims) {
    if (HasRoom(num_chunks, priority)) break;
    Pending* v = victim.second;
    // A worker may record kStopTimedOut/kStopCancelled between our
    // stop_cause check above and here; count the shed only when this CAS
    // installed it, so the query lands in exactly one outcome stat.
    if (RecordStop(v, Pending::kStopShed)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
    ReleaseChunks(v, std::numeric_limits<int64_t>::max());
    ReleaseQuery(v);
  }
}

void QueryService::BoostNearDeadline() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : tickets_) {
    Pending* p = entry.second.get();
    if (p->ctx.deadline_seconds <= 0.0) continue;
    if (p->boosted.load(std::memory_order_relaxed)) continue;
    if (p->stop_cause.load(std::memory_order_relaxed) != Pending::kStopNone) {
      continue;
    }
    if (p->job == nullptr || p->job->finished()) continue;
    if (p->admit_timer.ElapsedSeconds() > 0.5 * p->ctx.deadline_seconds) {
      scheduler_.Boost(p->job);
      p->boosted.store(true, std::memory_order_relaxed);
    }
  }
}

QueryService::Admission QueryService::Admit(
    std::shared_ptr<const QueryPlan> plan, const SubmitOptions& options) {
  auto pending = std::make_unique<Pending>();
  Pending* p = pending.get();
  p->plan = std::move(plan);
  p->target = &index_->PlanTarget(*p->plan);
  p->ctx.scan = options.scan;
  p->ctx.cancel = options.cancel;
  p->ctx.deadline_seconds = options.deadline_seconds;
  p->ctx.priority = options.priority;

  submitted_.fetch_add(1, std::memory_order_relaxed);

  // A draining service is on its way down: it finishes what it admitted,
  // it starts nothing new.
  if (draining_.load(std::memory_order_acquire)) {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    return Admission{0, AdmissionOutcome::kDraining};
  }

  // Fail fast on work that could not finish in budget even on an idle
  // machine: burning workers on a query that must time out only adds queue
  // wait to every other query's deadline.
  if (options_.reject_infeasible_deadlines && options.deadline_seconds > 0.0) {
    const double predicted = PredictPlanNanos(*p->plan, options_.cost_weights);
    if (predicted > options.deadline_seconds * 1e9) {
      rejected_infeasible_.fetch_add(1, std::memory_order_relaxed);
      return Admission{0, AdmissionOutcome::kDeadlineInfeasible};
    }
  }

  // Per-client fairness cap: reserve this client's slot before the global
  // budget so a greedy client is turned away without ever contending for
  // (or holding) shared admission capacity.
  if (options_.max_inflight_per_client > 0 && options.client_id >= 0) {
    p->client_count = ReserveClientSlot(options.client_id);
    if (p->client_count == nullptr) {
      rejected_client_busy_.fetch_add(1, std::memory_order_relaxed);
      return Admission{0, AdmissionOutcome::kClientBusy};
    }
    p->client_id = options.client_id;
  }

  int64_t num_chunks;
  if (p->plan->use_tasks) {
    p->chunks = ChunkRangeTasks(
        std::span<const RangeTask>(p->plan->tasks), options_.chunk_rows);
    num_chunks = static_cast<int64_t>(p->chunks.size());
    p->partials.resize(p->chunks.size());
  } else {
    // Passthrough plan (no plan-then-scan path): one chunk running the
    // index's own ExecutePlan inline on a worker — still overlapped with
    // other queries, just not decomposed within itself.
    num_chunks = 1;
    p->partials.resize(1);
  }

  // Reserve admission budget. The gauges are maintained for unbounded
  // services too (the stats are useful either way); only bounded ones can
  // reject.
  if (bounded()) {
    std::lock_guard<std::mutex> admit(admission_mu_);
    if (!HasRoom(num_chunks, options.priority)) {
      if (options.priority > 0) ShedVictims(options.priority, num_chunks);
      if (!HasRoom(num_chunks, options.priority)) {
        rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
        // Hand back the per-client slot this rejected query reserved.
        ReleaseClientSlot(p->client_id, p->client_count);
        return Admission{0, AdmissionOutcome::kQueueFull};
      }
    }
    active_queries_.fetch_add(1, std::memory_order_relaxed);
    admitted_chunks_.fetch_add(num_chunks, std::memory_order_relaxed);
  } else {
    active_queries_.fetch_add(1, std::memory_order_relaxed);
    admitted_chunks_.fetch_add(num_chunks, std::memory_order_relaxed);
  }
  p->gauge_held.store(num_chunks, std::memory_order_relaxed);

  p->ctx.StartBatch();  // Deadline clock starts at admission.
  const bool use_tasks = p->plan->use_tasks;
  // Shedding can stop any query in a bounded service, so the in-scan stop
  // probe is installed whenever a mid-flight stop is possible at all.
  const bool stoppable = p->ctx.Cancellable() || bounded();
  p->chunks_left.store(num_chunks, std::memory_order_relaxed);
  p->job = scheduler_.Submit(
      num_chunks,
      [this, p, use_tasks, stoppable](int64_t chunk, int /*worker*/) {
        // The budget tail is RAII: a chunk whose scan throws (the scheduler
        // swallows the exception and marks the job failed) must still
        // return its admission unit and, if it is the last chunk out,
        // release the query's unit and stamp its completion time —
        // otherwise every failed chunk permanently consumes bounded-service
        // budget until all traffic is rejected kQueueFull.
        struct BudgetTail {
          QueryService* service;
          Pending* p;
          ~BudgetTail() {
            // The last chunk out releases the query's unit and stamps its
            // true completion time, on the worker — Await's return can be
            // much later on a saturated host.
            service->ReleaseChunks(p, 1);
            if (p->chunks_left.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
              p->latency_seconds = p->admit_timer.ElapsedSeconds();
              service->ReleaseQuery(p);
            }
          }
        } tail{this, p};
        QueryResult& partial = p->partials[chunk];
        partial = InitResult(p->plan->query);
        if (p->stop_cause.load(std::memory_order_relaxed) !=
            Pending::kStopNone) {
          // Already stopped (shed, cancelled, or expired): leave the
          // identity partial — Await returns the identity result anyway.
        } else if (p->ctx.ShouldStop()) {
          // Skipped outright: record it, so Await returns the identity
          // result even if a borrowed cancel flag is cleared again later.
          RecordStop(p, CauseOf(p->ctx));
        } else if (use_tasks) {
          // One disjoint slice of the planned ranges. The stop probe rides
          // in the scan options so a deadline (or a shed) lands mid-chunk
          // too — and it records the cut on the Pending the instant it
          // fires, which is the only race-free witness that this scan was
          // abandoned.
          ScanOptions scan = p->ctx.scan;
          if (stoppable) {
            scan.stop_probe = [](const void* arg) {
              const auto* q = static_cast<const Pending*>(arg);
              if (q->stop_cause.load(std::memory_order_relaxed) !=
                  Pending::kStopNone) {
                return true;
              }
              if (!q->ctx.ShouldStop()) return false;
              RecordStop(q, CauseOf(q->ctx));
              return true;
            };
            scan.stop_arg = p;
          }
          p->target->store().ScanRanges(p->chunks[chunk], p->plan->query,
                                        &partial, scan);
        } else {
          ExecContext inline_ctx = p->ctx.Fork();
          partial = p->target->ExecutePlan(*p->plan, inline_ctx);
          // The passthrough executor checks the context internally; a stop
          // it observed is still observable here (deadlines never
          // un-expire, and a toggled flag closes an ~ns window at worst).
          if (inline_ctx.ShouldStop()) {
            RecordStop(p, CauseOf(inline_ctx));
          }
        }
      },
      options.priority);
  // Register only after the Pending is fully initialized (job assigned):
  // tickets are sequential, so a concurrent Await guessing the next id
  // must find either nothing or a complete entry — never a null JobRef.
  // Chunks already running don't care; they hold `p`, not the ticket.
  Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket = next_ticket_++;
    tickets_.emplace(ticket, std::move(pending));
  }
  BoostNearDeadline();
  return Admission{ticket, AdmissionOutcome::kAdmitted};
}

QueryResult QueryService::Await(Ticket ticket, bool* cancelled) {
  AwaitInfo info;
  QueryResult result = Await(ticket, &info);
  if (cancelled != nullptr) *cancelled = info.cancelled;
  return result;
}

QueryResult QueryService::Await(Ticket ticket, AwaitInfo* info) {
  AwaitInfo local;
  AwaitInfo& out = info != nullptr ? *info : local;
  out = AwaitInfo{};
  if (ticket == 0) {
    // A rejected Admission: the query never ran, nothing to wait for.
    out.cancelled = true;
    out.outcome = QueryOutcome::kRejected;
    return QueryResult{};
  }
  BoostNearDeadline();
  std::unique_ptr<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tickets_.find(ticket);
    if (it != tickets_.end()) {
      pending = std::move(it->second);
      tickets_.erase(it);
    }
  }
  if (pending == nullptr) {
    // A ticket is consumed by exactly one Await; a second (or a
    // never-issued ticket) is a caller bug. Loud in debug builds, a
    // defined non-answer in release: never a hang, never someone else's
    // result.
    assert(!"QueryService::Await: ticket already awaited or never issued");
    out.cancelled = true;
    out.outcome = QueryOutcome::kAlreadyConsumed;
    return QueryResult{};
  }
  scheduler_.Wait(pending->job);
  // Backstop reclaim: the chunk closures' RAII tail returns every unit for
  // chunks that ran at all, but a chunk can fail *before* its closure runs
  // (the scheduler's injected task-throw site sits ahead of the dispatch),
  // so take whatever is still held — the CAS-take in ReleaseChunks and the
  // idempotent ReleaseQuery make this free when nothing remains, and it
  // guarantees a consumed ticket can never strand bounded-service budget.
  ReleaseChunks(pending.get(), std::numeric_limits<int64_t>::max());
  ReleaseQuery(pending.get());
  if (pending->chunks_left.load(std::memory_order_relaxed) > 0) {
    // Some chunk never ran its tail, so the worker-side stamp never fired:
    // stamp completion now (Await time is the earliest truthful witness).
    pending->latency_seconds = pending->admit_timer.ElapsedSeconds();
  }
  out.latency_seconds = pending->latency_seconds;
  const Query& query = pending->plan->query;
  if (pending->job->failed()) {
    // A chunk threw: the scheduler swallowed it and completed the job, but
    // any partial it half-filled is untrustworthy — as is the merge.
    failed_.fetch_add(1, std::memory_order_relaxed);
    out.cancelled = true;
    out.outcome = QueryOutcome::kFailed;
    return InitResult(query);
  }
  const uint8_t cause = pending->stop_cause.load(std::memory_order_relaxed);
  if (cause != Pending::kStopNone) {
    // A worker (or a shedding admitter) recorded that execution was cut
    // short: some partials may be partial accumulations. Never pass those
    // off as an answer — the query reverts to its identity result. (The
    // record is consulted instead of re-evaluating ShouldStop() here: a
    // query whose chunks all finished before the deadline expired is
    // returned intact, and a cancel flag cleared again after cutting a
    // scan short cannot smuggle partials through.)
    out.cancelled = true;
    switch (cause) {
      case Pending::kStopCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        out.outcome = QueryOutcome::kCancelled;
        break;
      case Pending::kStopTimedOut:
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        out.outcome = QueryOutcome::kTimedOut;
        break;
      default:
        // shed_ was counted when the victim was evicted.
        out.outcome = QueryOutcome::kShed;
        break;
    }
    return InitResult(query);
  }
  out.cancelled = false;
  out.outcome = QueryOutcome::kCompleted;
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!pending->plan->use_tasks) {
    return std::move(pending->partials[0]);
  }
  // Merge: plan counters + every disjoint chunk partial + the target's
  // non-range epilogue — the FinishPlan contract that makes this equal to
  // Execute(query) bit for bit. Degradation (quarantined blocks skipped by
  // any chunk) propagates through the merge.
  QueryResult result = pending->plan->counters;
  for (const QueryResult& partial : pending->partials) {
    MergeQueryResults(query, partial, &result);
  }
  pending->target->FinishPlan(*pending->plan, &result);
  return result;
}

QueryResult QueryService::Run(const Query& query,
                              const SubmitOptions& options, bool* cancelled) {
  Admission admission = Submit(query, options);
  if (!admission.admitted()) {
    if (cancelled != nullptr) *cancelled = true;
    return InitResult(query);
  }
  return Await(admission.ticket, cancelled);
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_infeasible = rejected_infeasible_.load(std::memory_order_relaxed);
  s.rejected_client_busy =
      rejected_client_busy_.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  s.draining = draining_.load(std::memory_order_acquire);
  s.queue_depth = scheduler_.queue_depth();
  s.active_queries = active_queries_.load(std::memory_order_relaxed);
  s.admitted_chunks = admitted_chunks_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.tickets_in_flight = static_cast<int64_t>(tickets_.size());
  }
  s.cache = cache_.stats();
  s.scheduler = scheduler_.stats();
  return s;
}

}  // namespace tsunami
