// QueryService: the asynchronous, plan-cached, work-stealing serving API
// over any MultiDimIndex.
//
// The batch API (src/common/index.h) executes a batch well when the caller
// *has* a batch; a serving front-end has a stream of concurrent clients.
// The service turns that stream into scheduler work:
//
//   QueryService service(&index, options);
//   auto a = service.Submit(query);           // admit: cache-probe + plan +
//                                             // decompose, returns at once
//   ... submit more, from any thread ...
//   QueryResult r = service.Await(a);         // block for this answer only
//   QueryResult r = service.Run(query);       // Submit + Await convenience
//
// Admission looks the query up in a bounded-LRU plan cache (plan_cache.h)
// keyed on the normalized filter rectangle + aggregate list, so repeated
// ad-hoc traffic replays prepared plans instead of re-routing and
// re-planning. The admitted plan's RangeTasks are decomposed into
// block-aligned chunks (the same ChunkRangeTasks decomposition the pool
// executor uses) and submitted as one job to the shared work-stealing
// TaskScheduler: chunks of *all* in-flight queries interleave in the
// per-worker deques and idle workers steal, so a skewed batch — one giant
// region query among needles — keeps every core busy instead of
// serializing behind its largest member. Per-query deadline / cancel flag /
// priority ride in SubmitOptions; the deadline clock starts at admission
// (queue wait counts) and is probed mid-scan at block-aligned slices.
//
// Overload robustness. By default admission is unbounded (every Submit is
// admitted), which is right for embedded use but wrong for a service: an
// offered load above capacity grows the queue without bound and every
// query's latency with it. Setting `max_queued_queries` and/or
// `max_queued_chunks` turns on *bounded admission*: Submit returns an
// Admission whose outcome says whether the query was admitted, rejected
// because the queue is full (kQueueFull), or rejected because the §5.3.1
// cost model predicts it cannot finish inside its deadline even on an
// idle machine (kDeadlineInfeasible, opt-in via
// `reject_infeasible_deadlines`). Low-priority queries (priority <= 0)
// may only fill the queue up to `low_priority_watermark`, reserving
// headroom for latency-sensitive traffic; when a high-priority query
// arrives at a full queue, strictly-lower-priority in-flight queries are
// *shed* (lowest priority first) to make room — a shed query's remaining
// chunks early-exit and its Await reports QueryOutcome::kShed with the
// identity result, never partial aggregates. A query drifting past half
// its deadline budget is boosted to the front of the scheduler deques
// (TaskScheduler::Boost). Await distinguishes every terminal state via
// AwaitInfo::outcome: completed, cancelled, timed out, shed, failed (a
// chunk threw — partials are discarded), rejected, already-consumed.
//
// Results are bit-identical to per-query Execute() for every index, thread
// count, and SIMD tier. The decomposition leans on the MultiDimIndex plan
// contract (FinishPlan / PlanTarget): a query's answer is the plan's
// counters, plus the planned range scans (split anywhere on block
// boundaries, partials merged in any order — integer aggregation is
// associative and chunks cover disjoint rows), plus the target index's
// FinishPlan epilogue. A query whose execution was actually cut short
// (a worker skipped or abandoned a chunk — recorded at the moment it
// happens, not re-derived at Await time) returns its identity result with
// the `cancelled` flag set: partial aggregates are never passed off as
// answers, and a query that completed before its deadline expired is
// returned intact no matter how late it is awaited. A scan that skipped
// quarantined blocks (see storage/encoded_column.h) completes with
// `QueryResult::degraded` set — degradation propagates through the merge,
// it does not cancel the query.
#ifndef TSUNAMI_SERVE_QUERY_SERVICE_H_
#define TSUNAMI_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/index.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/core/cost_model.h"
#include "src/exec/task_scheduler.h"
#include "src/serve/plan_cache.h"

namespace tsunami {

/// Why Submit did (or did not) admit a query.
enum class AdmissionOutcome : uint8_t {
  kAdmitted = 0,
  /// Bounded admission: the queue (queries or chunks) is at capacity for
  /// this priority class, and shedding lower-priority work (only attempted
  /// for priority > 0) could not make room.
  kQueueFull,
  /// The cost model predicts the plan cannot finish inside its deadline
  /// budget even on an idle machine (reject_infeasible_deadlines only).
  kDeadlineInfeasible,
  /// This client already holds `max_inflight_per_client` admitted queries —
  /// the per-client fairness cap layered under the global bounds. Retryable:
  /// room opens as the client's own queries finish.
  kClientBusy,
  /// The service is draining (Drain()/BeginDrain() was called): it finishes
  /// in-flight work but admits nothing new.
  kDraining,
};

/// Stable names for logs, test failure messages, and wire errors (the enums
/// otherwise print as opaque ints).
const char* ToString(AdmissionOutcome outcome);
std::ostream& operator<<(std::ostream& os, AdmissionOutcome outcome);

/// How an admitted query's life ended, reported by Await. Everything but
/// kCompleted also sets AwaitInfo::cancelled and returns the identity
/// result: partial aggregates are never passed off as answers.
enum class QueryOutcome : uint8_t {
  kCompleted = 0,
  kCancelled,        // The borrowed cancel flag cut execution short.
  kTimedOut,         // The deadline expired mid-flight.
  kShed,             // Evicted by admission control for higher priority.
  kFailed,           // A chunk threw; its partials are untrustworthy.
  kRejected,         // Awaited a never-admitted ticket (Admission.ticket 0).
  kAlreadyConsumed,  // Ticket already awaited (or never issued).
};

const char* ToString(QueryOutcome outcome);
std::ostream& operator<<(std::ostream& os, QueryOutcome outcome);

struct ServiceOptions {
  /// Scheduler workers. -1 = hardware concurrency; 0 = inline execution on
  /// the submitting thread (deterministic; useful for tests).
  int threads = -1;
  /// Plan-cache entries; 0 disables caching (every Submit re-plans).
  int64_t plan_cache_capacity = 1024;
  /// Plan-cache byte budget (estimated footprint); 0 = entries-only. See
  /// PlanCache: plans vary enormously in size, so a serving process that
  /// must bound memory sets this rather than guessing an entry count.
  int64_t plan_cache_max_bytes = 0;
  /// Borrowed resource governor (must outlive the service; null =
  /// ungoverned). The plan cache mirrors its footprint into
  /// ResourcePool::kPlanCache.
  ResourceGovernor* governor = nullptr;
  /// Decomposition grain: target rows per scheduler chunk. Smaller chunks
  /// steal and cancel at finer granularity but pay more per-chunk
  /// bookkeeping.
  int64_t chunk_rows = 16 * kScanBlockRows;

  // --- Bounded admission (0 = unbounded, the embedded default). ---

  /// Cap on queries admitted and not yet finished. Beyond it, Submit
  /// rejects with kQueueFull instead of queueing without bound.
  int64_t max_queued_queries = 0;
  /// Cap on chunks admitted and not yet finished — the finer-grained bound
  /// (one giant query is many chunks). A single query whose decomposition
  /// alone exceeds its cap is always rejected, even on an idle service —
  /// and for priority <= 0 queries the cap is the watermark-scaled one, so
  /// the largest admissible low-priority query is
  /// `low_priority_watermark * max_queued_chunks` chunks. Size the cap (or
  /// chunk_rows) above the largest plan you intend to serve.
  int64_t max_queued_chunks = 0;
  /// Fraction of the caps available to priority <= 0 queries; the rest is
  /// headroom reserved for higher-priority traffic (which can also shed
  /// lower-priority work when even the full cap is exhausted). Clamped to
  /// [0, 1] at construction.
  double low_priority_watermark = 0.5;
  /// When set, Submit rejects (kDeadlineInfeasible) a query whose
  /// cost-model-predicted execution time (PredictPlanNanos under
  /// `cost_weights`) already exceeds its deadline budget — failing fast
  /// instead of burning workers on a query that must time out.
  bool reject_infeasible_deadlines = false;
  /// Weights for the feasibility prediction (calibrate with
  /// CalibrateCostWeights for real nanoseconds; the defaults are sane
  /// relative costs).
  CostWeights cost_weights;
  /// Per-client fairness cap: a client (SubmitOptions::client_id >= 0) may
  /// hold at most this many admitted-and-unfinished queries; beyond it,
  /// Submit rejects with kClientBusy so one greedy client cannot consume
  /// the whole global admission budget and starve the rest. 0 = no
  /// per-client cap; anonymous submissions (client_id < 0) are never
  /// capped per-client.
  int64_t max_inflight_per_client = 0;
};

/// Per-query admission options.
struct SubmitOptions {
  /// Soft deadline in seconds from Submit (0 = none). Queue wait counts;
  /// expiry is probed between and inside chunk scans.
  double deadline_seconds = 0.0;
  /// Higher runs sooner: the query's chunks are queued ahead of backlog.
  int priority = 0;
  /// External cancel flag (borrowed; may be null).
  const std::atomic<bool>* cancel = nullptr;
  /// Kernel mode / forced SIMD tier for this query's scans.
  ScanOptions scan;
  /// Stable client identity for the per-client fairness cap (the network
  /// front end stamps one per connection). -1 = anonymous, never capped.
  int64_t client_id = -1;
};

/// Per-query completion report, filled by Await. `latency_seconds` is
/// stamped on the worker that finishes the query's last chunk (admission →
/// completion, queue wait included), so it stays truthful even when the
/// awaiting thread is descheduled behind busy workers — on a saturated
/// host, Await's *return* time can be far later than the query's actual
/// completion. `cancelled` is true for every outcome but kCompleted (the
/// pre-outcome API; outcome says why).
struct AwaitInfo {
  bool cancelled = false;
  QueryOutcome outcome = QueryOutcome::kCompleted;
  double latency_seconds = 0.0;
};

/// Service-level counters: admission, terminal outcomes, the cache, and
/// the scheduler. `submitted` counts admission *attempts* (rejections
/// included); completed/cancelled/timed_out/shed/failed partition the
/// awaited outcomes (shed is counted at shed time, not Await time).
struct ServiceStats {
  int64_t submitted = 0;
  int64_t completed = 0;  // Awaited with a real answer.
  int64_t cancelled = 0;  // Cancel flag cut execution: identity result.
  int64_t timed_out = 0;  // Deadline cut execution: identity result.
  int64_t shed = 0;       // Evicted for higher-priority work.
  int64_t failed = 0;     // A chunk threw; partials discarded.
  int64_t rejected_queue_full = 0;
  int64_t rejected_infeasible = 0;
  int64_t rejected_client_busy = 0;  // Per-client fairness cap hits.
  int64_t rejected_draining = 0;     // Submissions refused mid-drain.
  bool draining = false;             // Drain()/BeginDrain() was called.
  int64_t queue_depth = 0;        // Chunks queued, not yet picked up.
  int64_t active_queries = 0;     // Admitted, not yet finished (gauge).
  int64_t admitted_chunks = 0;    // Their unfinished chunks (gauge; the
                                  // max_queued_chunks budget in use).
  int64_t tickets_in_flight = 0;  // Submitted, not yet awaited.
  PlanCache::Stats cache;
  TaskScheduler::Stats scheduler;
};

class QueryService {
 public:
  /// An opaque handle to one submitted query. Await exactly once.
  using Ticket = uint64_t;

  /// Submit's return: the ticket plus why admission succeeded or failed.
  /// Ticket 0 (never issued) means rejected; Await(0) reports kRejected
  /// without blocking. Converts to Ticket so pre-admission-control call
  /// sites (`Ticket t = service.Submit(q)`) keep compiling.
  struct Admission {
    Ticket ticket = 0;
    AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
    bool admitted() const { return ticket != 0; }
    operator Ticket() const { return ticket; }
  };

  /// `index` is borrowed and must outlive the service. A *static* index
  /// must not be rebuilt under it — cached plans address its clustered
  /// store. A *versioned* store (ingest::IngestStore) may fold, reorganize,
  /// and repair freely while the service runs: each query's plan pins the
  /// snapshot it was prepared against (QueryPlan::pin), every chunk of that
  /// query scans the pinned version via PlanTarget, and the plan cache
  /// drops plans whose StoreVersion() fell behind — so concurrent publishes
  /// never block, tear, or stale-serve a query.
  explicit QueryService(const MultiDimIndex* index,
                        const ServiceOptions& options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits one query: plan-cache probe (Prepare on a miss), chunk
  /// decomposition, admission check (bounded services only), scheduler
  /// enqueue. Returns immediately; execution proceeds on the workers.
  /// Thread-safe.
  Admission Submit(const Query& query, const SubmitOptions& options = {});

  /// Admits a batch (same options per query); admissions are positionally
  /// parallel to `queries`. Under bounded admission, individual members
  /// may be rejected while others are admitted.
  std::vector<Admission> SubmitBatch(std::span<const Query> queries,
                                     const SubmitOptions& options = {});

  /// Admits an externally prepared plan without a cache probe (the SQL
  /// engine's seam: its statements were already bound to cached plans at
  /// Prepare time — including each disjoint box of a disjunctive
  /// statement — so execution must not pay a second lookup). The plan must
  /// have been produced by this service's index.
  Admission SubmitPlan(std::shared_ptr<const QueryPlan> plan,
                       const SubmitOptions& options = {});

  /// Blocks until the ticket's query finishes and returns its result,
  /// consuming the ticket. A query cut short by its cancel flag, deadline,
  /// or shedding returns its identity result with `*cancelled = true`
  /// (use the AwaitInfo overload to distinguish why). Ticket 0 (a rejected
  /// Admission) returns at once. Awaiting a ticket twice is a caller bug:
  /// it returns a defined empty/cancelled result (kAlreadyConsumed) in
  /// release builds and asserts in debug builds.
  QueryResult Await(Ticket ticket, bool* cancelled = nullptr);

  /// As above, also reporting the outcome and the query's worker-stamped
  /// completion latency (see AwaitInfo).
  QueryResult Await(Ticket ticket, AwaitInfo* info);

  /// Non-blocking readiness probe: true when Await(ticket) would return
  /// without blocking (the query's job finished — by completion, stop, or
  /// failure — or the ticket was never issued / already consumed). The
  /// network front end polls this from its event loop so it never parks a
  /// thread per in-flight request.
  bool Ready(Ticket ticket) const;

  /// Puts the service into drain mode: every subsequent Submit is rejected
  /// with AdmissionOutcome::kDraining while already-admitted queries keep
  /// executing and their Awaits keep working. Idempotent; there is no
  /// un-drain — a drained service is on its way down.
  void BeginDrain();

  /// BeginDrain(), then blocks until every admitted query has finished
  /// executing (its chunks drained off the workers). Tickets still hold
  /// their results afterwards; callers flush them with Await as usual.
  void Drain();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Synchronous convenience: Submit + Await. The calling thread blocks,
  /// but the chunks still run on (all) the workers. A rejected admission
  /// reports `*cancelled = true` with the identity result.
  QueryResult Run(const Query& query, const SubmitOptions& options = {},
                  bool* cancelled = nullptr);

  /// Cache-through planning without admission: the engine's Prepare path
  /// uses this so repeated ad-hoc SQL binds to cached plans.
  std::shared_ptr<const QueryPlan> CachedPlan(const Query& query) {
    return cache_.GetOrPrepare(*index_, query);
  }

  ServiceStats stats() const;

  const MultiDimIndex& index() const { return *index_; }
  PlanCache& plan_cache() { return cache_; }
  TaskScheduler& scheduler() { return scheduler_; }

 private:
  /// One in-flight query: its plan, per-chunk partials, and the scheduler
  /// job that fills them. Lives in tickets_ from Submit until Await; chunk
  /// closures borrow it, so the scheduler (declared last) must drain
  /// before any Pending is destroyed.
  struct Pending {
    /// Why execution was cut short, recorded first-writer-wins the moment
    /// it happens. Await consults this record — NOT a fresh ShouldStop() —
    /// so a query whose chunks all completed before the deadline expired
    /// is returned intact, and a cancel flag that was cleared again after
    /// cutting a scan short can never pass partial aggregates off as a
    /// completed answer. kStopShed is written by an *admitting* thread
    /// evicting this query; its remaining chunks observe it and early-exit.
    enum : uint8_t {
      kStopNone = 0,
      kStopCancelled,
      kStopTimedOut,
      kStopShed,
    };

    std::shared_ptr<const QueryPlan> plan;
    const MultiDimIndex* target = nullptr;  // PlanTarget(*plan).
    ExecContext ctx;  // Deadline/cancel/scan; pool- and scheduler-free.
    std::vector<std::vector<RangeTask>> chunks;
    std::vector<QueryResult> partials;  // One per chunk, disjoint rows.
    /// Chunks not yet finished; the closure that takes it to zero stamps
    /// `latency_seconds` (admission → completion) on its worker. The write
    /// is published to the awaiter by the job's completion release/acquire
    /// chain, so no atomic double is needed.
    std::atomic<int64_t> chunks_left{0};
    Timer admit_timer;
    double latency_seconds = 0.0;
    /// Mutable: the stop record is written through const pointers (the
    /// scan kernel's stop probe sees a const arg).
    mutable std::atomic<uint8_t> stop_cause{kStopNone};
    /// Admission-budget units (chunks) this query still holds against the
    /// service's admitted_chunks gauge. Finishing chunks release one each;
    /// shedding releases the remainder at once — the CAS take protocol in
    /// ReleaseChunks makes the two race-free (never double-released).
    std::atomic<int64_t> gauge_held{0};
    std::atomic<bool> query_released{false};  // active_queries released?
    std::atomic<bool> boosted{false};         // Boost() already applied?
    /// The submitting client's in-flight counter (per-client fairness cap);
    /// null for anonymous/uncapped submissions. Released with the query
    /// unit in ReleaseQuery.
    std::shared_ptr<std::atomic<int64_t>> client_count;
    int64_t client_id = -1;
    TaskScheduler::JobRef job;
  };

  Admission Admit(std::shared_ptr<const QueryPlan> plan,
                  const SubmitOptions& options);
  bool bounded() const {
    return options_.max_queued_queries > 0 || options_.max_queued_chunks > 0;
  }
  /// Capacity check against the gauges; admission_mu_ must be held so
  /// check+reserve is atomic with respect to other admitters (workers only
  /// ever decrement, which is conservative).
  bool HasRoom(int64_t num_chunks, int priority) const;
  /// Evicts strictly-lower-priority in-flight queries (lowest first) until
  /// HasRoom for the incoming query or no victims remain. admission_mu_
  /// must be held; takes mu_ (lock order: admission_mu_ before mu_).
  void ShedVictims(int priority, int64_t num_chunks);
  /// Returns up to `n` of `p`'s held chunk-budget units to the gauge.
  void ReleaseChunks(Pending* p, int64_t n);
  /// Returns `p`'s query-budget unit (idempotent).
  void ReleaseQuery(Pending* p);
  /// Moves any unstarted in-flight query past half its deadline budget to
  /// the front of the scheduler deques. Called on the admit and await
  /// paths — no timer thread; a service touched at all keeps deadlines
  /// honest.
  void BoostNearDeadline();
  /// Records `cause` first-writer-wins; true when this call installed it.
  static bool RecordStop(const Pending* p, uint8_t cause);
  static uint8_t CauseOf(const ExecContext& ctx);
  /// Takes one per-client in-flight slot for `client_id`, or null when the
  /// client is at its cap. Only called when the cap is configured.
  std::shared_ptr<std::atomic<int64_t>> ReserveClientSlot(int64_t client_id);
  /// Returns a slot taken by ReserveClientSlot (null-safe, exactly once per
  /// reservation — guarded by Pending::query_released).
  void ReleaseClientSlot(int64_t client_id,
                         const std::shared_ptr<std::atomic<int64_t>>& count);

  const MultiDimIndex* index_;
  const ServiceOptions options_;
  PlanCache cache_;

  /// Serializes bounded admission (check + reserve + shed). Ordered
  /// strictly before mu_; never taken by workers.
  std::mutex admission_mu_;

  mutable std::mutex mu_;  // Guards tickets_ and next_ticket_.
  std::unordered_map<Ticket, std::unique_ptr<Pending>> tickets_;
  Ticket next_ticket_ = 1;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> timed_out_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> rejected_queue_full_{0};
  std::atomic<int64_t> rejected_infeasible_{0};
  std::atomic<int64_t> rejected_client_busy_{0};
  std::atomic<int64_t> rejected_draining_{0};
  std::atomic<int64_t> active_queries_{0};
  std::atomic<int64_t> admitted_chunks_{0};
  std::atomic<bool> draining_{false};

  /// Per-client in-flight counters (only touched when
  /// max_inflight_per_client > 0). Increments happen under clients_mu_ so
  /// the cap check is atomic; decrements are lock-free on the shared
  /// counter, and a counter that reaches zero is opportunistically erased
  /// under the lock (re-checked, so a racing admitter never loses its
  /// reservation).
  mutable std::mutex clients_mu_;
  std::unordered_map<int64_t, std::shared_ptr<std::atomic<int64_t>>>
      client_inflight_;

  /// Declared last: destroyed first, draining every in-flight chunk while
  /// the Pendings they borrow are still alive.
  TaskScheduler scheduler_;
};

}  // namespace tsunami

#endif  // TSUNAMI_SERVE_QUERY_SERVICE_H_
