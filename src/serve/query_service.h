// QueryService: the asynchronous, plan-cached, work-stealing serving API
// over any MultiDimIndex.
//
// The batch API (src/common/index.h) executes a batch well when the caller
// *has* a batch; a serving front-end has a stream of concurrent clients.
// The service turns that stream into scheduler work:
//
//   QueryService service(&index, options);
//   Ticket t = service.Submit(query);        // admit: cache-probe + plan +
//                                            // decompose, returns at once
//   ... submit more, from any thread ...
//   QueryResult r = service.Await(t);        // block for this answer only
//   QueryResult r = service.Run(query);      // Submit + Await convenience
//
// Admission looks the query up in a bounded-LRU plan cache (plan_cache.h)
// keyed on the normalized filter rectangle + aggregate list, so repeated
// ad-hoc traffic replays prepared plans instead of re-routing and
// re-planning. The admitted plan's RangeTasks are decomposed into
// block-aligned chunks (the same ChunkRangeTasks decomposition the pool
// executor uses) and submitted as one job to the shared work-stealing
// TaskScheduler: chunks of *all* in-flight queries interleave in the
// per-worker deques and idle workers steal, so a skewed batch — one giant
// region query among needles — keeps every core busy instead of
// serializing behind its largest member. Per-query deadline / cancel flag /
// priority ride in SubmitOptions; the deadline clock starts at admission
// (queue wait counts) and is probed mid-scan at block-aligned slices.
//
// Results are bit-identical to per-query Execute() for every index, thread
// count, and SIMD tier. The decomposition leans on the MultiDimIndex plan
// contract (FinishPlan / PlanTarget): a query's answer is the plan's
// counters, plus the planned range scans (split anywhere on block
// boundaries, partials merged in any order — integer aggregation is
// associative and chunks cover disjoint rows), plus the target index's
// FinishPlan epilogue. A query whose execution was actually cut short
// (a worker skipped or abandoned a chunk — recorded at the moment it
// happens, not re-derived at Await time) returns its identity result with
// the `cancelled` flag set: partial aggregates are never passed off as
// answers, and a query that completed before its deadline expired is
// returned intact no matter how late it is awaited.
#ifndef TSUNAMI_SERVE_QUERY_SERVICE_H_
#define TSUNAMI_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/index.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/exec/task_scheduler.h"
#include "src/serve/plan_cache.h"

namespace tsunami {

struct ServiceOptions {
  /// Scheduler workers. -1 = hardware concurrency; 0 = inline execution on
  /// the submitting thread (deterministic; useful for tests).
  int threads = -1;
  /// Plan-cache entries; 0 disables caching (every Submit re-plans).
  int64_t plan_cache_capacity = 1024;
  /// Decomposition grain: target rows per scheduler chunk. Smaller chunks
  /// steal and cancel at finer granularity but pay more per-chunk
  /// bookkeeping.
  int64_t chunk_rows = 16 * kScanBlockRows;
};

/// Per-query admission options.
struct SubmitOptions {
  /// Soft deadline in seconds from Submit (0 = none). Queue wait counts;
  /// expiry is probed between and inside chunk scans.
  double deadline_seconds = 0.0;
  /// Higher runs sooner: the query's chunks are queued ahead of backlog.
  int priority = 0;
  /// External cancel flag (borrowed; may be null).
  const std::atomic<bool>* cancel = nullptr;
  /// Kernel mode / forced SIMD tier for this query's scans.
  ScanOptions scan;
};

/// Per-query completion report, filled by Await. `latency_seconds` is
/// stamped on the worker that finishes the query's last chunk (admission →
/// completion, queue wait included), so it stays truthful even when the
/// awaiting thread is descheduled behind busy workers — on a saturated
/// host, Await's *return* time can be far later than the query's actual
/// completion.
struct AwaitInfo {
  bool cancelled = false;
  double latency_seconds = 0.0;
};

/// Service-level counters: admission, the cache, and the scheduler.
struct ServiceStats {
  int64_t submitted = 0;
  int64_t completed = 0;   // Awaited with a real answer.
  int64_t cancelled = 0;   // Awaited after cancel/deadline: identity result.
  int64_t queue_depth = 0;     // Chunks queued, not yet picked up.
  int64_t tickets_in_flight = 0;  // Submitted, not yet awaited.
  PlanCache::Stats cache;
  TaskScheduler::Stats scheduler;
};

class QueryService {
 public:
  /// An opaque handle to one submitted query. Await exactly once.
  using Ticket = uint64_t;

  /// `index` is borrowed and must outlive the service (and must not be
  /// rebuilt under it — cached plans address its clustered store).
  explicit QueryService(const MultiDimIndex* index,
                        const ServiceOptions& options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits one query: plan-cache probe (Prepare on a miss), chunk
  /// decomposition, scheduler enqueue. Returns immediately; execution
  /// proceeds on the workers. Thread-safe.
  Ticket Submit(const Query& query, const SubmitOptions& options = {});

  /// Admits a batch (same options per query); tickets are positionally
  /// parallel to `queries`.
  std::vector<Ticket> SubmitBatch(std::span<const Query> queries,
                                  const SubmitOptions& options = {});

  /// Admits an externally prepared plan without a cache probe (the SQL
  /// engine's seam: its statements were already bound to cached plans at
  /// Prepare time — including each disjoint box of a disjunctive
  /// statement — so execution must not pay a second lookup). The plan must
  /// have been produced by this service's index.
  Ticket SubmitPlan(std::shared_ptr<const QueryPlan> plan,
                    const SubmitOptions& options = {});

  /// Blocks until the ticket's query finishes and returns its result,
  /// consuming the ticket. A query cut short by its cancel flag or
  /// deadline returns its identity result with `*cancelled = true`.
  QueryResult Await(Ticket ticket, bool* cancelled = nullptr);

  /// As above, also reporting the query's worker-stamped completion
  /// latency (see AwaitInfo).
  QueryResult Await(Ticket ticket, AwaitInfo* info);

  /// Synchronous convenience: Submit + Await. The calling thread blocks,
  /// but the chunks still run on (all) the workers.
  QueryResult Run(const Query& query, const SubmitOptions& options = {},
                  bool* cancelled = nullptr);

  /// Cache-through planning without admission: the engine's Prepare path
  /// uses this so repeated ad-hoc SQL binds to cached plans.
  std::shared_ptr<const QueryPlan> CachedPlan(const Query& query) {
    return cache_.GetOrPrepare(*index_, query);
  }

  ServiceStats stats() const;

  const MultiDimIndex& index() const { return *index_; }
  PlanCache& plan_cache() { return cache_; }
  TaskScheduler& scheduler() { return scheduler_; }

 private:
  /// One in-flight query: its plan, per-chunk partials, and the scheduler
  /// job that fills them. Lives in tickets_ from Submit until Await; chunk
  /// closures borrow it, so the scheduler (declared last) must drain
  /// before any Pending is destroyed.
  struct Pending {
    std::shared_ptr<const QueryPlan> plan;
    const MultiDimIndex* target = nullptr;  // PlanTarget(*plan).
    ExecContext ctx;  // Deadline/cancel/scan; pool- and scheduler-free.
    std::vector<std::vector<RangeTask>> chunks;
    std::vector<QueryResult> partials;  // One per chunk, disjoint rows.
    /// Chunks not yet finished; the closure that takes it to zero stamps
    /// `latency_seconds` (admission → completion) on its worker. The write
    /// is published to the awaiter by the job's completion release/acquire
    /// chain, so no atomic double is needed.
    std::atomic<int64_t> chunks_left{0};
    Timer admit_timer;
    double latency_seconds = 0.0;
    /// Set by a worker the moment it actually skips or cuts short any
    /// chunk. Await consults this record — NOT a fresh ShouldStop() — so a
    /// query whose chunks all completed before the deadline expired is
    /// returned intact, and a cancel flag that was cleared again after
    /// cutting a scan short can never pass partial aggregates off as a
    /// completed answer.
    std::atomic<bool> stopped{false};
    /// Stable target for the recording stop probe (borrowed by ScanOptions
    /// for the chunk scans).
    struct StopTarget {
      const ExecContext* ctx = nullptr;
      std::atomic<bool>* stopped = nullptr;
    };
    StopTarget stop_target;
    TaskScheduler::JobRef job;
  };

  Ticket Admit(std::shared_ptr<const QueryPlan> plan,
               const SubmitOptions& options);

  const MultiDimIndex* index_;
  const ServiceOptions options_;
  PlanCache cache_;

  mutable std::mutex mu_;  // Guards tickets_ and next_ticket_.
  std::unordered_map<Ticket, std::unique_ptr<Pending>> tickets_;
  Ticket next_ticket_ = 1;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> cancelled_{0};

  /// Declared last: destroyed first, draining every in-flight chunk while
  /// the Pendings they borrow are still alive.
  TaskScheduler scheduler_;
};

}  // namespace tsunami

#endif  // TSUNAMI_SERVE_QUERY_SERVICE_H_
