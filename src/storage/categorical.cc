#include "src/storage/categorical.h"

#include <algorithm>
#include <map>

namespace tsunami {

std::vector<Value> CoAccessOrder(
    int64_t num_values, const std::vector<std::vector<Value>>& access_sets) {
  // Pairwise co-access weights and per-value access counts.
  std::map<std::pair<Value, Value>, int64_t> weight;
  std::vector<int64_t> accesses(num_values, 0);
  for (const std::vector<Value>& set : access_sets) {
    for (size_t i = 0; i < set.size(); ++i) {
      if (set[i] < 0 || set[i] >= num_values) continue;
      ++accesses[set[i]];
      for (size_t j = i + 1; j < set.size(); ++j) {
        if (set[j] < 0 || set[j] >= num_values || set[i] == set[j]) continue;
        Value a = std::min(set[i], set[j]);
        Value b = std::max(set[i], set[j]);
        ++weight[{a, b}];
      }
    }
  }

  std::vector<char> placed(num_values, 0);
  std::vector<Value> order;
  order.reserve(num_values);
  auto pair_weight = [&](Value a, Value b) {
    auto it = weight.find({std::min(a, b), std::max(a, b)});
    return it == weight.end() ? int64_t{0} : it->second;
  };

  // Greedy chains: seed with the most-accessed unplaced value, then keep
  // appending the unplaced value most co-accessed with the current tail
  // (falling back to overall access count on ties/zero weight).
  while (true) {
    Value seed = -1;
    for (Value v = 0; v < num_values; ++v) {
      if (!placed[v] && accesses[v] > 0 &&
          (seed < 0 || accesses[v] > accesses[seed])) {
        seed = v;
      }
    }
    if (seed < 0) break;
    placed[seed] = 1;
    order.push_back(seed);
    Value tail = seed;
    while (true) {
      Value best = -1;
      int64_t best_w = 0;
      for (Value v = 0; v < num_values; ++v) {
        if (placed[v]) continue;
        int64_t w = pair_weight(tail, v);
        if (w > best_w || (w == best_w && w > 0 && best >= 0 &&
                           accesses[v] > accesses[best])) {
          best = v;
          best_w = w;
        }
      }
      if (best < 0 || best_w == 0) break;
      placed[best] = 1;
      order.push_back(best);
      tail = best;
    }
  }
  // Never-accessed (or chain-orphaned) values keep their relative order.
  for (Value v = 0; v < num_values; ++v) {
    if (!placed[v]) order.push_back(v);
  }
  return order;
}

std::vector<Value> InvertOrder(const std::vector<Value>& order) {
  std::vector<Value> new_code(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    new_code[order[i]] = static_cast<Value>(i);
  }
  return new_code;
}

void RemapColumn(Dataset* data, int dim, const std::vector<Value>& new_code) {
  for (int64_t r = 0; r < data->size(); ++r) {
    Value old = data->at(r, dim);
    if (old >= 0 && old < static_cast<Value>(new_code.size())) {
      data->at(r, dim) = new_code[old];
    }
  }
}

Predicate CoveringRange(int dim, const std::vector<Value>& codes,
                        const std::vector<Value>& new_code) {
  Predicate p{dim, kValueMax, kValueMin};
  for (Value c : codes) {
    if (c < 0 || c >= static_cast<Value>(new_code.size())) continue;
    p.lo = std::min(p.lo, new_code[c]);
    p.hi = std::max(p.hi, new_code[c]);
  }
  return p;
}

int64_t OrderFragmentation(const std::vector<std::vector<Value>>& access_sets,
                           const std::vector<Value>& new_code) {
  int64_t total = 0;
  for (const std::vector<Value>& set : access_sets) {
    if (set.empty()) continue;
    std::vector<Value> unique = set;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    Predicate span = CoveringRange(0, unique, new_code);
    if (span.lo > span.hi) continue;
    total += (span.hi - span.lo + 1) - static_cast<int64_t>(unique.size());
  }
  return total;
}

}  // namespace tsunami
