// Categorical dimension reordering (§8 "Categorical dimensions"):
// categorical values have no meaningful sort order, so by default they sort
// alphanumerically. Re-coding values so that ones commonly accessed
// together sit adjacently lets a query's value set map to a narrow code
// range, touching fewer grid partitions and points.
#ifndef TSUNAMI_STORAGE_CATEGORICAL_H_
#define TSUNAMI_STORAGE_CATEGORICAL_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace tsunami {

/// Computes a co-access-aware code order for a categorical dimension with
/// codes in [0, num_values). `access_sets` holds, per query (or query
/// template), the set of codes it accesses — e.g. the values of an IN-list
/// or of repeated equality predicates of one query type.
///
/// Returns `order` where order[i] is the old code placed at new code i.
/// Greedy chaining: starting from the most-accessed value, repeatedly
/// append the value with the strongest co-access weight to the chain's
/// tail. Never-accessed values keep their relative order at the end.
std::vector<Value> CoAccessOrder(
    int64_t num_values, const std::vector<std::vector<Value>>& access_sets);

/// Inverts the order returned by CoAccessOrder: new_code[old_code].
std::vector<Value> InvertOrder(const std::vector<Value>& order);

/// Rewrites column `dim` of `data` in place with new codes.
void RemapColumn(Dataset* data, int dim, const std::vector<Value>& new_code);

/// Smallest inclusive code range covering all of `codes` after remapping —
/// the predicate to use over the remapped column. (The range may still
/// include codes outside the set; callers needing exactness keep per-value
/// checks.)
Predicate CoveringRange(int dim, const std::vector<Value>& codes,
                        const std::vector<Value>& new_code);

/// Sum over access sets of (covered span - set size): 0 means every set
/// maps to a gap-free range. Used to quantify an order's quality.
int64_t OrderFragmentation(const std::vector<std::vector<Value>>& access_sets,
                           const std::vector<Value>& new_code);

}  // namespace tsunami

#endif  // TSUNAMI_STORAGE_CATEGORICAL_H_
