#include "src/storage/column_store.h"

#include <algorithm>

namespace tsunami {

ColumnStore::ColumnStore(const Dataset& data) : num_rows_(data.size()) {
  columns_.resize(data.dims());
  for (int d = 0; d < data.dims(); ++d) {
    columns_[d].resize(num_rows_);
    for (int64_t r = 0; r < num_rows_; ++r) columns_[d][r] = data.at(r, d);
  }
}

ColumnStore::ColumnStore(const Dataset& data,
                         const std::vector<uint32_t>& perm)
    : num_rows_(data.size()) {
  columns_.resize(data.dims());
  for (int d = 0; d < data.dims(); ++d) {
    columns_[d].resize(num_rows_);
    for (int64_t r = 0; r < num_rows_; ++r) {
      columns_[d][r] = data.at(perm[r], d);
    }
  }
}

void ColumnStore::ScanRange(int64_t begin, int64_t end, const Query& query,
                            bool exact, QueryResult* out) const {
  if (begin >= end) return;
  if (exact) {
    // Exact ranges skip per-value checks entirely; COUNT touches no data.
    int64_t n = end - begin;
    out->matched += n;
    if (query.agg == AggKind::kCount) {
      out->agg += n;
    } else {
      const std::vector<Value>& agg_col = columns_[query.agg_dim];
      for (int64_t r = begin; r < end; ++r) {
        AccumulateAgg(query.agg, agg_col[r], &out->agg);
      }
      out->scanned += n;
    }
    return;
  }
  out->scanned += end - begin;
  // Column-at-a-time filtering: start with all rows live, narrow per filter.
  // For the small per-cell ranges indexes produce, a row-at-a-time loop with
  // early exit is fastest; we use that with columnar access order.
  const std::vector<Predicate>& filters = query.filters;
  for (int64_t r = begin; r < end; ++r) {
    bool ok = true;
    for (const Predicate& p : filters) {
      Value v = columns_[p.dim][r];
      if (v < p.lo || v > p.hi) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++out->matched;
    if (query.agg == AggKind::kCount) {
      ++out->agg;
    } else {
      AccumulateAgg(query.agg, columns_[query.agg_dim][r], &out->agg);
    }
  }
}

int64_t ColumnStore::LowerBound(int dim, int64_t begin, int64_t end,
                                Value v) const {
  const std::vector<Value>& col = columns_[dim];
  return std::lower_bound(col.begin() + begin, col.begin() + end, v) -
         col.begin();
}

int64_t ColumnStore::UpperBound(int dim, int64_t begin, int64_t end,
                                Value v) const {
  const std::vector<Value>& col = columns_[dim];
  return std::upper_bound(col.begin() + begin, col.begin() + end, v) -
         col.begin();
}

QueryResult ExecuteFullScan(const ColumnStore& store, const Query& query) {
  QueryResult result = InitResult(query);
  store.ScanRange(0, store.size(), query, /*exact=*/false, &result);
  result.cell_ranges = 1;
  return result;
}


void ColumnStore::Serialize(BinaryWriter* writer) const {
  writer->PutVarI64(num_rows_);
  writer->PutVarU64(columns_.size());
  for (const std::vector<Value>& column : columns_) {
    // Delta-encode: clustered columns are locally smooth, so deltas stay
    // in the one- or two-byte varint range.
    writer->PutVarU64(column.size());
    Value prev = 0;
    for (Value v : column) {
      writer->PutVarI64(v - prev);
      prev = v;
    }
  }
}

bool ColumnStore::Deserialize(BinaryReader* reader) {
  num_rows_ = reader->GetVarI64();
  uint64_t dims = reader->GetVarU64();
  if (!reader->ok() || num_rows_ < 0 || dims > 4096) {
    reader->MarkCorrupt();
    return false;
  }
  columns_.assign(dims, {});
  for (uint64_t d = 0; d < dims; ++d) {
    uint64_t n = reader->GetVarU64();
    if (!reader->ok() || n != static_cast<uint64_t>(num_rows_) ||
        n > reader->remaining()) {
      reader->MarkCorrupt();
      return false;
    }
    columns_[d].resize(n);
    Value prev = 0;
    for (uint64_t r = 0; r < n; ++r) {
      prev += reader->GetVarI64();
      columns_[d][r] = prev;
    }
  }
  return reader->ok();
}

}  // namespace tsunami
