#include "src/storage/column_store.h"

#include <algorithm>

namespace tsunami {

ColumnStore::ColumnStore(const Dataset& data) : num_rows_(data.size()) {
  columns_.resize(data.dims());
  for (int d = 0; d < data.dims(); ++d) {
    columns_[d].resize(num_rows_);
    for (int64_t r = 0; r < num_rows_; ++r) columns_[d][r] = data.at(r, d);
  }
  zones_.Build(columns_);
}

ColumnStore::ColumnStore(const Dataset& data,
                         const std::vector<uint32_t>& perm)
    : num_rows_(data.size()) {
  columns_.resize(data.dims());
  for (int d = 0; d < data.dims(); ++d) {
    columns_[d].resize(num_rows_);
    for (int64_t r = 0; r < num_rows_; ++r) {
      columns_[d][r] = data.at(perm[r], d);
    }
  }
  zones_.Build(columns_);
}

void ColumnStore::ScanRange(int64_t begin, int64_t end, const Query& query,
                            bool exact, QueryResult* out,
                            const ScanOptions& options) const {
  kernel().Scan(begin, end, query, exact, out, options);
}

void ColumnStore::ScanRanges(std::span<const RangeTask> tasks,
                             const Query& query, QueryResult* out,
                             const ScanOptions& options) const {
  kernel().ScanBatch(tasks, query, out, options);
}

int64_t ColumnStore::LowerBound(int dim, int64_t begin, int64_t end,
                                Value v) const {
  const std::vector<Value>& col = columns_[dim];
  return std::lower_bound(col.begin() + begin, col.begin() + end, v) -
         col.begin();
}

int64_t ColumnStore::UpperBound(int dim, int64_t begin, int64_t end,
                                Value v) const {
  const std::vector<Value>& col = columns_[dim];
  return std::upper_bound(col.begin() + begin, col.begin() + end, v) -
         col.begin();
}

QueryResult ExecuteFullScan(const ColumnStore& store, const Query& query) {
  QueryResult result = InitResult(query);
  store.ScanRange(0, store.size(), query, /*exact=*/false, &result);
  result.cell_ranges = 1;
  return result;
}


void ColumnStore::Serialize(BinaryWriter* writer) const {
  writer->PutVarI64(num_rows_);
  writer->PutVarU64(columns_.size());
  for (const std::vector<Value>& column : columns_) {
    // Delta-encode: clustered columns are locally smooth, so deltas stay
    // in the one- or two-byte varint range.
    writer->PutVarU64(column.size());
    Value prev = 0;
    for (Value v : column) {
      writer->PutVarI64(v - prev);
      prev = v;
    }
  }
}

bool ColumnStore::Deserialize(BinaryReader* reader) {
  num_rows_ = reader->GetVarI64();
  uint64_t dims = reader->GetVarU64();
  if (!reader->ok() || num_rows_ < 0 || dims > 4096) {
    reader->MarkCorrupt();
    return false;
  }
  columns_.assign(dims, {});
  for (uint64_t d = 0; d < dims; ++d) {
    uint64_t n = reader->GetVarU64();
    if (!reader->ok() || n != static_cast<uint64_t>(num_rows_) ||
        n > reader->remaining()) {
      reader->MarkCorrupt();
      return false;
    }
    columns_[d].resize(n);
    Value prev = 0;
    for (uint64_t r = 0; r < n; ++r) {
      prev += reader->GetVarI64();
      columns_[d][r] = prev;
    }
  }
  // Zone maps are derived state: cheaper to rebuild than to persist.
  if (reader->ok()) zones_.Build(columns_);
  return reader->ok();
}

}  // namespace tsunami
