#include "src/storage/column_store.h"

#include <algorithm>
#include <utility>

namespace tsunami {

namespace {

/// Builds the encoded columns (and, first, the zone maps) from fully
/// materialized raw columns. Raw vectors are released as each column is
/// encoded, so peak memory is the full raw footprint plus one encoded
/// column (the zone-map build needs every raw column at once); the raw
/// copies are all gone by the time the constructor returns.
void EncodeColumns(std::vector<std::vector<Value>>* raw, bool encode,
                   std::vector<EncodedColumn>* columns, ZoneMaps* zones) {
  zones->Build(*raw);
  columns->assign(raw->size(), {});
  for (size_t d = 0; d < raw->size(); ++d) {
    (*columns)[d].Encode((*raw)[d], encode);
    std::vector<Value>().swap((*raw)[d]);
  }
}

}  // namespace

ColumnStore::ColumnStore(const Dataset& data, bool encode)
    : num_rows_(data.size()) {
  std::vector<std::vector<Value>> raw(data.dims());
  for (int d = 0; d < data.dims(); ++d) {
    raw[d].resize(num_rows_);
    for (int64_t r = 0; r < num_rows_; ++r) raw[d][r] = data.at(r, d);
  }
  EncodeColumns(&raw, encode, &columns_, &zones_);
}

ColumnStore::ColumnStore(const Dataset& data,
                         const std::vector<uint32_t>& perm, bool encode)
    : num_rows_(data.size()) {
  std::vector<std::vector<Value>> raw(data.dims());
  for (int d = 0; d < data.dims(); ++d) {
    raw[d].resize(num_rows_);
    for (int64_t r = 0; r < num_rows_; ++r) {
      raw[d][r] = data.at(perm[r], d);
    }
  }
  EncodeColumns(&raw, encode, &columns_, &zones_);
}

void ColumnStore::ScanRange(int64_t begin, int64_t end, const Query& query,
                            bool exact, QueryResult* out,
                            const ScanOptions& options) const {
  kernel().Scan(begin, end, query, exact, out, options);
}

void ColumnStore::ScanRanges(std::span<const RangeTask> tasks,
                             const Query& query, QueryResult* out,
                             const ScanOptions& options) const {
  kernel().ScanBatch(tasks, query, out, options);
}

int64_t ColumnStore::LowerBound(int dim, int64_t begin, int64_t end,
                                Value v) const {
  const EncodedColumn& col = columns_[dim];
  while (begin < end) {
    const int64_t mid = begin + (end - begin) / 2;
    if (col.Get(mid) < v) {
      begin = mid + 1;
    } else {
      end = mid;
    }
  }
  return begin;
}

int64_t ColumnStore::UpperBound(int dim, int64_t begin, int64_t end,
                                Value v) const {
  const EncodedColumn& col = columns_[dim];
  while (begin < end) {
    const int64_t mid = begin + (end - begin) / 2;
    if (col.Get(mid) <= v) {
      begin = mid + 1;
    } else {
      end = mid;
    }
  }
  return begin;
}

int64_t ColumnStore::DataSizeBytes() const {
  int64_t bytes = 0;
  for (const EncodedColumn& col : columns_) bytes += col.SizeBytes();
  return bytes;
}

int64_t ColumnStore::QuarantinedBlocks() const {
  int64_t total = 0;
  for (const EncodedColumn& col : columns_) total += col.quarantined_blocks();
  return total;
}

bool ColumnStore::RepairBlock(int dim, int64_t block, const Value* values,
                              int64_t n) {
  if (dim < 0 || dim >= dims()) return false;
  if (!columns_[dim].RepairBlock(block, values, n)) return false;
  // The block's zone entry may have been built from the corrupt bytes
  // (Deserialize decodes to rebuild zones); recompute it from the repair.
  if (!zones_.empty()) zones_.UpdateBlock(dim, block, values, n);
  return true;
}

QueryResult ExecuteFullScan(const ColumnStore& store, const Query& query) {
  QueryResult result = InitResult(query);
  store.ScanRange(0, store.size(), query, /*exact=*/false, &result);
  result.cell_ranges = 1;
  return result;
}

void ColumnStore::Serialize(BinaryWriter* writer) const {
  writer->PutVarI64(num_rows_);
  writer->PutVarU64(columns_.size());
  for (const EncodedColumn& column : columns_) column.Serialize(writer);
}

bool ColumnStore::Deserialize(BinaryReader* reader) {
  num_rows_ = reader->GetVarI64();
  uint64_t dims = reader->GetVarU64();
  if (!reader->ok() || num_rows_ < 0 || dims > 4096) {
    reader->MarkCorrupt();
    return false;
  }
  columns_.assign(dims, {});
  for (uint64_t d = 0; d < dims; ++d) {
    if (!columns_[d].Deserialize(reader) ||
        columns_[d].rows() != num_rows_) {
      reader->MarkCorrupt();
      return false;
    }
  }
  // Zone maps are derived state: cheaper to rebuild than to persist.
  if (reader->ok()) zones_.Build(columns_);
  return reader->ok();
}

}  // namespace tsunami
