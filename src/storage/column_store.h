// In-memory column store substrate (§6.1). All indexes in this library are
// *clustered*: they choose a row order (a permutation) at build time, and the
// column store materializes the columns in that order so that each index's
// cells map to contiguous physical ranges.
#ifndef TSUNAMI_STORAGE_COLUMN_STORE_H_
#define TSUNAMI_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/io/serializer.h"
#include "src/storage/scan_kernel.h"

namespace tsunami {

/// Columnar storage for a single table of 64-bit integer attributes.
///
/// Implements the paper's one scan-time optimization: if the caller
/// guarantees that a physical range matches the query exactly ("exact
/// range"), the scan skips checking each value against the filters; for
/// COUNT this touches no data at all.
class ColumnStore {
 public:
  ColumnStore() = default;

  /// Materializes the dataset with rows in their original order.
  explicit ColumnStore(const Dataset& data);

  /// Materializes the dataset with row `perm[i]` stored at position `i`.
  /// `perm` must be a permutation of [0, data.size()).
  ColumnStore(const Dataset& data, const std::vector<uint32_t>& perm);

  int dims() const { return static_cast<int>(columns_.size()); }
  int64_t size() const { return columns_.empty() ? 0 : num_rows_; }

  Value Get(int64_t row, int dim) const { return columns_[dim][row]; }
  const std::vector<Value>& column(int dim) const { return columns_[dim]; }

  /// Scans physical rows [begin, end), accumulating the query's aggregate
  /// over rows matching every filter into `out`. Updates out->scanned /
  /// matched. If `exact` is true, all rows in the range are known to match
  /// and per-row filter checks are skipped. Runs the vectorized block
  /// kernel by default; pass ScanOptions{ScanOptions::kScalar} for the
  /// row-at-a-time reference path (both produce bit-identical results).
  void ScanRange(int64_t begin, int64_t end, const Query& query, bool exact,
                 QueryResult* out, const ScanOptions& options = {}) const;

  /// Batched multi-range execution: scans every task in order into one
  /// accumulator. Indexes plan all candidate ranges (cells, runs, pages)
  /// and submit them in a single call. Does not touch out->cell_ranges.
  void ScanRanges(std::span<const RangeTask> tasks, const Query& query,
                  QueryResult* out, const ScanOptions& options = {}) const;

  /// The block zone maps (per-block min/max/sum per dimension), built at
  /// construction and after Deserialize.
  const ZoneMaps& zone_maps() const { return zones_; }

  /// A scan-kernel view over this store's columns and zone maps.
  ScanKernel kernel() const { return ScanKernel(columns_, zones_); }

  /// First row in sorted-by-`dim` range [begin, end) with value >= v.
  /// Precondition: rows [begin, end) are sorted by `dim`.
  int64_t LowerBound(int dim, int64_t begin, int64_t end, Value v) const;

  /// First row in sorted-by-`dim` range [begin, end) with value > v.
  int64_t UpperBound(int dim, int64_t begin, int64_t end, Value v) const;

  /// Bytes of column data held (for reporting; not index overhead).
  int64_t DataSizeBytes() const { return num_rows_ * dims() * sizeof(Value); }

  /// Persistence (§8): columns are written in physical (clustered) order,
  /// so the store round-trips without re-sorting.
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);

 private:
  int64_t num_rows_ = 0;
  std::vector<std::vector<Value>> columns_;
  ZoneMaps zones_;
};

/// Executes `query` by scanning the full store; the reference answer used by
/// the FullScan baseline and by tests.
QueryResult ExecuteFullScan(const ColumnStore& store, const Query& query);

}  // namespace tsunami

#endif  // TSUNAMI_STORAGE_COLUMN_STORE_H_
