// In-memory column store substrate (§6.1). All indexes in this library are
// *clustered*: they choose a row order (a permutation) at build time, and the
// column store materializes the columns in that order so that each index's
// cells map to contiguous physical ranges. Columns are *stored encoded*:
// each kScanBlockRows-row block holds frame-of-reference + bit-width
// narrowed codes (see encoded_column.h), so scans read 2-8x fewer bytes
// and the SIMD kernel packs 2-8x more values per vector; blocks whose
// range does not fit 32-bit codes fall back to raw 64-bit storage.
#ifndef TSUNAMI_STORAGE_COLUMN_STORE_H_
#define TSUNAMI_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/io/serializer.h"
#include "src/storage/encoded_column.h"
#include "src/storage/scan_kernel.h"

namespace tsunami {

/// Columnar storage for a single table of 64-bit integer attributes.
///
/// Implements the paper's one scan-time optimization: if the caller
/// guarantees that a physical range matches the query exactly ("exact
/// range"), the scan skips checking each value against the filters; for
/// COUNT this touches no data at all.
class ColumnStore {
 public:
  ColumnStore() = default;

  /// Materializes the dataset with rows in their original order. `encode`
  /// (default: on, unless TSUNAMI_DISABLE_ENCODING is set at build or in
  /// the environment) controls per-block code narrowing; false pins every
  /// block to raw 64-bit storage. Both settings produce bit-identical
  /// query results — encoding only changes the physical representation.
  explicit ColumnStore(const Dataset& data,
                       bool encode = EncodingEnabledByDefault());

  /// Materializes the dataset with row `perm[i]` stored at position `i`.
  /// `perm` must be a permutation of [0, data.size()).
  ColumnStore(const Dataset& data, const std::vector<uint32_t>& perm,
              bool encode = EncodingEnabledByDefault());

  int dims() const { return static_cast<int>(columns_.size()); }
  int64_t size() const { return columns_.empty() ? 0 : num_rows_; }

  Value Get(int64_t row, int dim) const { return columns_[dim].Get(row); }

  /// Materializes one column's decoded values — a build-time helper for
  /// callers that need random access to a whole column (e.g. the secondary
  /// indexes' key sorts). O(rows) and allocates; query-time code should go
  /// through Get or the scan kernel instead.
  std::vector<Value> DecodeColumn(int dim) const {
    return columns_[dim].DecodeAll();
  }

  /// The encoded form of one column (codec widths, per-block views,
  /// compressed size) — introspection for EXPLAIN output and tests.
  const EncodedColumn& encoded(int dim) const { return columns_[dim]; }

  /// Quarantined (checksum-failed) blocks across all columns. Scans skip
  /// these and flag their results degraded.
  int64_t QuarantinedBlocks() const;

  /// Re-encodes one quarantined (or healthy) block of one column in place
  /// from `values` — exactly the block's row count — clearing quarantine
  /// and fixing that block's zone-map entry. Fails when the data no longer
  /// fits the block's stored code width. The repair path for
  /// TsunamiIndex::RepairQuarantinedFromDelta.
  bool RepairBlock(int dim, int64_t block, const Value* values, int64_t n);

  /// Scans physical rows [begin, end), accumulating the query's aggregate
  /// over rows matching every filter into `out`. Updates out->scanned /
  /// matched. If `exact` is true, all rows in the range are known to match
  /// and per-row filter checks are skipped. Runs the vectorized block
  /// kernel by default; pass ScanOptions{ScanOptions::kScalar} for the
  /// row-at-a-time reference path (both produce bit-identical results).
  void ScanRange(int64_t begin, int64_t end, const Query& query, bool exact,
                 QueryResult* out, const ScanOptions& options = {}) const;

  /// Batched multi-range execution: scans every task in order into one
  /// accumulator. Indexes plan all candidate ranges (cells, runs, pages)
  /// and submit them in a single call. Does not touch out->cell_ranges.
  void ScanRanges(std::span<const RangeTask> tasks, const Query& query,
                  QueryResult* out, const ScanOptions& options = {}) const;

  /// The block zone maps (per-block min/max/sum per dimension), built at
  /// construction and after Deserialize.
  const ZoneMaps& zone_maps() const { return zones_; }

  /// A scan-kernel view over this store's columns and zone maps.
  ScanKernel kernel() const { return ScanKernel(columns_, zones_); }

  /// First row in sorted-by-`dim` range [begin, end) with value >= v.
  /// Precondition: rows [begin, end) are sorted by `dim`.
  int64_t LowerBound(int dim, int64_t begin, int64_t end, Value v) const;

  /// First row in sorted-by-`dim` range [begin, end) with value > v.
  int64_t UpperBound(int dim, int64_t begin, int64_t end, Value v) const;

  /// Bytes of column data actually held: encoded code payloads plus codec
  /// metadata, per column (for reporting; not index overhead). With
  /// narrowing disabled this is raw bytes plus metadata; the pre-encoding
  /// figure was rows * dims * 8.
  int64_t DataSizeBytes() const;

  /// Persistence (§8): columns are written in physical (clustered) order
  /// and in their *encoded* form — codecs and code payloads round-trip
  /// verbatim, so loading neither re-sorts nor re-encodes (zone maps, being
  /// derived state, are rebuilt).
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);

 private:
  int64_t num_rows_ = 0;
  std::vector<EncodedColumn> columns_;
  ZoneMaps zones_;
};

/// Executes `query` by scanning the full store; the reference answer used by
/// the FullScan baseline and by tests.
QueryResult ExecuteFullScan(const ColumnStore& store, const Query& query);

}  // namespace tsunami

#endif  // TSUNAMI_STORAGE_COLUMN_STORE_H_
