#include "src/storage/dictionary.h"

#include <algorithm>

namespace tsunami {

Dictionary Dictionary::Build(std::vector<std::string> values) {
  Dictionary d;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  d.sorted_ = std::move(values);
  return d;
}

Value Dictionary::Encode(const std::string& s) const {
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), s);
  if (it == sorted_.end() || *it != s) return -1;
  return it - sorted_.begin();
}

Value Dictionary::EncodeLowerBound(const std::string& s) const {
  return std::lower_bound(sorted_.begin(), sorted_.end(), s) - sorted_.begin();
}

Value Dictionary::EncodeUpperBound(const std::string& s) const {
  return static_cast<Value>(std::upper_bound(sorted_.begin(), sorted_.end(),
                                             s) -
                            sorted_.begin()) -
         1;
}

int64_t Dictionary::SizeBytes() const {
  int64_t bytes = 0;
  for (const std::string& s : sorted_) {
    bytes += static_cast<int64_t>(s.size()) + sizeof(std::string);
  }
  return bytes;
}

}  // namespace tsunami
