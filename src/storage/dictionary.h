// Order-preserving dictionary encoding for string attributes (§6.1: "any
// string values are dictionary encoded prior to evaluation").
#ifndef TSUNAMI_STORAGE_DICTIONARY_H_
#define TSUNAMI_STORAGE_DICTIONARY_H_

#include <string>
#include <vector>

#include "src/common/types.h"

namespace tsunami {

/// Maps strings to dense integer codes assigned in lexicographic order, so
/// that range predicates over the encoded column correspond to lexicographic
/// string ranges.
class Dictionary {
 public:
  Dictionary() = default;

  /// Builds the dictionary from (not necessarily unique or sorted) values.
  static Dictionary Build(std::vector<std::string> values);

  /// Code for `s`, or -1 if `s` was not in the dictionary.
  Value Encode(const std::string& s) const;

  /// Smallest code whose string is >= s (for lower range endpoints); equals
  /// size() if all strings are < s.
  Value EncodeLowerBound(const std::string& s) const;

  /// Largest code whose string is <= s, or -1 if none.
  Value EncodeUpperBound(const std::string& s) const;

  const std::string& Decode(Value code) const { return sorted_[code]; }
  int64_t size() const { return static_cast<int64_t>(sorted_.size()); }

  int64_t SizeBytes() const;

 private:
  std::vector<std::string> sorted_;
};

}  // namespace tsunami

#endif  // TSUNAMI_STORAGE_DICTIONARY_H_
