#include "src/storage/encoded_column.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "src/common/fault_injection.h"

namespace tsunami {

bool EncodingEnabledByDefault() {
#if defined(TSUNAMI_DISABLE_ENCODING)
  return false;
#else
  static const bool enabled = [] {
    const char* disable = std::getenv("TSUNAMI_DISABLE_ENCODING");
    return disable == nullptr || disable[0] == '\0' || disable[0] == '0';
  }();
  return enabled;
#endif
}

namespace {

template <typename T>
void AppendCodes(std::vector<T>* out, const Value* values, int64_t n,
                 Value ref) {
  const size_t base = out->size();
  out->resize(base + static_cast<size_t>(n));
  T* codes = out->data() + base;
  for (int64_t i = 0; i < n; ++i) {
    codes[i] = static_cast<T>(static_cast<uint64_t>(values[i]) -
                              static_cast<uint64_t>(ref));
  }
}

template <typename T>
void DecodeCodes(const T* codes, int64_t n, Value ref, Value* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<Value>(static_cast<uint64_t>(ref) +
                                static_cast<uint64_t>(codes[i]));
  }
}

template <typename T>
void PutCodeArray(BinaryWriter* writer, const std::vector<T>& codes) {
  // Raw little-endian payload (the writer's documented byte order); codes
  // are already the compact representation, so no further transform.
  writer->PutString(std::string_view(
      reinterpret_cast<const char*>(codes.data()), codes.size() * sizeof(T)));
}

template <typename T>
bool GetCodeArray(BinaryReader* reader, uint64_t expected_elems,
                  std::vector<T>* out) {
  std::string bytes = reader->GetString();
  if (!reader->ok() || bytes.size() != expected_elems * sizeof(T)) {
    reader->MarkCorrupt();
    return false;
  }
  out->resize(expected_elems);
  if (expected_elems > 0) {
    std::memcpy(out->data(), bytes.data(), bytes.size());
  }
  return true;
}

}  // namespace

void EncodedColumn::Encode(const std::vector<Value>& values, bool narrow) {
#if defined(TSUNAMI_DISABLE_ENCODING)
  narrow = false;  // Build-level kill switch: raw blocks only.
#endif
  rows_ = static_cast<int64_t>(values.size());
  widths_.clear();
  refs_.clear();
  offsets_.clear();
  codes8_.clear();
  codes16_.clear();
  codes32_.clear();
  raw_.clear();
  const int64_t num_blocks = (rows_ + kScanBlockRows - 1) / kScanBlockRows;
  widths_.reserve(num_blocks);
  refs_.reserve(num_blocks);
  offsets_.reserve(num_blocks);
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t lo = b * kScanBlockRows;
    const int64_t n = std::min(rows_, lo + kScanBlockRows) - lo;
    const Value* block = values.data() + lo;
    Value mn = block[0], mx = block[0];
    for (int64_t i = 1; i < n; ++i) {
      mn = block[i] < mn ? block[i] : mn;
      mx = block[i] > mx ? block[i] : mx;
    }
    // uint64 difference is the exact non-negative spread even when the
    // block straddles the int64 range.
    const uint64_t range =
        static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
    int width = 8;
    if (narrow) {
      width = range <= CodeDomainMax(1)   ? 1
              : range <= CodeDomainMax(2) ? 2
              : range <= CodeDomainMax(4) ? 4
                                          : 8;
    }
    widths_.push_back(static_cast<uint8_t>(width));
    switch (width) {
      case 1:
        refs_.push_back(mn);
        offsets_.push_back(codes8_.size());
        AppendCodes(&codes8_, block, n, mn);
        break;
      case 2:
        refs_.push_back(mn);
        offsets_.push_back(codes16_.size());
        AppendCodes(&codes16_, block, n, mn);
        break;
      case 4:
        refs_.push_back(mn);
        offsets_.push_back(codes32_.size());
        AppendCodes(&codes32_, block, n, mn);
        break;
      default:
        refs_.push_back(0);
        offsets_.push_back(raw_.size());
        raw_.insert(raw_.end(), block, block + n);
        break;
    }
  }
  checksums_.resize(num_blocks);
  for (int64_t b = 0; b < num_blocks; ++b) {
    checksums_[b] = ComputeBlockChecksum(b);
  }
  // Freshly encoded blocks are trivially verified: the checksum was just
  // computed from the bytes it covers.
  ResetIntegrity(kIntegrityVerified);
}

uint64_t EncodedColumn::ComputeBlockChecksum(int64_t b) const {
  const BlockView v = block(b);
  const size_t bytes =
      static_cast<size_t>(BlockRowCount(b)) * static_cast<size_t>(v.width);
  // Seed folds the codec (width + frame of reference) into the hash, so a
  // corrupted codec byte is as detectable as a corrupted code.
  const uint64_t seed =
      static_cast<uint64_t>(v.width) * 0x9E3779B97F4A7C15ull ^
      static_cast<uint64_t>(v.ref);
  return XxHash64(
      std::string_view(static_cast<const char*>(v.codes), bytes), seed);
}

void EncodedColumn::ResetIntegrity(uint8_t state) {
  integrity_.assign(static_cast<size_t>(num_blocks()), AtomicState(state));
  unverified_left_.v.store(
      state == kIntegrityUnverified ? num_blocks() : 0,
      std::memory_order_relaxed);
  quarantined_.v.store(0, std::memory_order_relaxed);
}

bool EncodedColumn::EnsureReadableSlow(int64_t b) const {
  uint8_t state = integrity_[b].v.load(std::memory_order_acquire);
  if (state == kIntegrityVerified) return true;
  if (state == kIntegrityQuarantined) return false;
  uint64_t computed = ComputeBlockChecksum(b);
  // Fault site: pretend block b's bytes hash wrong, driving the quarantine
  // path deterministically without actually corrupting memory.
  if (TSUNAMI_FAULT_FIRES("storage.checksum", b)) computed ^= 1;
  const uint8_t next = computed == checksums_[b] ? kIntegrityVerified
                                                 : kIntegrityQuarantined;
  uint8_t expected = kIntegrityUnverified;
  if (integrity_[b].v.compare_exchange_strong(expected, next,
                                              std::memory_order_acq_rel)) {
    unverified_left_.v.fetch_sub(1, std::memory_order_relaxed);
    if (next == kIntegrityQuarantined) {
      quarantined_.v.fetch_add(1, std::memory_order_relaxed);
    }
    return next == kIntegrityVerified;
  }
  // Another thread settled the block first; its verdict stands.
  return expected == kIntegrityVerified;
}

bool EncodedColumn::VerifyAll() const {
  for (int64_t b = 0; b < num_blocks(); ++b) EnsureReadableSlow(b);
  return quarantined_blocks() == 0;
}

bool EncodedColumn::ScrubBlock(int64_t b) const {
  const uint8_t state = integrity_[b].v.load(std::memory_order_acquire);
  if (state == kIntegrityQuarantined) return false;
  uint64_t computed = ComputeBlockChecksum(b);
  // Fault site: the scrubber observes a rotted bit in block b without
  // actually corrupting memory (deterministic soak/test hook).
  if (TSUNAMI_FAULT_FIRES("scrub.corrupt_block", b)) computed ^= 1;
  if (computed != checksums_[b]) {
    Quarantine(b);
    return false;
  }
  if (state == kIntegrityUnverified) {
    uint8_t expected = kIntegrityUnverified;
    if (integrity_[b].v.compare_exchange_strong(expected, kIntegrityVerified,
                                                std::memory_order_acq_rel)) {
      unverified_left_.v.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return true;
}

void EncodedColumn::Quarantine(int64_t b) const {
  const uint8_t prev =
      integrity_[b].v.exchange(kIntegrityQuarantined,
                               std::memory_order_acq_rel);
  if (prev == kIntegrityQuarantined) return;
  if (prev == kIntegrityUnverified) {
    unverified_left_.v.fetch_sub(1, std::memory_order_relaxed);
  }
  quarantined_.v.fetch_add(1, std::memory_order_relaxed);
}

void EncodedColumn::MarkAllUnverified() const {
  int64_t unverified = 0;
  for (int64_t b = 0; b < num_blocks(); ++b) {
    if (integrity_[b].v.load(std::memory_order_relaxed) ==
        kIntegrityQuarantined) {
      continue;  // Quarantine sticks until an explicit repair.
    }
    integrity_[b].v.store(kIntegrityUnverified, std::memory_order_relaxed);
    ++unverified;
  }
  unverified_left_.v.store(unverified, std::memory_order_release);
}

bool EncodedColumn::RepairBlock(int64_t b, const Value* values, int64_t n) {
  if (b < 0 || b >= num_blocks() || n != BlockRowCount(b)) return false;
  Value mn = values[0], mx = values[0];
  for (int64_t i = 1; i < n; ++i) {
    mn = values[i] < mn ? values[i] : mn;
    mx = values[i] > mx ? values[i] : mx;
  }
  const uint64_t range =
      static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
  const int width = widths_[b];
  if (width < 8 && range > CodeDomainMax(width)) {
    return false;  // In-place repair cannot widen the block's code array.
  }
  const uint64_t off = offsets_[b];
  switch (width) {
    case 1:
      refs_[b] = mn;
      for (int64_t i = 0; i < n; ++i) {
        codes8_[off + i] = static_cast<uint8_t>(
            static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(mn));
      }
      break;
    case 2:
      refs_[b] = mn;
      for (int64_t i = 0; i < n; ++i) {
        codes16_[off + i] = static_cast<uint16_t>(
            static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(mn));
      }
      break;
    case 4:
      refs_[b] = mn;
      for (int64_t i = 0; i < n; ++i) {
        codes32_[off + i] = static_cast<uint32_t>(
            static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(mn));
      }
      break;
    default:
      std::copy_n(values, n, raw_.data() + off);
      break;
  }
  checksums_[b] = ComputeBlockChecksum(b);
  const uint8_t prev =
      integrity_[b].v.exchange(kIntegrityVerified, std::memory_order_acq_rel);
  if (prev == kIntegrityQuarantined) {
    quarantined_.v.fetch_sub(1, std::memory_order_relaxed);
  } else if (prev == kIntegrityUnverified) {
    unverified_left_.v.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

void EncodedColumn::Decode(int64_t begin, int64_t end, Value* out) const {
  while (begin < end) {
    const int64_t b = begin / kScanBlockRows;
    const int64_t block_end = std::min(end, (b + 1) * kScanBlockRows);
    const int64_t n = block_end - begin;
    const uint64_t i =
        offsets_[b] + static_cast<uint64_t>(begin % kScanBlockRows);
    switch (widths_[b]) {
      case 1:
        DecodeCodes(codes8_.data() + i, n, refs_[b], out);
        break;
      case 2:
        DecodeCodes(codes16_.data() + i, n, refs_[b], out);
        break;
      case 4:
        DecodeCodes(codes32_.data() + i, n, refs_[b], out);
        break;
      default:
        std::copy_n(raw_.data() + i, n, out);
        break;
    }
    out += n;
    begin = block_end;
  }
}

std::vector<Value> EncodedColumn::DecodeAll() const {
  std::vector<Value> out(rows_);
  if (rows_ > 0) Decode(0, rows_, out.data());
  return out;
}

int64_t EncodedColumn::SizeBytes() const {
  const int64_t payload = static_cast<int64_t>(
      codes8_.size() * sizeof(uint8_t) + codes16_.size() * sizeof(uint16_t) +
      codes32_.size() * sizeof(uint32_t) + raw_.size() * sizeof(Value));
  const int64_t metadata =
      num_blocks() * static_cast<int64_t>(sizeof(uint8_t) + sizeof(Value) +
                                          sizeof(uint64_t));
  return payload + metadata;
}

void EncodedColumn::WidthHistogram(int64_t counts[4]) const {
  for (uint8_t w : widths_) {
    switch (w) {
      case 1:
        ++counts[0];
        break;
      case 2:
        ++counts[1];
        break;
      case 4:
        ++counts[2];
        break;
      default:
        ++counts[3];
        break;
    }
  }
}

void EncodedColumn::Serialize(BinaryWriter* writer) const {
  writer->PutVarI64(rows_);
  for (size_t b = 0; b < widths_.size(); ++b) {
    writer->PutU8(widths_[b]);
    writer->PutVarI64(refs_[b]);
  }
  PutCodeArray(writer, codes8_);
  PutCodeArray(writer, codes16_);
  PutCodeArray(writer, codes32_);
  // Raw fallback blocks delta-varint encode (clustered columns are locally
  // smooth, so deltas stay in the one- or two-byte range) — this keeps the
  // narrowing-disabled configuration's snapshots compact too.
  writer->PutVarU64(raw_.size());
  Value prev = 0;
  for (Value v : raw_) {
    writer->PutVarI64(v - prev);
    prev = v;
  }
  // Format v3: per-block checksums ride at the tail so v2 layouts are a
  // strict prefix of v3 layouts.
  for (uint64_t checksum : checksums_) writer->PutFixed64(checksum);
}

bool EncodedColumn::Deserialize(BinaryReader* reader) {
  rows_ = reader->GetVarI64();
  if (!reader->ok() || rows_ < 0 ||
      static_cast<uint64_t>(rows_) > reader->remaining() * kScanBlockRows) {
    reader->MarkCorrupt();
    return false;
  }
  const int64_t num_blocks = (rows_ + kScanBlockRows - 1) / kScanBlockRows;
  widths_.assign(num_blocks, 0);
  refs_.assign(num_blocks, 0);
  offsets_.assign(num_blocks, 0);
  uint64_t elems[4] = {0, 0, 0, 0};  // Per width class: 1, 2, 4, 8 bytes.
  for (int64_t b = 0; b < num_blocks; ++b) {
    const uint8_t width = reader->GetU8();
    const Value ref = reader->GetVarI64();
    int cls;
    switch (width) {
      case 1:
        cls = 0;
        break;
      case 2:
        cls = 1;
        break;
      case 4:
        cls = 2;
        break;
      case 8:
        cls = 3;
        break;
      default:
        reader->MarkCorrupt();
        return false;
    }
    widths_[b] = width;
    refs_[b] = width == 8 ? 0 : ref;
    offsets_[b] = elems[cls];
    const int64_t lo = b * kScanBlockRows;
    elems[cls] +=
        static_cast<uint64_t>(std::min(rows_, lo + kScanBlockRows) - lo);
  }
  if (!reader->ok() || !GetCodeArray(reader, elems[0], &codes8_) ||
      !GetCodeArray(reader, elems[1], &codes16_) ||
      !GetCodeArray(reader, elems[2], &codes32_)) {
    return false;
  }
  const uint64_t raw_elems = reader->GetVarU64();
  if (!reader->ok() || raw_elems != elems[3] ||
      raw_elems > reader->remaining()) {
    reader->MarkCorrupt();
    return false;
  }
  raw_.resize(raw_elems);
  Value prev = 0;
  for (uint64_t i = 0; i < raw_elems; ++i) {
    prev += reader->GetVarI64();
    raw_[i] = prev;
  }
  if (!reader->ok()) return false;
  checksums_.resize(num_blocks);
  if (reader->version() >= 3) {
    for (int64_t b = 0; b < num_blocks; ++b) {
      checksums_[b] = reader->GetFixed64();
    }
    if (!reader->ok()) return false;
    // Verify everything now; a mismatch quarantines the block (scans skip
    // it and report degraded results) rather than failing the load.
    ResetIntegrity(kIntegrityUnverified);
    VerifyAll();
  } else {
    // v2 payload: no stored checksums. Recompute from bytes the frame CRC
    // already validated; the blocks are trivially verified.
    ResetIntegrity(kIntegrityVerified);
    for (int64_t b = 0; b < num_blocks; ++b) {
      checksums_[b] = ComputeBlockChecksum(b);
    }
  }
  return reader->ok();
}

}  // namespace tsunami
