// Per-block lightweight column encoding (the compressed-execution layer):
// each kScanBlockRows-row block of a column picks a codec at build time —
// frame-of-reference (the block minimum) plus bit-width narrowing to
// 8/16/32-bit unsigned codes, falling back to raw 64-bit storage when the
// block's value range does not fit 32 bits. Dictionary-coded string columns
// (dense codes, §6.1) flow through the same path and narrow especially
// well. Decoding is a single add (value = ref + code), so predicates are
// evaluated *on the codes*: query bounds are translated once per block into
// code space (TranslateToCodeSpace) and the scan kernel's compare+compress
// runs on 2-8x more values per SIMD vector while touching 2-8x fewer bytes.
//
// Every block additionally carries an XxHash64 checksum (computed at encode
// time, persisted as format v3). A block that fails verification — at load,
// or lazily on first scan touch — is *quarantined*, not fatal: scans skip it
// and flag their result degraded (QueryResult::degraded), and Tsunami can
// re-materialize a quarantined block from its fold backup when possible.
#ifndef TSUNAMI_STORAGE_ENCODED_COLUMN_H_
#define TSUNAMI_STORAGE_ENCODED_COLUMN_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/io/serializer.h"

namespace tsunami {

/// Rows per column block (shared with the zone maps: block b covers rows
/// [b * kScanBlockRows, (b+1) * kScanBlockRows), the last block truncated).
/// Small enough that a block's columns stay cache resident across the
/// predicate passes, large enough to amortize per-block bookkeeping.
inline constexpr int64_t kScanBlockRows = 1024;

/// Largest code value representable in `width` bytes (the code domain).
constexpr uint64_t CodeDomainMax(int width) {
  return width >= 8 ? ~uint64_t{0} : (uint64_t{1} << (8 * width)) - 1;
}

/// A value-space predicate [lo, hi] translated into one block's code space.
/// kEmpty: no code in the block's domain can satisfy the predicate (the
/// whole block is skipped without reading a code). kAll: every code in the
/// domain satisfies it (the pass is the identity and is skipped). kCompare:
/// run the width's compare+compress with the inclusive code bounds [lo, hi].
struct CodeRange {
  enum State { kEmpty, kAll, kCompare };
  State state = kCompare;
  uint64_t lo = 0;
  uint64_t hi = 0;
};

/// Translates the value-space predicate [lo, hi] into the code space of a
/// block with frame-of-reference `ref` and code-domain max `wmax`
/// (CodeDomainMax of the block's width). Codes are unsigned offsets from
/// `ref`, so lo <= ref + c <= hi becomes max(lo - ref, 0) <= c <=
/// min(hi - ref, wmax) — computed in uint64 so predicates at the Value
/// extremes cannot overflow. Requires lo <= hi and a narrow width
/// (wmax < 2^64); raw blocks compare values directly, untranslated.
inline CodeRange TranslateToCodeSpace(Value lo, Value hi, Value ref,
                                      uint64_t wmax) {
  if (hi < ref) return {CodeRange::kEmpty, 0, 0};
  // hi >= ref, so the uint64 differences below are exact non-negative
  // offsets even when the operands straddle the int64 range.
  uint64_t uhi = static_cast<uint64_t>(hi) - static_cast<uint64_t>(ref);
  uint64_t ulo = lo <= ref
                     ? 0
                     : static_cast<uint64_t>(lo) - static_cast<uint64_t>(ref);
  if (ulo > wmax) return {CodeRange::kEmpty, 0, 0};
  if (uhi >= wmax) uhi = wmax;
  if (ulo == 0 && uhi == wmax) return {CodeRange::kAll, 0, wmax};
  return {CodeRange::kCompare, ulo, uhi};
}

/// True unless narrowing is disabled for this build
/// (-DTSUNAMI_DISABLE_ENCODING=ON) or process (the TSUNAMI_DISABLE_ENCODING
/// environment variable, CI's raw-block escape hatch); cached after the
/// first call. Benches override per store via the ColumnStore constructors.
bool EncodingEnabledByDefault();

/// One column stored as per-block codes. Blocks of one width live
/// back-to-back in that width's typed array (offsets_ holds each block's
/// element offset), so a block's codes are always contiguous and typed —
/// no byte-buffer aliasing.
class EncodedColumn {
 public:
  /// A resolved view of one block: `codes` points at the block's first
  /// code, typed by `width` (uint8_t/uint16_t/uint32_t for 1/2/4, Value
  /// for 8). value = ref + code for narrow widths; raw blocks store values
  /// directly (ref is 0).
  struct BlockView {
    const void* codes = nullptr;
    Value ref = 0;
    int width = 8;
  };

  EncodedColumn() = default;

  /// Builds the encoded form of `values`. `narrow` = false pins every
  /// block to raw 64-bit storage (the TSUNAMI_DISABLE_ENCODING path and
  /// the benches' A/B baseline); decoding is unaffected, so stores built
  /// either way serve the same API.
  void Encode(const std::vector<Value>& values, bool narrow);

  int64_t rows() const { return rows_; }
  int64_t num_blocks() const { return static_cast<int64_t>(widths_.size()); }

  Value Get(int64_t row) const {
    const int64_t b = row / kScanBlockRows;
    const uint64_t i =
        offsets_[b] + static_cast<uint64_t>(row % kScanBlockRows);
    switch (widths_[b]) {
      case 1:
        return Decoded(refs_[b], codes8_[i]);
      case 2:
        return Decoded(refs_[b], codes16_[i]);
      case 4:
        return Decoded(refs_[b], codes32_[i]);
      default:
        return raw_[i];
    }
  }

  /// Decodes rows [begin, end) into `out` (out[i] = value of row begin+i).
  void Decode(int64_t begin, int64_t end, Value* out) const;

  /// The whole column, decoded. Build-time helper; O(rows) and allocates.
  std::vector<Value> DecodeAll() const;

  BlockView block(int64_t b) const {
    const uint64_t off = offsets_[b];
    switch (widths_[b]) {
      case 1:
        return {codes8_.data() + off, refs_[b], 1};
      case 2:
        return {codes16_.data() + off, refs_[b], 2};
      case 4:
        return {codes32_.data() + off, refs_[b], 4};
      default:
        return {raw_.data() + off, 0, 8};
    }
  }

  /// Bytes actually held: code payloads plus per-block codec metadata
  /// (width byte, frame of reference, offset).
  int64_t SizeBytes() const;

  /// counts[0..3] += number of blocks stored at 1/2/4/8 bytes per code.
  void WidthHistogram(int64_t counts[4]) const;

  /// Persistence: codecs and code payloads round-trip verbatim (the store
  /// is *stored* encoded; nothing re-derives widths on load). Format v3
  /// appends the per-block checksums; Deserialize of a v2 payload (see
  /// BinaryReader::version) recomputes them — the frame CRC already
  /// validated those bytes. Deserialize verifies every block, quarantining
  /// (not failing on) checksum mismatches.
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);

  // ---- Block integrity -------------------------------------------------
  //
  // Integrity state is lazily-maintained, thread-safe *metadata* over the
  // immutable code payload, so the mutators below are const: scans (const)
  // verify blocks on first touch. The fast path — everything verified,
  // nothing quarantined — is two relaxed loads.

  /// True when block b's bytes may be read. Verifies the checksum on the
  /// block's first touch; a mismatch quarantines the block and returns
  /// false (the caller skips the block and flags its result degraded).
  bool EnsureReadable(int64_t b) const {
    if (unverified_left_.v.load(std::memory_order_relaxed) == 0 &&
        quarantined_.v.load(std::memory_order_relaxed) == 0) {
      return true;
    }
    return EnsureReadableSlow(b);
  }

  bool IsQuarantined(int64_t b) const {
    return !integrity_.empty() &&
           integrity_[b].v.load(std::memory_order_acquire) ==
               kIntegrityQuarantined;
  }

  int64_t quarantined_blocks() const {
    return quarantined_.v.load(std::memory_order_relaxed);
  }

  /// Verifies every still-unverified block now (the eager load-time pass).
  /// Returns true when no block is quarantined afterwards.
  bool VerifyAll() const;

  /// Scrubber hook: recomputes block b's checksum even when the block was
  /// already verified (EnsureReadable hashes a block only once — a bit
  /// that rots *after* that first touch is invisible to it). A mismatch
  /// quarantines the block; a healthy unverified block is promoted to
  /// verified. Thread-safe against concurrent scans. False = the block is
  /// (now) quarantined. The `scrub.corrupt_block` fault site (arg = b)
  /// makes the recomputed hash mismatch without touching memory.
  bool ScrubBlock(int64_t b) const;

  /// Ops/test hook: marks block b quarantined as if its checksum failed.
  void Quarantine(int64_t b) const;

  /// Forgets verification state so every healthy block re-verifies on its
  /// next touch (a scrubber pass; also how tests exercise lazy detection
  /// of in-memory corruption). Not safe concurrent with scans.
  void MarkAllUnverified() const;

  /// Re-encodes block b in place from `values` (exactly the block's row
  /// count), clearing quarantine and recomputing the checksum. Fails when
  /// the replacement data no longer fits the block's stored code width
  /// (in-place repair cannot grow the typed arrays).
  bool RepairBlock(int64_t b, const Value* values, int64_t n);

  uint64_t block_checksum(int64_t b) const { return checksums_[b]; }

 private:
  enum : uint8_t {
    kIntegrityVerified = 0,
    kIntegrityUnverified = 1,
    kIntegrityQuarantined = 2,
  };

  // Copyable atomic wrappers so EncodedColumn keeps value semantics.
  // Copying is only meaningful while the source is quiescent (build/load
  // time), like copying the vectors themselves.
  struct AtomicState {
    std::atomic<uint8_t> v{kIntegrityVerified};
    AtomicState() = default;
    explicit AtomicState(uint8_t s) : v(s) {}
    AtomicState(const AtomicState& o)
        : v(o.v.load(std::memory_order_relaxed)) {}
    AtomicState& operator=(const AtomicState& o) {
      v.store(o.v.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
      return *this;
    }
  };
  struct AtomicCount {
    std::atomic<int64_t> v{0};
    AtomicCount() = default;
    AtomicCount(const AtomicCount& o)
        : v(o.v.load(std::memory_order_relaxed)) {}
    AtomicCount& operator=(const AtomicCount& o) {
      v.store(o.v.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
      return *this;
    }
  };

  static Value Decoded(Value ref, uint64_t code) {
    return static_cast<Value>(static_cast<uint64_t>(ref) + code);
  }

  int64_t BlockRowCount(int64_t b) const {
    const int64_t lo = b * kScanBlockRows;
    const int64_t hi = lo + kScanBlockRows;
    return (hi < rows_ ? hi : rows_) - lo;
  }

  uint64_t ComputeBlockChecksum(int64_t b) const;
  bool EnsureReadableSlow(int64_t b) const;
  /// Resets integrity bookkeeping after (re-)building block metadata.
  void ResetIntegrity(uint8_t state);

  int64_t rows_ = 0;
  std::vector<uint8_t> widths_;    // Bytes per code, per block: 1, 2, 4, 8.
  std::vector<Value> refs_;        // Frame of reference per block (raw: 0).
  std::vector<uint64_t> offsets_;  // Element offset into the width's array.
  std::vector<uint8_t> codes8_;
  std::vector<uint16_t> codes16_;
  std::vector<uint32_t> codes32_;
  std::vector<Value> raw_;
  std::vector<uint64_t> checksums_;  // XxHash64 per block (codes+codec).
  mutable std::vector<AtomicState> integrity_;  // Per-block 3-state.
  mutable AtomicCount unverified_left_;  // Blocks still to verify lazily.
  mutable AtomicCount quarantined_;      // Blocks failed + quarantined.
};

}  // namespace tsunami

#endif  // TSUNAMI_STORAGE_ENCODED_COLUMN_H_
