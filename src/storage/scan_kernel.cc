#include "src/storage/scan_kernel.h"

#include <algorithm>

#include "src/storage/scan_kernel_simd.h"

namespace tsunami {

void ZoneMaps::Build(const std::vector<std::vector<Value>>& columns) {
  Clear();
  if (columns.empty() || columns[0].empty()) return;
  const SimdOps& ops = OpsForTier(SimdTier::kAuto);
  const int dims = static_cast<int>(columns.size());
  const int64_t rows = static_cast<int64_t>(columns[0].size());
  num_blocks_ = (rows + kScanBlockRows - 1) / kScanBlockRows;
  min_.assign(dims, {});
  max_.assign(dims, {});
  sum_.assign(dims, {});
  for (int d = 0; d < dims; ++d) {
    min_[d].resize(num_blocks_);
    max_[d].resize(num_blocks_);
    sum_[d].resize(num_blocks_);
    const Value* col = columns[d].data();
    for (int64_t b = 0; b < num_blocks_; ++b) {
      int64_t lo = b * kScanBlockRows;
      int64_t hi = std::min(rows, lo + kScanBlockRows);
      ops.block_stats(col + lo, hi - lo, &min_[d][b], &max_[d][b],
                      &sum_[d][b]);
    }
  }
}

void ZoneMaps::Clear() {
  num_blocks_ = 0;
  min_.clear();
  max_.clear();
  sum_.clear();
}

int64_t ZoneMaps::SizeBytes() const {
  return num_blocks_ * static_cast<int64_t>(min_.size()) *
         (2 * sizeof(Value) + sizeof(int64_t));
}

void ScanKernel::Scan(int64_t begin, int64_t end, const Query& query,
                      bool exact, QueryResult* out,
                      const ScanOptions& options) const {
  if (begin >= end) return;
  if (options.mode == ScanMode::kScalar) {
    ScanScalar(begin, end, query, exact, out);
    return;
  }
  // kVectorized is pinned to the scalar-branchless ops; kSimd resolves the
  // requested tier (kAuto -> best supported) through runtime dispatch.
  const SimdOps& ops = options.mode == ScanMode::kSimd
                           ? OpsForTier(options.tier)
                           : ScalarSimdOps();
  if (exact) {
    ScanExactVectorized(begin, end, query, ops, out);
  } else {
    ScanVectorized(begin, end, query, ops, out);
  }
}

void ScanKernel::ScanBatch(std::span<const RangeTask> tasks,
                           const Query& query, QueryResult* out,
                           const ScanOptions& options) const {
  if (options.stop_probe == nullptr) {
    for (const RangeTask& task : tasks) {
      Scan(task.begin, task.end, query, task.exact, out, options);
    }
    return;
  }
  // Cancellable batch: probe between tasks and, inside oversized tasks,
  // between block-aligned kScanStopProbeRows slices, so a deadline or
  // cancel flag lands mid-scan instead of after the largest range. The
  // accumulation is a left-to-right fold over the same rows, so an
  // uncancelled probed batch is bit-identical to the unprobed loop above.
  for (const RangeTask& task : tasks) {
    int64_t begin = task.begin;
    while (begin < task.end) {
      if (options.ShouldStop()) return;
      int64_t end = task.end;
      if (end - begin > kScanStopProbeRows) {
        // Slice on a block boundary so full-block zone-map paths (and the
        // exact-range SUM-from-block-sums path) see whole blocks.
        end = begin + kScanStopProbeRows;
        end -= end % kScanBlockRows;
        if (end <= begin) end = std::min(task.end, begin + kScanBlockRows);
      }
      Scan(begin, end, query, task.exact, out, options);
      begin = end;
    }
  }
}

// The pre-kernel reference path: row-at-a-time with early exit. Kept
// verbatim (modulo the multi-aggregate loop, which runs once for
// single-aggregate queries) so ScanMode::kScalar A/Bs against exactly the
// old behavior.
void ScanKernel::ScanScalar(int64_t begin, int64_t end, const Query& query,
                            bool exact, QueryResult* out) const {
  const std::vector<std::vector<Value>>& columns = *columns_;
  const int num_aggs = query.num_aggs();
  if (exact) {
    // Exact ranges skip per-value checks entirely; COUNT touches no data.
    int64_t n = end - begin;
    out->matched += n;
    bool touched_data = false;
    for (int a = 0; a < num_aggs; ++a) {
      const AggregateSpec spec = query.agg_spec(a);
      int64_t* acc = out->agg_accumulator(a);
      if (spec.op == AggKind::kCount) {
        *acc += n;
        continue;
      }
      touched_data = true;
      const std::vector<Value>& agg_col = columns[spec.column];
      for (int64_t r = begin; r < end; ++r) {
        AccumulateAgg(spec.op, agg_col[r], acc);
      }
    }
    if (touched_data) out->scanned += n;
    return;
  }
  out->scanned += end - begin;
  const std::vector<Predicate>& filters = query.filters;
  for (int64_t r = begin; r < end; ++r) {
    bool ok = true;
    for (const Predicate& p : filters) {
      Value v = columns[p.dim][r];
      if (v < p.lo || v > p.hi) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++out->matched;
    for (int a = 0; a < num_aggs; ++a) {
      const AggregateSpec spec = query.agg_spec(a);
      AccumulateAgg(spec.op,
                    spec.op == AggKind::kCount ? 0 : columns[spec.column][r],
                    out->agg_accumulator(a));
    }
  }
}

int ScanKernel::BuildSelection(int64_t begin, int64_t end,
                               const std::vector<Predicate>& filters,
                               const SimdOps& ops, uint32_t* sel) const {
  const std::vector<std::vector<Value>>& columns = *columns_;
  const int count = static_cast<int>(end - begin);
  // First predicate compacts [0, count) into sel; later predicates compact
  // the survivors in place. All passes are compare+compress, lane-parallel
  // under the SIMD tiers.
  const Predicate& first = filters[0];
  int n = ops.first_pass(columns[first.dim].data() + begin, count, first.lo,
                         first.hi, sel);
  for (size_t f = 1; f < filters.size() && n > 0; ++f) {
    const Predicate& p = filters[f];
    n = ops.refine_pass(columns[p.dim].data() + begin, sel, n, p.lo, p.hi);
  }
  return n;
}

void ScanKernel::AggregateRun(int64_t begin, int64_t end, int64_t block,
                              const Query& query, const SimdOps& ops,
                              QueryResult* out) const {
  const int num_aggs = query.num_aggs();
  if (num_aggs == 1 && query.agg_spec(0).op == AggKind::kCount) {
    out->agg += end - begin;
    return;
  }
  const bool full = !zones_->empty() && CoversBlock(begin, end, block);
  for (int a = 0; a < num_aggs; ++a) {
    const AggregateSpec spec = query.agg_spec(a);
    int64_t* acc = out->agg_accumulator(a);
    if (spec.op == AggKind::kCount) {
      *acc += end - begin;
      continue;
    }
    const Value* col = (*columns_)[spec.column].data();
    switch (spec.op) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        *acc += full ? zones_->Sum(spec.column, block)
                     : ops.sum_range(col + begin, end - begin);
        break;
      case AggKind::kMin: {
        Value m = full ? zones_->Min(spec.column, block)
                       : ops.min_range(col + begin, end - begin);
        if (m < *acc) *acc = m;
        break;
      }
      case AggKind::kMax: {
        Value m = full ? zones_->Max(spec.column, block)
                       : ops.max_range(col + begin, end - begin);
        if (m > *acc) *acc = m;
        break;
      }
    }
  }
}

void ScanKernel::ScanVectorized(int64_t begin, int64_t end,
                                const Query& query, const SimdOps& ops,
                                QueryResult* out) const {
  out->scanned += end - begin;
  const std::vector<Predicate>& filters = query.filters;
  const int64_t b_first = begin / kScanBlockRows;
  const int64_t b_last = (end - 1) / kScanBlockRows;
  uint32_t sel[kScanBlockRows];
  for (int64_t b = b_first; b <= b_last; ++b) {
    const int64_t lo = std::max(begin, b * kScanBlockRows);
    const int64_t hi = std::min(end, (b + 1) * kScanBlockRows);
    // Zone-map triage: a block disjoint from any filter contributes
    // nothing; a block inside every filter needs no per-row checks.
    bool all_match = true;
    bool skip = false;
    if (!zones_->empty()) {
      for (const Predicate& p : filters) {
        const Value zmin = zones_->Min(p.dim, b);
        const Value zmax = zones_->Max(p.dim, b);
        if (zmin > p.hi || zmax < p.lo) {
          skip = true;
          break;
        }
        all_match = all_match && p.lo <= zmin && zmax <= p.hi;
      }
    } else {
      all_match = filters.empty();
    }
    if (skip) continue;
    if (all_match) {
      out->matched += hi - lo;
      AggregateRun(lo, hi, b, query, ops, out);
      continue;
    }
    const int n = BuildSelection(lo, hi, filters, ops, sel);
    if (n == 0) continue;
    out->matched += n;
    // One selection vector feeds every aggregate: the compare+compress
    // passes above run once per block regardless of how many aggregates
    // the query computes; only the gather tails repeat per aggregate.
    for (int a = 0; a < query.num_aggs(); ++a) {
      const AggregateSpec spec = query.agg_spec(a);
      int64_t* acc = out->agg_accumulator(a);
      if (spec.op == AggKind::kCount) {
        *acc += n;
        continue;
      }
      const Value* col = (*columns_)[spec.column].data() + lo;
      switch (spec.op) {
        case AggKind::kCount:
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          *acc += ops.sum_gather(col, sel, n);
          break;
        case AggKind::kMin: {
          Value m = ops.min_gather(col, sel, n);
          if (m < *acc) *acc = m;
          break;
        }
        case AggKind::kMax: {
          Value m = ops.max_gather(col, sel, n);
          if (m > *acc) *acc = m;
          break;
        }
      }
    }
  }
}

// Exact ranges: every row matches, so only the aggregate remains. COUNT is
// arithmetic; SUM reads block sums for fully covered blocks (and only the
// ragged edges row-by-row); MIN/MAX read block extrema the same way.
void ScanKernel::ScanExactVectorized(int64_t begin, int64_t end,
                                     const Query& query, const SimdOps& ops,
                                     QueryResult* out) const {
  const int64_t n = end - begin;
  out->matched += n;
  bool all_count = true;
  for (int a = 0; a < query.num_aggs(); ++a) {
    all_count = all_count && query.agg_spec(a).op == AggKind::kCount;
  }
  if (all_count) {
    for (int a = 0; a < query.num_aggs(); ++a) *out->agg_accumulator(a) += n;
    return;
  }
  out->scanned += n;
  const int64_t b_first = begin / kScanBlockRows;
  const int64_t b_last = (end - 1) / kScanBlockRows;
  for (int64_t b = b_first; b <= b_last; ++b) {
    const int64_t lo = std::max(begin, b * kScanBlockRows);
    const int64_t hi = std::min(end, (b + 1) * kScanBlockRows);
    AggregateRun(lo, hi, b, query, ops, out);
  }
}

}  // namespace tsunami
