#include "src/storage/scan_kernel.h"

#include <algorithm>

#include "src/storage/scan_kernel_simd.h"

namespace tsunami {

void ZoneMaps::Build(const std::vector<std::vector<Value>>& columns) {
  Clear();
  if (columns.empty() || columns[0].empty()) return;
  const SimdOps& ops = OpsForTier(SimdTier::kAuto);
  const int dims = static_cast<int>(columns.size());
  const int64_t rows = static_cast<int64_t>(columns[0].size());
  num_blocks_ = (rows + kScanBlockRows - 1) / kScanBlockRows;
  min_.assign(dims, {});
  max_.assign(dims, {});
  sum_.assign(dims, {});
  for (int d = 0; d < dims; ++d) {
    min_[d].resize(num_blocks_);
    max_[d].resize(num_blocks_);
    sum_[d].resize(num_blocks_);
    const Value* col = columns[d].data();
    for (int64_t b = 0; b < num_blocks_; ++b) {
      int64_t lo = b * kScanBlockRows;
      int64_t hi = std::min(rows, lo + kScanBlockRows);
      ops.block_stats(col + lo, hi - lo, &min_[d][b], &max_[d][b],
                      &sum_[d][b]);
    }
  }
}

void ZoneMaps::Clear() {
  num_blocks_ = 0;
  min_.clear();
  max_.clear();
  sum_.clear();
}

int64_t ZoneMaps::SizeBytes() const {
  return num_blocks_ * static_cast<int64_t>(min_.size()) *
         (2 * sizeof(Value) + sizeof(int64_t));
}

void ScanKernel::Scan(int64_t begin, int64_t end, const Query& query,
                      bool exact, QueryResult* out,
                      const ScanOptions& options) const {
  if (begin >= end) return;
  if (options.mode == ScanMode::kScalar) {
    ScanScalar(begin, end, query, exact, out);
    return;
  }
  // kVectorized is pinned to the scalar-branchless ops; kSimd resolves the
  // requested tier (kAuto -> best supported) through runtime dispatch.
  const SimdOps& ops = options.mode == ScanMode::kSimd
                           ? OpsForTier(options.tier)
                           : ScalarSimdOps();
  if (exact) {
    ScanExactVectorized(begin, end, query, ops, out);
  } else {
    ScanVectorized(begin, end, query, ops, out);
  }
}

void ScanKernel::ScanBatch(std::span<const RangeTask> tasks,
                           const Query& query, QueryResult* out,
                           const ScanOptions& options) const {
  for (const RangeTask& task : tasks) {
    Scan(task.begin, task.end, query, task.exact, out, options);
  }
}

// The pre-kernel reference path: row-at-a-time with early exit. Kept
// verbatim so ScanMode::kScalar A/Bs against exactly the old behavior.
void ScanKernel::ScanScalar(int64_t begin, int64_t end, const Query& query,
                            bool exact, QueryResult* out) const {
  const std::vector<std::vector<Value>>& columns = *columns_;
  if (exact) {
    // Exact ranges skip per-value checks entirely; COUNT touches no data.
    int64_t n = end - begin;
    out->matched += n;
    if (query.agg == AggKind::kCount) {
      out->agg += n;
    } else {
      const std::vector<Value>& agg_col = columns[query.agg_dim];
      for (int64_t r = begin; r < end; ++r) {
        AccumulateAgg(query.agg, agg_col[r], &out->agg);
      }
      out->scanned += n;
    }
    return;
  }
  out->scanned += end - begin;
  const std::vector<Predicate>& filters = query.filters;
  for (int64_t r = begin; r < end; ++r) {
    bool ok = true;
    for (const Predicate& p : filters) {
      Value v = columns[p.dim][r];
      if (v < p.lo || v > p.hi) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++out->matched;
    if (query.agg == AggKind::kCount) {
      ++out->agg;
    } else {
      AccumulateAgg(query.agg, columns[query.agg_dim][r], &out->agg);
    }
  }
}

int ScanKernel::BuildSelection(int64_t begin, int64_t end,
                               const std::vector<Predicate>& filters,
                               const SimdOps& ops, uint32_t* sel) const {
  const std::vector<std::vector<Value>>& columns = *columns_;
  const int count = static_cast<int>(end - begin);
  // First predicate compacts [0, count) into sel; later predicates compact
  // the survivors in place. All passes are compare+compress, lane-parallel
  // under the SIMD tiers.
  const Predicate& first = filters[0];
  int n = ops.first_pass(columns[first.dim].data() + begin, count, first.lo,
                         first.hi, sel);
  for (size_t f = 1; f < filters.size() && n > 0; ++f) {
    const Predicate& p = filters[f];
    n = ops.refine_pass(columns[p.dim].data() + begin, sel, n, p.lo, p.hi);
  }
  return n;
}

void ScanKernel::AggregateRun(int64_t begin, int64_t end, int64_t block,
                              const Query& query, const SimdOps& ops,
                              QueryResult* out) const {
  if (query.agg == AggKind::kCount) {
    out->agg += end - begin;
    return;
  }
  const bool full = !zones_->empty() && CoversBlock(begin, end, block);
  const Value* col = (*columns_)[query.agg_dim].data();
  switch (query.agg) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      out->agg += full ? zones_->Sum(query.agg_dim, block)
                       : ops.sum_range(col + begin, end - begin);
      break;
    case AggKind::kMin: {
      Value m = full ? zones_->Min(query.agg_dim, block)
                     : ops.min_range(col + begin, end - begin);
      if (m < out->agg) out->agg = m;
      break;
    }
    case AggKind::kMax: {
      Value m = full ? zones_->Max(query.agg_dim, block)
                     : ops.max_range(col + begin, end - begin);
      if (m > out->agg) out->agg = m;
      break;
    }
  }
}

void ScanKernel::ScanVectorized(int64_t begin, int64_t end,
                                const Query& query, const SimdOps& ops,
                                QueryResult* out) const {
  out->scanned += end - begin;
  const std::vector<Predicate>& filters = query.filters;
  const int64_t b_first = begin / kScanBlockRows;
  const int64_t b_last = (end - 1) / kScanBlockRows;
  uint32_t sel[kScanBlockRows];
  for (int64_t b = b_first; b <= b_last; ++b) {
    const int64_t lo = std::max(begin, b * kScanBlockRows);
    const int64_t hi = std::min(end, (b + 1) * kScanBlockRows);
    // Zone-map triage: a block disjoint from any filter contributes
    // nothing; a block inside every filter needs no per-row checks.
    bool all_match = true;
    bool skip = false;
    if (!zones_->empty()) {
      for (const Predicate& p : filters) {
        const Value zmin = zones_->Min(p.dim, b);
        const Value zmax = zones_->Max(p.dim, b);
        if (zmin > p.hi || zmax < p.lo) {
          skip = true;
          break;
        }
        all_match = all_match && p.lo <= zmin && zmax <= p.hi;
      }
    } else {
      all_match = filters.empty();
    }
    if (skip) continue;
    if (all_match) {
      out->matched += hi - lo;
      AggregateRun(lo, hi, b, query, ops, out);
      continue;
    }
    const int n = BuildSelection(lo, hi, filters, ops, sel);
    if (n == 0) continue;
    out->matched += n;
    const Value* col = (*columns_)[query.agg_dim].data() + lo;
    switch (query.agg) {
      case AggKind::kCount:
        out->agg += n;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        out->agg += ops.sum_gather(col, sel, n);
        break;
      case AggKind::kMin: {
        Value m = ops.min_gather(col, sel, n);
        if (m < out->agg) out->agg = m;
        break;
      }
      case AggKind::kMax: {
        Value m = ops.max_gather(col, sel, n);
        if (m > out->agg) out->agg = m;
        break;
      }
    }
  }
}

// Exact ranges: every row matches, so only the aggregate remains. COUNT is
// arithmetic; SUM reads block sums for fully covered blocks (and only the
// ragged edges row-by-row); MIN/MAX read block extrema the same way.
void ScanKernel::ScanExactVectorized(int64_t begin, int64_t end,
                                     const Query& query, const SimdOps& ops,
                                     QueryResult* out) const {
  const int64_t n = end - begin;
  out->matched += n;
  if (query.agg == AggKind::kCount) {
    out->agg += n;
    return;
  }
  out->scanned += n;
  const int64_t b_first = begin / kScanBlockRows;
  const int64_t b_last = (end - 1) / kScanBlockRows;
  for (int64_t b = b_first; b <= b_last; ++b) {
    const int64_t lo = std::max(begin, b * kScanBlockRows);
    const int64_t hi = std::min(end, (b + 1) * kScanBlockRows);
    AggregateRun(lo, hi, b, query, ops, out);
  }
}

}  // namespace tsunami
