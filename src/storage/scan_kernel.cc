#include "src/storage/scan_kernel.h"

#include <algorithm>

#include "src/storage/scan_kernel_simd.h"

namespace tsunami {

namespace {

// ---- Aggregation over one block's codes -----------------------------------
//
// The compare+compress passes run on codes; only the surviving rows are
// materialized, and for narrow blocks materialization is a single
// frame-of-reference add folded into the accumulator algebraically:
// sum(ref + c_j) = n * ref + sum(c_j) (exact modulo 2^64, the same ring the
// scalar kernel accumulates in), min(ref + c_j) = ref + min(c_j) (exact —
// it reconstructs an original value), likewise max. Raw fallback blocks
// gather values directly through the tier's SIMD ops.

template <typename T>
int64_t SumCodesGather(const T* codes, Value ref, const uint32_t* sel,
                       int n) {
  uint64_t s = 0;
  for (int j = 0; j < n; ++j) s += codes[sel[j]];
  return static_cast<int64_t>(
      s + static_cast<uint64_t>(ref) * static_cast<uint64_t>(n));
}

template <typename T>
Value MinCodesGather(const T* codes, Value ref, const uint32_t* sel, int n) {
  T m = codes[sel[0]];
  for (int j = 1; j < n; ++j) m = codes[sel[j]] < m ? codes[sel[j]] : m;
  return static_cast<Value>(static_cast<uint64_t>(ref) + m);
}

template <typename T>
Value MaxCodesGather(const T* codes, Value ref, const uint32_t* sel, int n) {
  T m = codes[sel[0]];
  for (int j = 1; j < n; ++j) m = codes[sel[j]] > m ? codes[sel[j]] : m;
  return static_cast<Value>(static_cast<uint64_t>(ref) + m);
}

template <typename T>
int64_t SumCodesRange(const T* codes, Value ref, int64_t n) {
  uint64_t s = 0;
  for (int64_t i = 0; i < n; ++i) s += codes[i];
  return static_cast<int64_t>(s + static_cast<uint64_t>(ref) *
                                      static_cast<uint64_t>(n));
}

template <typename T>
Value MinCodesRange(const T* codes, Value ref, int64_t n) {
  T m = codes[0];
  for (int64_t i = 1; i < n; ++i) m = codes[i] < m ? codes[i] : m;
  return static_cast<Value>(static_cast<uint64_t>(ref) + m);
}

template <typename T>
Value MaxCodesRange(const T* codes, Value ref, int64_t n) {
  T m = codes[0];
  for (int64_t i = 1; i < n; ++i) m = codes[i] > m ? codes[i] : m;
  return static_cast<Value>(static_cast<uint64_t>(ref) + m);
}

// Width dispatchers: `view` is the block, `off` the first row's offset
// inside it. n >= 1 for min/max.

int64_t GatherSum(const EncodedColumn::BlockView& view, int64_t off,
                  const SimdOps& ops, const uint32_t* sel, int n) {
  switch (view.width) {
    case 1:
      return SumCodesGather(static_cast<const uint8_t*>(view.codes) + off,
                            view.ref, sel, n);
    case 2:
      return SumCodesGather(static_cast<const uint16_t*>(view.codes) + off,
                            view.ref, sel, n);
    case 4:
      return SumCodesGather(static_cast<const uint32_t*>(view.codes) + off,
                            view.ref, sel, n);
    default:
      return ops.sum_gather(static_cast<const Value*>(view.codes) + off, sel,
                            n);
  }
}

Value GatherMin(const EncodedColumn::BlockView& view, int64_t off,
                const SimdOps& ops, const uint32_t* sel, int n) {
  switch (view.width) {
    case 1:
      return MinCodesGather(static_cast<const uint8_t*>(view.codes) + off,
                            view.ref, sel, n);
    case 2:
      return MinCodesGather(static_cast<const uint16_t*>(view.codes) + off,
                            view.ref, sel, n);
    case 4:
      return MinCodesGather(static_cast<const uint32_t*>(view.codes) + off,
                            view.ref, sel, n);
    default:
      return ops.min_gather(static_cast<const Value*>(view.codes) + off, sel,
                            n);
  }
}

Value GatherMax(const EncodedColumn::BlockView& view, int64_t off,
                const SimdOps& ops, const uint32_t* sel, int n) {
  switch (view.width) {
    case 1:
      return MaxCodesGather(static_cast<const uint8_t*>(view.codes) + off,
                            view.ref, sel, n);
    case 2:
      return MaxCodesGather(static_cast<const uint16_t*>(view.codes) + off,
                            view.ref, sel, n);
    case 4:
      return MaxCodesGather(static_cast<const uint32_t*>(view.codes) + off,
                            view.ref, sel, n);
    default:
      return ops.max_gather(static_cast<const Value*>(view.codes) + off, sel,
                            n);
  }
}

int64_t RangeSum(const EncodedColumn::BlockView& view, int64_t off,
                 const SimdOps& ops, int64_t n) {
  switch (view.width) {
    case 1:
      return SumCodesRange(static_cast<const uint8_t*>(view.codes) + off,
                           view.ref, n);
    case 2:
      return SumCodesRange(static_cast<const uint16_t*>(view.codes) + off,
                           view.ref, n);
    case 4:
      return SumCodesRange(static_cast<const uint32_t*>(view.codes) + off,
                           view.ref, n);
    default:
      return ops.sum_range(static_cast<const Value*>(view.codes) + off, n);
  }
}

Value RangeMin(const EncodedColumn::BlockView& view, int64_t off,
               const SimdOps& ops, int64_t n) {
  switch (view.width) {
    case 1:
      return MinCodesRange(static_cast<const uint8_t*>(view.codes) + off,
                           view.ref, n);
    case 2:
      return MinCodesRange(static_cast<const uint16_t*>(view.codes) + off,
                           view.ref, n);
    case 4:
      return MinCodesRange(static_cast<const uint32_t*>(view.codes) + off,
                           view.ref, n);
    default:
      return ops.min_range(static_cast<const Value*>(view.codes) + off, n);
  }
}

Value RangeMax(const EncodedColumn::BlockView& view, int64_t off,
               const SimdOps& ops, int64_t n) {
  switch (view.width) {
    case 1:
      return MaxCodesRange(static_cast<const uint8_t*>(view.codes) + off,
                           view.ref, n);
    case 2:
      return MaxCodesRange(static_cast<const uint16_t*>(view.codes) + off,
                           view.ref, n);
    case 4:
      return MaxCodesRange(static_cast<const uint32_t*>(view.codes) + off,
                           view.ref, n);
    default:
      return ops.max_range(static_cast<const Value*>(view.codes) + off, n);
  }
}

}  // namespace

void ZoneMaps::Build(const std::vector<std::vector<Value>>& columns) {
  Clear();
  if (columns.empty() || columns[0].empty()) return;
  const SimdOps& ops = OpsForTier(SimdTier::kAuto);
  const int dims = static_cast<int>(columns.size());
  const int64_t rows = static_cast<int64_t>(columns[0].size());
  num_blocks_ = (rows + kScanBlockRows - 1) / kScanBlockRows;
  min_.assign(dims, {});
  max_.assign(dims, {});
  sum_.assign(dims, {});
  for (int d = 0; d < dims; ++d) {
    min_[d].resize(num_blocks_);
    max_[d].resize(num_blocks_);
    sum_[d].resize(num_blocks_);
    const Value* col = columns[d].data();
    for (int64_t b = 0; b < num_blocks_; ++b) {
      int64_t lo = b * kScanBlockRows;
      int64_t hi = std::min(rows, lo + kScanBlockRows);
      ops.block_stats(col + lo, hi - lo, &min_[d][b], &max_[d][b],
                      &sum_[d][b]);
    }
  }
}

void ZoneMaps::Build(const std::vector<EncodedColumn>& columns) {
  Clear();
  if (columns.empty() || columns[0].rows() == 0) return;
  const SimdOps& ops = OpsForTier(SimdTier::kAuto);
  const int dims = static_cast<int>(columns.size());
  const int64_t rows = columns[0].rows();
  num_blocks_ = (rows + kScanBlockRows - 1) / kScanBlockRows;
  min_.assign(dims, {});
  max_.assign(dims, {});
  sum_.assign(dims, {});
  Value scratch[kScanBlockRows];
  for (int d = 0; d < dims; ++d) {
    min_[d].resize(num_blocks_);
    max_[d].resize(num_blocks_);
    sum_[d].resize(num_blocks_);
    for (int64_t b = 0; b < num_blocks_; ++b) {
      int64_t lo = b * kScanBlockRows;
      int64_t hi = std::min(rows, lo + kScanBlockRows);
      columns[d].Decode(lo, hi, scratch);
      ops.block_stats(scratch, hi - lo, &min_[d][b], &max_[d][b],
                      &sum_[d][b]);
    }
  }
}

void ZoneMaps::UpdateBlock(int dim, int64_t block, const Value* values,
                           int64_t n) {
  const SimdOps& ops = OpsForTier(SimdTier::kAuto);
  ops.block_stats(values, n, &min_[dim][block], &max_[dim][block],
                  &sum_[dim][block]);
}

void ZoneMaps::Clear() {
  num_blocks_ = 0;
  min_.clear();
  max_.clear();
  sum_.clear();
}

int64_t ZoneMaps::SizeBytes() const {
  return num_blocks_ * static_cast<int64_t>(min_.size()) *
         (2 * sizeof(Value) + sizeof(int64_t));
}

void ScanKernel::Scan(int64_t begin, int64_t end, const Query& query,
                      bool exact, QueryResult* out,
                      const ScanOptions& options) const {
  if (begin >= end) return;
  if (options.mode == ScanMode::kScalar) {
    ScanScalar(begin, end, query, exact, out);
    return;
  }
  // kVectorized is pinned to the scalar-branchless ops; kSimd resolves the
  // requested tier (kAuto -> best supported) through runtime dispatch.
  const SimdOps& ops = options.mode == ScanMode::kSimd
                           ? OpsForTier(options.tier)
                           : ScalarSimdOps();
  if (exact) {
    ScanExactVectorized(begin, end, query, ops, out);
  } else {
    ScanVectorized(begin, end, query, ops, out);
  }
}

void ScanKernel::ScanBatch(std::span<const RangeTask> tasks,
                           const Query& query, QueryResult* out,
                           const ScanOptions& options) const {
  if (options.stop_probe == nullptr) {
    for (const RangeTask& task : tasks) {
      Scan(task.begin, task.end, query, task.exact, out, options);
    }
    return;
  }
  // Cancellable batch: probe between tasks and, inside oversized tasks,
  // between block-aligned kScanStopProbeRows slices, so a deadline or
  // cancel flag lands mid-scan instead of after the largest range. The
  // accumulation is a left-to-right fold over the same rows, so an
  // uncancelled probed batch is bit-identical to the unprobed loop above.
  for (const RangeTask& task : tasks) {
    int64_t begin = task.begin;
    while (begin < task.end) {
      if (options.ShouldStop()) return;
      int64_t end = task.end;
      if (end - begin > kScanStopProbeRows) {
        // Slice on a block boundary so full-block zone-map paths (and the
        // exact-range SUM-from-block-sums path) see whole blocks.
        end = begin + kScanStopProbeRows;
        end -= end % kScanBlockRows;
        if (end <= begin) end = std::min(task.end, begin + kScanBlockRows);
      }
      Scan(begin, end, query, task.exact, out, options);
      begin = end;
    }
  }
}

// The pre-kernel reference path: row-at-a-time with early exit. Kept
// verbatim (modulo the multi-aggregate loop, which runs once for
// single-aggregate queries, and per-row decode through EncodedColumn::Get)
// so ScanMode::kScalar A/Bs against exactly the old behavior.
void ScanKernel::ScanScalar(int64_t begin, int64_t end, const Query& query,
                            bool exact, QueryResult* out) const {
  const std::vector<EncodedColumn>& columns = *columns_;
  const int num_aggs = query.num_aggs();
  if (exact) {
    // Exact ranges skip per-value checks entirely; COUNT touches no data
    // (so it needs no integrity gate and stays exact even over a
    // quarantined store).
    const int64_t n = end - begin;
    bool touches_data = false;
    for (int a = 0; a < num_aggs; ++a) {
      touches_data = touches_data || query.agg_spec(a).op != AggKind::kCount;
    }
    if (!touches_data) {
      out->matched += n;
      for (int a = 0; a < num_aggs; ++a) *out->agg_accumulator(a) += n;
      return;
    }
    out->scanned += n;
    for (int64_t lo = begin; lo < end;) {
      const int64_t b = lo / kScanBlockRows;
      const int64_t hi = std::min(end, (b + 1) * kScanBlockRows);
      if (!BlockReadable(b, query, /*exact=*/true, out)) {
        out->scanned -= hi - lo;  // Skipped, never read: not scanned.
        lo = hi;
        continue;
      }
      const int64_t seg = hi - lo;
      out->matched += seg;
      for (int a = 0; a < num_aggs; ++a) {
        const AggregateSpec spec = query.agg_spec(a);
        int64_t* acc = out->agg_accumulator(a);
        if (spec.op == AggKind::kCount) {
          *acc += seg;
          continue;
        }
        const EncodedColumn& agg_col = columns[spec.column];
        for (int64_t r = lo; r < hi; ++r) {
          AccumulateAgg(spec.op, agg_col.Get(r), acc);
        }
      }
      lo = hi;
    }
    return;
  }
  out->scanned += end - begin;
  const std::vector<Predicate>& filters = query.filters;
  for (int64_t lo = begin; lo < end;) {
    const int64_t b = lo / kScanBlockRows;
    const int64_t hi = std::min(end, (b + 1) * kScanBlockRows);
    if (!BlockReadable(b, query, /*exact=*/false, out)) {
      out->scanned -= hi - lo;  // Skipped, never read: not scanned.
      lo = hi;
      continue;
    }
    for (int64_t r = lo; r < hi; ++r) {
      bool ok = true;
      for (const Predicate& p : filters) {
        Value v = columns[p.dim].Get(r);
        if (v < p.lo || v > p.hi) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      ++out->matched;
      for (int a = 0; a < num_aggs; ++a) {
        const AggregateSpec spec = query.agg_spec(a);
        AccumulateAgg(
            spec.op,
            spec.op == AggKind::kCount ? 0 : columns[spec.column].Get(r),
            out->agg_accumulator(a));
      }
    }
    lo = hi;
  }
}

bool ScanKernel::BlockReadable(int64_t block, const Query& query, bool exact,
                               QueryResult* out) const {
  const std::vector<EncodedColumn>& columns = *columns_;
  // No short-circuit: every involved column advances its lazy verification
  // even when an earlier one is already quarantined.
  bool ok = true;
  if (!exact) {
    for (const Predicate& p : query.filters) {
      ok = columns[p.dim].EnsureReadable(block) && ok;
    }
  }
  for (int a = 0; a < query.num_aggs(); ++a) {
    const AggregateSpec spec = query.agg_spec(a);
    if (spec.op != AggKind::kCount) {
      ok = columns[spec.column].EnsureReadable(block) && ok;
    }
  }
  if (!ok) {
    out->degraded = true;
    ++out->quarantined_blocks;
  }
  return ok;
}

int ScanKernel::BuildSelection(int64_t begin, int64_t end, int64_t block,
                               const std::vector<Predicate>& filters,
                               const SimdOps& ops, uint32_t* sel) const {
  const std::vector<EncodedColumn>& columns = *columns_;
  const int count = static_cast<int>(end - begin);
  const int64_t off = begin - block * kScanBlockRows;
  // First effective predicate compacts [0, count) into sel; later ones
  // compact the survivors in place. All passes are compare+compress at the
  // block's code width, lane-parallel under the SIMD tiers. n == -1 means
  // no pass has run yet (every predicate so far covered the whole block's
  // code domain).
  int n = -1;
  for (const Predicate& p : filters) {
    const EncodedColumn::BlockView view = columns[p.dim].block(block);
    if (view.width == 8) {
      // Raw fallback block: compare values directly, untranslated.
      const Value* col = static_cast<const Value*>(view.codes) + off;
      n = n < 0 ? ops.first_pass(col, count, p.lo, p.hi, sel)
                : ops.refine_pass(col, sel, n, p.lo, p.hi);
    } else {
      const CodeRange cr = TranslateToCodeSpace(p.lo, p.hi, view.ref,
                                                CodeDomainMax(view.width));
      if (cr.state == CodeRange::kEmpty) return 0;
      if (cr.state == CodeRange::kAll) continue;  // Pass is the identity.
      switch (view.width) {
        case 1: {
          const uint8_t* c = static_cast<const uint8_t*>(view.codes) + off;
          n = n < 0 ? ops.first_pass_u8(c, count, static_cast<uint8_t>(cr.lo),
                                        static_cast<uint8_t>(cr.hi), sel)
                    : ops.refine_pass_u8(c, sel, n,
                                         static_cast<uint8_t>(cr.lo),
                                         static_cast<uint8_t>(cr.hi));
          break;
        }
        case 2: {
          const uint16_t* c = static_cast<const uint16_t*>(view.codes) + off;
          n = n < 0
                  ? ops.first_pass_u16(c, count, static_cast<uint16_t>(cr.lo),
                                       static_cast<uint16_t>(cr.hi), sel)
                  : ops.refine_pass_u16(c, sel, n,
                                        static_cast<uint16_t>(cr.lo),
                                        static_cast<uint16_t>(cr.hi));
          break;
        }
        default: {
          const uint32_t* c = static_cast<const uint32_t*>(view.codes) + off;
          n = n < 0
                  ? ops.first_pass_u32(c, count, static_cast<uint32_t>(cr.lo),
                                       static_cast<uint32_t>(cr.hi), sel)
                  : ops.refine_pass_u32(c, sel, n,
                                        static_cast<uint32_t>(cr.lo),
                                        static_cast<uint32_t>(cr.hi));
          break;
        }
      }
    }
    if (n == 0) return 0;
  }
  if (n < 0) {
    // Every predicate covered the whole code domain: identity selection.
    // (With zone maps present this block would have been aggregated as
    // all-match before reaching here; kept for the no-zones path.)
    for (int i = 0; i < count; ++i) sel[i] = static_cast<uint32_t>(i);
    n = count;
  }
  return n;
}

void ScanKernel::AggregateRun(int64_t begin, int64_t end, int64_t block,
                              const Query& query, const SimdOps& ops,
                              QueryResult* out) const {
  const int num_aggs = query.num_aggs();
  if (num_aggs == 1 && query.agg_spec(0).op == AggKind::kCount) {
    out->agg += end - begin;
    return;
  }
  const bool full = !zones_->empty() && CoversBlock(begin, end, block);
  const int64_t off = begin - block * kScanBlockRows;
  for (int a = 0; a < num_aggs; ++a) {
    const AggregateSpec spec = query.agg_spec(a);
    int64_t* acc = out->agg_accumulator(a);
    if (spec.op == AggKind::kCount) {
      *acc += end - begin;
      continue;
    }
    const EncodedColumn::BlockView view =
        (*columns_)[spec.column].block(block);
    switch (spec.op) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        *acc += full ? zones_->Sum(spec.column, block)
                     : RangeSum(view, off, ops, end - begin);
        break;
      case AggKind::kMin: {
        Value m = full ? zones_->Min(spec.column, block)
                       : RangeMin(view, off, ops, end - begin);
        if (m < *acc) *acc = m;
        break;
      }
      case AggKind::kMax: {
        Value m = full ? zones_->Max(spec.column, block)
                       : RangeMax(view, off, ops, end - begin);
        if (m > *acc) *acc = m;
        break;
      }
    }
  }
}

void ScanKernel::ScanVectorized(int64_t begin, int64_t end,
                                const Query& query, const SimdOps& ops,
                                QueryResult* out) const {
  out->scanned += end - begin;
  const std::vector<Predicate>& filters = query.filters;
  const int64_t b_first = begin / kScanBlockRows;
  const int64_t b_last = (end - 1) / kScanBlockRows;
  uint32_t sel[kScanBlockRows];
  for (int64_t b = b_first; b <= b_last; ++b) {
    const int64_t lo = std::max(begin, b * kScanBlockRows);
    const int64_t hi = std::min(end, (b + 1) * kScanBlockRows);
    // Integrity gate before zone triage: a quarantined block's zone entries
    // may themselves derive from the corrupt bytes (Deserialize rebuilds
    // zones by decoding), so they cannot be trusted even to skip it.
    if (!BlockReadable(b, query, /*exact=*/false, out)) {
      out->scanned -= hi - lo;  // Skipped, never read: not scanned.
      continue;
    }
    // Zone-map triage: a block disjoint from any filter contributes
    // nothing; a block inside every filter needs no per-row checks.
    bool all_match = true;
    bool skip = false;
    if (!zones_->empty()) {
      for (const Predicate& p : filters) {
        const Value zmin = zones_->Min(p.dim, b);
        const Value zmax = zones_->Max(p.dim, b);
        if (zmin > p.hi || zmax < p.lo) {
          skip = true;
          break;
        }
        all_match = all_match && p.lo <= zmin && zmax <= p.hi;
      }
    } else {
      all_match = filters.empty();
    }
    if (skip) continue;
    if (all_match) {
      out->matched += hi - lo;
      AggregateRun(lo, hi, b, query, ops, out);
      continue;
    }
    const int n = BuildSelection(lo, hi, b, filters, ops, sel);
    if (n == 0) continue;
    out->matched += n;
    // One selection vector feeds every aggregate: the compare+compress
    // passes above run once per block regardless of how many aggregates
    // the query computes; only the gather tails repeat per aggregate.
    const int64_t off = lo - b * kScanBlockRows;
    for (int a = 0; a < query.num_aggs(); ++a) {
      const AggregateSpec spec = query.agg_spec(a);
      int64_t* acc = out->agg_accumulator(a);
      if (spec.op == AggKind::kCount) {
        *acc += n;
        continue;
      }
      const EncodedColumn::BlockView view = (*columns_)[spec.column].block(b);
      switch (spec.op) {
        case AggKind::kCount:
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          *acc += GatherSum(view, off, ops, sel, n);
          break;
        case AggKind::kMin: {
          Value m = GatherMin(view, off, ops, sel, n);
          if (m < *acc) *acc = m;
          break;
        }
        case AggKind::kMax: {
          Value m = GatherMax(view, off, ops, sel, n);
          if (m > *acc) *acc = m;
          break;
        }
      }
    }
  }
}

// Exact ranges: every row matches, so only the aggregate remains. COUNT is
// arithmetic; SUM reads block sums for fully covered blocks (and only the
// ragged edges through the decode-and-fold tail); MIN/MAX read block
// extrema the same way.
void ScanKernel::ScanExactVectorized(int64_t begin, int64_t end,
                                     const Query& query, const SimdOps& ops,
                                     QueryResult* out) const {
  const int64_t n = end - begin;
  bool all_count = true;
  for (int a = 0; a < query.num_aggs(); ++a) {
    all_count = all_count && query.agg_spec(a).op == AggKind::kCount;
  }
  if (all_count) {
    // Pure counting touches no column bytes: exact even over a quarantined
    // store, so no integrity gate (matching ScanScalar's exact path).
    out->matched += n;
    for (int a = 0; a < query.num_aggs(); ++a) *out->agg_accumulator(a) += n;
    return;
  }
  out->scanned += n;
  const int64_t b_first = begin / kScanBlockRows;
  const int64_t b_last = (end - 1) / kScanBlockRows;
  for (int64_t b = b_first; b <= b_last; ++b) {
    const int64_t lo = std::max(begin, b * kScanBlockRows);
    const int64_t hi = std::min(end, (b + 1) * kScanBlockRows);
    if (!BlockReadable(b, query, /*exact=*/true, out)) {
      out->scanned -= hi - lo;  // Skipped, never read: not scanned.
      continue;
    }
    out->matched += hi - lo;
    AggregateRun(lo, hi, b, query, ops, out);
  }
}

}  // namespace tsunami
