// Vectorized block-based scan kernel (the in-cell half of query execution).
// The column store is divided into fixed-size blocks of kScanBlockRows rows;
// per block and per dimension a zone map records min/max/sum, built once at
// cluster time. Scans process one block at a time, column-at-a-time, into a
// selection vector with branchless predicate evaluation; zone maps let whole
// blocks be skipped (disjoint from a filter) or aggregated without per-row
// checks (fully covered by every filter, with SUM served straight from the
// block sums).
//
// The kernel's inner loops (predicate compare+compress, selection-driven
// aggregation, run folds, zone-map builds) come in three tiers: the
// row-at-a-time reference path (ScanMode::kScalar), the scalar-branchless
// block kernel (kVectorized), and lane-parallel SIMD (kSimd — AVX-512,
// AVX2, or NEON, chosen at startup by runtime CPU dispatch, falling back
// to the branchless loops on unsupported hardware; see simd_dispatch.h).
// All tiers produce bit-identical QueryResults; ScanOptions can force any
// tier for tests and benchmarks.
#ifndef TSUNAMI_STORAGE_SCAN_KERNEL_H_
#define TSUNAMI_STORAGE_SCAN_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/storage/encoded_column.h"
#include "src/storage/simd_dispatch.h"

namespace tsunami {

struct SimdOps;

// kScanBlockRows (rows per zone-map / codec block) lives in
// encoded_column.h, which this header re-exports: the zone maps and the
// per-block codecs share one block grid by construction.

enum class ScanMode {
  kScalar,      // Row-at-a-time loop with early exit (the pre-kernel path).
  kVectorized,  // Block-at-a-time selection-vector kernel with zone maps.
  kSimd,        // kVectorized with SIMD inner loops (runtime-dispatched).
};

/// Rows between cooperative-stop probes inside a batched scan: frequent
/// enough that a deadline lands within tens of microseconds even on one
/// giant range, rare enough that the probe (a clock read at worst) is noise.
inline constexpr int64_t kScanStopProbeRows = 16 * 1024;

/// Per-scan execution options. Defaults to the SIMD kernel at the best
/// runtime-supported tier; `tier` pins a specific instruction set when
/// `mode` is kSimd (an unsupported tier degrades to the scalar ops, which
/// is exactly the kVectorized behavior).
///
/// `stop_probe` is the cooperative-cancellation seam: when non-null,
/// ScanBatch slices ranges at block-aligned kScanStopProbeRows boundaries
/// and calls `stop_probe(stop_arg)` between slices, abandoning the rest of
/// the batch once it returns true — so even one giant scan can be cancelled
/// mid-flight. Kept as a raw function pointer + argument (not std::function)
/// so ScanOptions stays trivially copyable; the slicing is block-aligned and
/// integer aggregation is associative, so a probed scan that is never
/// stopped stays bit-identical to an unprobed one.
struct ScanOptions {
  static constexpr ScanMode kScalar = ScanMode::kScalar;
  static constexpr ScanMode kVectorized = ScanMode::kVectorized;
  static constexpr ScanMode kSimd = ScanMode::kSimd;

  ScanMode mode = ScanMode::kSimd;
  SimdTier tier = SimdTier::kAuto;
  bool (*stop_probe)(const void*) = nullptr;  // Borrowed; null = never stop.
  const void* stop_arg = nullptr;

  bool ShouldStop() const {
    return stop_probe != nullptr && stop_probe(stop_arg);
  }
};

/// One physical row range an index has decided must be scanned. `exact`
/// means every row in [begin, end) is known to match the query's filters,
/// so per-row checks can be skipped (§6.1's exact-range optimization).
struct RangeTask {
  int64_t begin = 0;
  int64_t end = 0;  // Exclusive.
  bool exact = false;
};

/// Per-block min/max/sum per dimension over a set of columns. Blocks are
/// aligned to absolute row index (block b covers rows
/// [b * kScanBlockRows, (b+1) * kScanBlockRows), the last block truncated),
/// so any caller-supplied range maps directly onto blocks.
class ZoneMaps {
 public:
  /// (Re)builds the maps; O(rows * dims), SIMD-accelerated when the CPU
  /// supports it (the per-block stats are order-insensitive, so every tier
  /// produces identical maps). Called at cluster time.
  void Build(const std::vector<std::vector<Value>>& columns);
  /// Rebuild from encoded columns (the Deserialize path): each block is
  /// decoded into a scratch buffer first, so the stats are identical to a
  /// raw-column build of the same data.
  void Build(const std::vector<EncodedColumn>& columns);
  void Clear();

  bool empty() const { return num_blocks_ == 0; }
  int64_t num_blocks() const { return num_blocks_; }
  Value Min(int dim, int64_t block) const { return min_[dim][block]; }
  Value Max(int dim, int64_t block) const { return max_[dim][block]; }
  int64_t Sum(int dim, int64_t block) const { return sum_[dim][block]; }

  /// Recomputes one block's stats for one dimension from `values` (the
  /// block's rows, in order) — the block-repair path.
  void UpdateBlock(int dim, int64_t block, const Value* values, int64_t n);

  int64_t SizeBytes() const;

 private:
  int64_t num_blocks_ = 0;
  std::vector<std::vector<Value>> min_;    // [dim][block]
  std::vector<std::vector<Value>> max_;    // [dim][block]
  std::vector<std::vector<int64_t>> sum_;  // [dim][block]
};

/// A non-owning view over a table's encoded columns plus its zone maps that
/// executes scans. Construction is two pointers; ColumnStore hands one out
/// per call. Predicates are evaluated on the per-block codes (bounds
/// translated into code space once per block, with empty/full fast-outs);
/// values are materialized only for the surviving selection vector, via a
/// frame-of-reference add — or gathered raw for fallback blocks.
///
/// All kernels accumulate into the same QueryResult fields with identical
/// semantics: `scanned` counts the rows the range was responsible for (not
/// the rows actually touched after block skipping), so results are
/// bit-for-bit comparable across modes, tiers, and codecs.
class ScanKernel {
 public:
  ScanKernel(const std::vector<EncodedColumn>& columns, const ZoneMaps& zones)
      : columns_(&columns),
        zones_(&zones),
        num_rows_(columns.empty() ? 0 : columns[0].rows()) {}

  /// Scans [begin, end), accumulating every aggregate of the query over
  /// matching rows into `out` (does not touch out->cell_ranges). Multi-
  /// aggregate queries share one compare+compress pass; only the aggregate
  /// tails repeat, so SUM+COUNT+MIN+MAX cost one pass over the predicates.
  void Scan(int64_t begin, int64_t end, const Query& query, bool exact,
            QueryResult* out, const ScanOptions& options = {}) const;

  /// Scans every task in order into one accumulator. The batch seam: index
  /// code plans all candidate ranges, then submits them in one call.
  void ScanBatch(std::span<const RangeTask> tasks, const Query& query,
                 QueryResult* out, const ScanOptions& options = {}) const;

 private:
  void ScanScalar(int64_t begin, int64_t end, const Query& query, bool exact,
                  QueryResult* out) const;
  void ScanVectorized(int64_t begin, int64_t end, const Query& query,
                      const SimdOps& ops, QueryResult* out) const;
  void ScanExactVectorized(int64_t begin, int64_t end, const Query& query,
                           const SimdOps& ops, QueryResult* out) const;

  // Integrity gate, shared by all three scan modes so they skip the same
  // blocks: true when every column this query must read — filter dims for
  // non-exact ranges, plus non-COUNT aggregate columns — is readable
  // (checksum-verified, not quarantined) in `block`. On failure the block
  // is counted into out->quarantined_blocks and the result flagged
  // degraded; the caller skips the block. Columns the query never reads
  // (e.g. everything, for an exact COUNT) are not checked, so zone-map- or
  // count-only answers stay exact even over a quarantined store.
  bool BlockReadable(int64_t block, const Query& query, bool exact,
                     QueryResult* out) const;

  // Fills `sel` with the block-relative indices (offsets from `begin`) of
  // rows in [begin, end) matching every filter; returns the match count.
  // [begin, end) must lie inside block `block`. Each predicate runs at the
  // block's code width with bounds translated into code space; a predicate
  // empty after translation returns 0 without reading a code, and one that
  // covers the whole code domain skips its pass. Requires a non-empty
  // filter list and end - begin <= kScanBlockRows.
  int BuildSelection(int64_t begin, int64_t end, int64_t block,
                     const std::vector<Predicate>& filters, const SimdOps& ops,
                     uint32_t* sel) const;

  // Folds rows [begin, end) — all known to match — inside block `block`
  // into every aggregate accumulator, using zone-map sums/extrema when the
  // rows span the full block. Leaves matched/scanned to the caller.
  void AggregateRun(int64_t begin, int64_t end, int64_t block,
                    const Query& query, const SimdOps& ops,
                    QueryResult* out) const;

  // True when [begin, end) covers every row of `block`.
  bool CoversBlock(int64_t begin, int64_t end, int64_t block) const {
    int64_t block_begin = block * kScanBlockRows;
    int64_t block_end = std::min(num_rows_, block_begin + kScanBlockRows);
    return begin <= block_begin && end >= block_end;
  }

  const std::vector<EncodedColumn>* columns_;
  const ZoneMaps* zones_;
  int64_t num_rows_;
};

}  // namespace tsunami

#endif  // TSUNAMI_STORAGE_SCAN_KERNEL_H_
