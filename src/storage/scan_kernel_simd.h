// The scan kernel's SIMD seam: every data-parallel inner loop the kernel
// runs (predicate compare+compress into the selection vector, selection-
// driven aggregation tails, contiguous-run folds, zone-map block stats) is
// reached through this table of function pointers, so one kernel body
// serves every instruction-set tier. Each tier lives in its own
// translation unit compiled with that tier's arch flags; a tier that was
// not compiled (wrong architecture, TSUNAMI_DISABLE_SIMD) exposes a null
// accessor and the dispatcher falls back to the scalar table.
//
// Every implementation must be bit-for-bit equivalent to the scalar table:
// int64 addition is associative modulo 2^64 and min/max are associative,
// so lane-parallel partials reduce to identical results in any order.
#ifndef TSUNAMI_STORAGE_SCAN_KERNEL_SIMD_H_
#define TSUNAMI_STORAGE_SCAN_KERNEL_SIMD_H_

#include <cstdint>

#include "src/common/types.h"

namespace tsunami {

/// Inner-loop implementations for one instruction-set tier. All `col`
/// pointers are unaligned; `n == 0` is legal everywhere except the
/// min/max/block entry points, which require at least one row. A
/// count-sized `sel` buffer suffices everywhere: every tier's compress
/// writes at indices bounded by its read cursor, so stores never pass
/// the end (the AVX2 full-vector store's garbage lanes land strictly
/// below `count` and are overwritten or never exposed).
struct SimdOps {
  const char* name;

  /// Writes the i in [0, count) with lo <= col[i] <= hi into sel (ascending)
  /// and returns how many.
  int (*first_pass)(const Value* col, int count, Value lo, Value hi,
                    uint32_t* sel);

  /// Compacts sel[0, n) in place, keeping the i with lo <= col[i] <= hi
  /// (order preserved); returns the surviving count.
  int (*refine_pass)(const Value* col, uint32_t* sel, int n, Value lo,
                     Value hi);

  /// Width-parameterized variants of the two predicate passes over
  /// FOR-encoded code arrays (see encoded_column.h): same contract as
  /// first_pass / refine_pass but the column is uint8/16/32 codes and the
  /// bounds are unsigned, already translated into code space
  /// (TranslateToCodeSpace) with lo <= hi. Narrower lanes pack 2-8x more
  /// values per vector, which is the whole point of encoded execution.
  int (*first_pass_u8)(const uint8_t* codes, int count, uint8_t lo,
                       uint8_t hi, uint32_t* sel);
  int (*first_pass_u16)(const uint16_t* codes, int count, uint16_t lo,
                        uint16_t hi, uint32_t* sel);
  int (*first_pass_u32)(const uint32_t* codes, int count, uint32_t lo,
                        uint32_t hi, uint32_t* sel);
  int (*refine_pass_u8)(const uint8_t* codes, uint32_t* sel, int n,
                        uint8_t lo, uint8_t hi);
  int (*refine_pass_u16)(const uint16_t* codes, uint32_t* sel, int n,
                         uint16_t lo, uint16_t hi);
  int (*refine_pass_u32)(const uint32_t* codes, uint32_t* sel, int n,
                         uint32_t lo, uint32_t hi);

  /// Aggregates col[sel[j]] over j in [0, n). min/max require n >= 1.
  int64_t (*sum_gather)(const Value* col, const uint32_t* sel, int n);
  Value (*min_gather)(const Value* col, const uint32_t* sel, int n);
  Value (*max_gather)(const Value* col, const uint32_t* sel, int n);

  /// Aggregates the contiguous run col[0, n). min/max require n >= 1.
  int64_t (*sum_range)(const Value* col, int64_t n);
  Value (*min_range)(const Value* col, int64_t n);
  Value (*max_range)(const Value* col, int64_t n);

  /// One-pass min/max/sum over col[0, n) for ZoneMaps::Build; n >= 1.
  void (*block_stats)(const Value* col, int64_t n, Value* mn, Value* mx,
                      int64_t* sum);
};

/// The portable reference table (identical to the PR-1 scalar-branchless
/// loops); always available.
const SimdOps& ScalarSimdOps();

/// The individual scalar reference loops behind ScalarSimdOps, exposed so
/// per-tier tables can point at them for passes they do not accelerate
/// (e.g. NEON's gathered passes) instead of keeping drift-prone copies.
namespace scalar_ops {
int FirstPass(const Value* col, int count, Value lo, Value hi, uint32_t* sel);
int RefinePass(const Value* col, uint32_t* sel, int n, Value lo, Value hi);
int FirstPassU8(const uint8_t* codes, int count, uint8_t lo, uint8_t hi,
                uint32_t* sel);
int FirstPassU16(const uint16_t* codes, int count, uint16_t lo, uint16_t hi,
                 uint32_t* sel);
int FirstPassU32(const uint32_t* codes, int count, uint32_t lo, uint32_t hi,
                 uint32_t* sel);
int RefinePassU8(const uint8_t* codes, uint32_t* sel, int n, uint8_t lo,
                 uint8_t hi);
int RefinePassU16(const uint16_t* codes, uint32_t* sel, int n, uint16_t lo,
                  uint16_t hi);
int RefinePassU32(const uint32_t* codes, uint32_t* sel, int n, uint32_t lo,
                  uint32_t hi);
int64_t SumGather(const Value* col, const uint32_t* sel, int n);
Value MinGather(const Value* col, const uint32_t* sel, int n);
Value MaxGather(const Value* col, const uint32_t* sel, int n);
int64_t SumRange(const Value* col, int64_t n);
Value MinRange(const Value* col, int64_t n);
Value MaxRange(const Value* col, int64_t n);
void BlockStats(const Value* col, int64_t n, Value* mn, Value* mx,
                int64_t* sum);
}  // namespace scalar_ops

/// Per-tier tables; null when the tier was not compiled into this binary.
/// Callers must additionally check CPU support (SimdTierSupported) before
/// using a non-null x86 table.
const SimdOps* Avx2SimdOps();
const SimdOps* Avx512SimdOps();
const SimdOps* NeonSimdOps();

}  // namespace tsunami

#endif  // TSUNAMI_STORAGE_SCAN_KERNEL_SIMD_H_
