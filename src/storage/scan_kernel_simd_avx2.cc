// AVX2 tier: 4 x int64 lanes on raw values, and 32/16/8 x uint8/16/32
// lanes on FOR-encoded code blocks. Range predicates become two compares
// (signed for values; unsigned min/max + equality for codes) whose lane
// masks are folded to a movemask; the matching lanes' selection indices
// are compressed with a 16-entry byte-shuffle lookup table, one 4-index
// nibble group at a time (there is no integer compress instruction below
// AVX-512). A zero compare mask — the common case in selective scans —
// skips the whole emit, so the narrow passes track the smaller code
// footprint. Selection-driven aggregation uses vpgatherqq on the 32-bit
// selection indices. This TU is the only place compiled with -mavx2 (see
// CMakeLists.txt); everything here is reached strictly behind the runtime
// CPUID check in simd_dispatch.cc.
#include "src/storage/scan_kernel_simd.h"

#if defined(__AVX2__) && !defined(TSUNAMI_DISABLE_SIMD)

#include <immintrin.h>

namespace tsunami {

namespace {

// kCompress4[mask] is the _mm_shuffle_epi8 control that packs the uint32
// lanes whose mask bit is set to the front, in ascending lane order. The
// unused tail bytes are 0x80 (shuffle emits zeros there); those garbage
// lanes land below the next write cursor — the store at sel + n ends at
// sel[n + 3] <= sel[i + 3], inside the vector window just consumed — so
// they are overwritten or sit past the final count, never exposed.
#define TSUNAMI_LANE(x) 4 * (x), 4 * (x) + 1, 4 * (x) + 2, 4 * (x) + 3
#define TSUNAMI_ZERO 0x80, 0x80, 0x80, 0x80
alignas(16) constexpr uint8_t kCompress4[16][16] = {
    {TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(1), TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(1), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(2), TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(2), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(1), TSUNAMI_LANE(2), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(1), TSUNAMI_LANE(2), TSUNAMI_ZERO},
    {TSUNAMI_LANE(3), TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(3), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(1), TSUNAMI_LANE(3), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(1), TSUNAMI_LANE(3), TSUNAMI_ZERO},
    {TSUNAMI_LANE(2), TSUNAMI_LANE(3), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(2), TSUNAMI_LANE(3), TSUNAMI_ZERO},
    {TSUNAMI_LANE(1), TSUNAMI_LANE(2), TSUNAMI_LANE(3), TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(1), TSUNAMI_LANE(2), TSUNAMI_LANE(3)},
};
#undef TSUNAMI_LANE
#undef TSUNAMI_ZERO

inline const long long* AsLL(const Value* p) {
  return reinterpret_cast<const long long*>(p);
}

// 4-bit mask of lanes with lo <= v <= hi (bit i = lane i).
inline int InRangeMask(__m256i v, __m256i vlo, __m256i vhi) {
  __m256i below = _mm256_cmpgt_epi64(vlo, v);  // v < lo
  __m256i above = _mm256_cmpgt_epi64(v, vhi);  // v > hi
  __m256i out = _mm256_or_si256(below, above);
  return ~_mm256_movemask_pd(_mm256_castsi256_pd(out)) & 0xF;
}

inline int64_t HorizontalSum(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(s) + _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s));
}

inline Value HorizontalMin(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  Value m = lanes[0];
  for (int i = 1; i < 4; ++i) m = lanes[i] < m ? lanes[i] : m;
  return m;
}

inline Value HorizontalMax(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  Value m = lanes[0];
  for (int i = 1; i < 4; ++i) m = lanes[i] > m ? lanes[i] : m;
  return m;
}

// a < b lanewise (signed); used to build min/max via blend.
inline __m256i Min64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i Max64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(b, a));
}

int Avx2FirstPass(const Value* col, int count, Value lo, Value hi,
                  uint32_t* sel) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  __m128i idx = _mm_setr_epi32(0, 1, 2, 3);
  const __m128i step = _mm_set1_epi32(4);
  int n = 0;
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    int mask = InRangeMask(v, vlo, vhi);
    __m128i packed = _mm_shuffle_epi8(
        idx, _mm_load_si128(reinterpret_cast<const __m128i*>(kCompress4[mask])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + n), packed);
    n += __builtin_popcount(static_cast<unsigned>(mask));
    idx = _mm_add_epi32(idx, step);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return n;
}

int Avx2RefinePass(const Value* col, uint32_t* sel, int n, Value lo,
                   Value hi) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  int m = 0;
  int j = 0;
  // In place is safe: m <= j holds throughout, so the 16-byte store at
  // sel + m ends at sel[m + 3] <= sel[j + 3], inside the window this
  // iteration already loaded — never in unread territory (the scalar tail
  // [n & ~3, n) included).
  for (; j + 4 <= n; j += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    __m256i v = _mm256_i32gather_epi64(AsLL(col), idx, 8);
    int mask = InRangeMask(v, vlo, vhi);
    __m128i packed = _mm_shuffle_epi8(
        idx, _mm_load_si128(reinterpret_cast<const __m128i*>(kCompress4[mask])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + m), packed);
    m += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; j < n; ++j) {
    uint32_t i = sel[j];
    sel[m] = i;
    m += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return m;
}

// Emits the selection indices for a `bits`-wide compare mask (bit k = code
// base + k matches) through the 4-index shuffle LUT, nibble by nibble.
// Every group emits unconditionally: a per-nibble skip branch mispredicts
// badly at the 3-30% selectivities real refine chains produce, while the
// unconditional shuffle+store is a handful of cheap ops (callers still
// skip whole all-zero masks, which covers the highly selective case). The
// 16-byte store at sel + n is bounded by the same argument as the 64-bit
// passes: n <= base before the group, so the store ends inside the vector
// window just consumed.
inline int EmitMaskLut(uint32_t mask, int bits, int base, uint32_t* sel,
                       int n) {
  const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
  for (int g = 0; g < bits / 4; ++g, mask >>= 4) {
    const uint32_t nib = mask & 0xF;
    __m128i idx = _mm_add_epi32(_mm_set1_epi32(base + 4 * g), iota);
    __m128i packed = _mm_shuffle_epi8(
        idx, _mm_load_si128(reinterpret_cast<const __m128i*>(kCompress4[nib])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + n), packed);
    n += __builtin_popcount(nib);
  }
  return n;
}

int Avx2FirstPassU8(const uint8_t* codes, int count, uint8_t lo, uint8_t hi,
                    uint32_t* sel) {
  const __m256i vlo = _mm256_set1_epi8(static_cast<char>(lo));
  const __m256i vhi = _mm256_set1_epi8(static_cast<char>(hi));
  int n = 0;
  int i = 0;
  for (; i + 32 <= count; i += 32) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    // Unsigned range check: c >= lo <=> max(c, lo) == c, c <= hi <=>
    // min(c, hi) == c (AVX2 has no unsigned compare, but has epu8 min/max).
    __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, vlo), v);
    __m256i le = _mm256_cmpeq_epi8(_mm256_min_epu8(v, vhi), v);
    uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_and_si256(ge, le)));
    if (mask == 0) continue;
    n = EmitMaskLut(mask, 32, i, sel, n);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

int Avx2FirstPassU16(const uint16_t* codes, int count, uint16_t lo,
                     uint16_t hi, uint32_t* sel) {
  const __m256i vlo = _mm256_set1_epi16(static_cast<short>(lo));
  const __m256i vhi = _mm256_set1_epi16(static_cast<short>(hi));
  int n = 0;
  int i = 0;
  for (; i + 16 <= count; i += 16) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    __m256i ge = _mm256_cmpeq_epi16(_mm256_max_epu16(v, vlo), v);
    __m256i le = _mm256_cmpeq_epi16(_mm256_min_epu16(v, vhi), v);
    __m256i ok = _mm256_and_si256(ge, le);
    // One bit per 16-bit lane: saturate each lane to a byte (0xFFFF -> 0xFF,
    // 0 -> 0) and movemask. vpacksswb interleaves 128-bit halves, so lanes
    // 0-7 land in mask bits 0-7 and lanes 8-15 in bits 16-23.
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(
        _mm256_packs_epi16(ok, _mm256_setzero_si256())));
    uint32_t mask = (m & 0xFFu) | ((m >> 8) & 0xFF00u);
    if (mask == 0) continue;
    n = EmitMaskLut(mask, 16, i, sel, n);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

// 8 x uint32 lanes: compare mask via the sign-bit movemask after the same
// unsigned min/max trick.
inline uint32_t InRangeMaskU32(__m256i v, __m256i vlo, __m256i vhi) {
  __m256i ge = _mm256_cmpeq_epi32(_mm256_max_epu32(v, vlo), v);
  __m256i le = _mm256_cmpeq_epi32(_mm256_min_epu32(v, vhi), v);
  return static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_and_si256(ge, le))));
}

int Avx2FirstPassU32(const uint32_t* codes, int count, uint32_t lo,
                     uint32_t hi, uint32_t* sel) {
  const __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i vhi = _mm256_set1_epi32(static_cast<int>(hi));
  int n = 0;
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    uint32_t mask = InRangeMaskU32(v, vlo, vhi);
    if (mask == 0) continue;
    n = EmitMaskLut(mask, 8, i, sel, n);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

// 32-bit codes have vpgatherdd, so the refine pass stays lane-parallel;
// 8/16-bit refines fall back to the shared scalar loops (no hardware
// gather at those widths, and survivor counts are small).
int Avx2RefinePassU32(const uint32_t* codes, uint32_t* sel, int n,
                      uint32_t lo, uint32_t hi) {
  const __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i vhi = _mm256_set1_epi32(static_cast<int>(hi));
  int m = 0;
  int j = 0;
  // In place is safe: m <= j throughout, so both nibble-group stores at
  // sel + m end inside the window this iteration already loaded.
  for (; j + 8 <= n; j += 8) {
    __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + j));
    __m256i v = _mm256_i32gather_epi32(reinterpret_cast<const int*>(codes),
                                       idx, 4);
    uint32_t mask = InRangeMaskU32(v, vlo, vhi);
    __m128i lo_idx = _mm256_castsi256_si128(idx);
    __m128i hi_idx = _mm256_extracti128_si256(idx, 1);
    __m128i packed_lo = _mm_shuffle_epi8(
        lo_idx, _mm_load_si128(
                    reinterpret_cast<const __m128i*>(kCompress4[mask & 0xF])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + m), packed_lo);
    m += __builtin_popcount(mask & 0xF);
    __m128i packed_hi = _mm_shuffle_epi8(
        hi_idx, _mm_load_si128(
                    reinterpret_cast<const __m128i*>(kCompress4[mask >> 4])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + m), packed_hi);
    m += __builtin_popcount(mask >> 4);
  }
  for (; j < n; ++j) {
    uint32_t i = sel[j];
    sel[m] = i;
    m += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return m;
}

int64_t Avx2SumGather(const Value* col, const uint32_t* sel, int n) {
  __m256i acc = _mm256_setzero_si256();
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    acc = _mm256_add_epi64(acc, _mm256_i32gather_epi64(AsLL(col), idx, 8));
  }
  int64_t s = HorizontalSum(acc);
  for (; j < n; ++j) s += col[sel[j]];
  return s;
}

Value Avx2MinGather(const Value* col, const uint32_t* sel, int n) {
  Value m = col[sel[0]];
  int j = 0;
  if (n >= 4) {
    __m256i acc = _mm256_set1_epi64x(m);
    for (; j + 4 <= n; j += 4) {
      __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
      acc = Min64(acc, _mm256_i32gather_epi64(AsLL(col), idx, 8));
    }
    m = HorizontalMin(acc);
  }
  for (; j < n; ++j) {
    Value v = col[sel[j]];
    m = v < m ? v : m;
  }
  return m;
}

Value Avx2MaxGather(const Value* col, const uint32_t* sel, int n) {
  Value m = col[sel[0]];
  int j = 0;
  if (n >= 4) {
    __m256i acc = _mm256_set1_epi64x(m);
    for (; j + 4 <= n; j += 4) {
      __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
      acc = Max64(acc, _mm256_i32gather_epi64(AsLL(col), idx, 8));
    }
    m = HorizontalMax(acc);
  }
  for (; j < n; ++j) {
    Value v = col[sel[j]];
    m = v > m ? v : m;
  }
  return m;
}

int64_t Avx2SumRange(const Value* col, int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t r = 0;
  for (; r + 4 <= n; r += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
  }
  int64_t s = HorizontalSum(acc);
  for (; r < n; ++r) s += col[r];
  return s;
}

Value Avx2MinRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 4) {
    __m256i acc = _mm256_set1_epi64x(m);
    for (; r + 4 <= n; r += 4) {
      acc = Min64(acc,
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
    }
    m = HorizontalMin(acc);
  }
  for (; r < n; ++r) m = col[r] < m ? col[r] : m;
  return m;
}

Value Avx2MaxRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 4) {
    __m256i acc = _mm256_set1_epi64x(m);
    for (; r + 4 <= n; r += 4) {
      acc = Max64(acc,
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
    }
    m = HorizontalMax(acc);
  }
  for (; r < n; ++r) m = col[r] > m ? col[r] : m;
  return m;
}

void Avx2BlockStats(const Value* col, int64_t n, Value* mn, Value* mx,
                    int64_t* sum) {
  Value lo = col[0], hi = col[0];
  int64_t s = 0;
  int64_t r = 0;
  if (n >= 4) {
    __m256i vmin = _mm256_set1_epi64x(lo);
    __m256i vmax = vmin;
    __m256i vsum = _mm256_setzero_si256();
    for (; r + 4 <= n; r += 4) {
      __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
      vmin = Min64(vmin, v);
      vmax = Max64(vmax, v);
      vsum = _mm256_add_epi64(vsum, v);
    }
    lo = HorizontalMin(vmin);
    hi = HorizontalMax(vmax);
    s = HorizontalSum(vsum);
  }
  for (; r < n; ++r) {
    Value v = col[r];
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
    s += v;
  }
  *mn = lo;
  *mx = hi;
  *sum = s;
}

constexpr SimdOps kAvx2Ops = {
    "avx2",
    Avx2FirstPass,
    Avx2RefinePass,
    Avx2FirstPassU8,
    Avx2FirstPassU16,
    Avx2FirstPassU32,
    scalar_ops::RefinePassU8,
    scalar_ops::RefinePassU16,
    Avx2RefinePassU32,
    Avx2SumGather,
    Avx2MinGather,
    Avx2MaxGather,
    Avx2SumRange,
    Avx2MinRange,
    Avx2MaxRange,
    Avx2BlockStats,
};

}  // namespace

const SimdOps* Avx2SimdOps() { return &kAvx2Ops; }

}  // namespace tsunami

#else  // !__AVX2__ || TSUNAMI_DISABLE_SIMD

namespace tsunami {
const SimdOps* Avx2SimdOps() { return nullptr; }
}  // namespace tsunami

#endif
