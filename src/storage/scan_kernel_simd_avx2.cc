// AVX2 tier: 4 x int64 lanes. Range predicates become two signed compares
// whose lane masks are folded to a 4-bit movemask; the matching lanes'
// selection indices are compressed with a 16-entry byte-shuffle lookup
// table (there is no integer compress instruction below AVX-512).
// Selection-driven aggregation uses vpgatherqq on the 32-bit selection
// indices. This TU is the only place compiled with -mavx2 (see
// CMakeLists.txt); everything here is reached strictly behind the runtime
// CPUID check in simd_dispatch.cc.
#include "src/storage/scan_kernel_simd.h"

#if defined(__AVX2__) && !defined(TSUNAMI_DISABLE_SIMD)

#include <immintrin.h>

namespace tsunami {

namespace {

// kCompress4[mask] is the _mm_shuffle_epi8 control that packs the uint32
// lanes whose mask bit is set to the front, in ascending lane order. The
// unused tail bytes are 0x80 (shuffle emits zeros there); those garbage
// lanes land below the next write cursor — the store at sel + n ends at
// sel[n + 3] <= sel[i + 3], inside the vector window just consumed — so
// they are overwritten or sit past the final count, never exposed.
#define TSUNAMI_LANE(x) 4 * (x), 4 * (x) + 1, 4 * (x) + 2, 4 * (x) + 3
#define TSUNAMI_ZERO 0x80, 0x80, 0x80, 0x80
alignas(16) constexpr uint8_t kCompress4[16][16] = {
    {TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(1), TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(1), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(2), TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(2), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(1), TSUNAMI_LANE(2), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(1), TSUNAMI_LANE(2), TSUNAMI_ZERO},
    {TSUNAMI_LANE(3), TSUNAMI_ZERO, TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(3), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(1), TSUNAMI_LANE(3), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(1), TSUNAMI_LANE(3), TSUNAMI_ZERO},
    {TSUNAMI_LANE(2), TSUNAMI_LANE(3), TSUNAMI_ZERO, TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(2), TSUNAMI_LANE(3), TSUNAMI_ZERO},
    {TSUNAMI_LANE(1), TSUNAMI_LANE(2), TSUNAMI_LANE(3), TSUNAMI_ZERO},
    {TSUNAMI_LANE(0), TSUNAMI_LANE(1), TSUNAMI_LANE(2), TSUNAMI_LANE(3)},
};
#undef TSUNAMI_LANE
#undef TSUNAMI_ZERO

inline const long long* AsLL(const Value* p) {
  return reinterpret_cast<const long long*>(p);
}

// 4-bit mask of lanes with lo <= v <= hi (bit i = lane i).
inline int InRangeMask(__m256i v, __m256i vlo, __m256i vhi) {
  __m256i below = _mm256_cmpgt_epi64(vlo, v);  // v < lo
  __m256i above = _mm256_cmpgt_epi64(v, vhi);  // v > hi
  __m256i out = _mm256_or_si256(below, above);
  return ~_mm256_movemask_pd(_mm256_castsi256_pd(out)) & 0xF;
}

inline int64_t HorizontalSum(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(s) + _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s));
}

inline Value HorizontalMin(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  Value m = lanes[0];
  for (int i = 1; i < 4; ++i) m = lanes[i] < m ? lanes[i] : m;
  return m;
}

inline Value HorizontalMax(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  Value m = lanes[0];
  for (int i = 1; i < 4; ++i) m = lanes[i] > m ? lanes[i] : m;
  return m;
}

// a < b lanewise (signed); used to build min/max via blend.
inline __m256i Min64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i Max64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(b, a));
}

int Avx2FirstPass(const Value* col, int count, Value lo, Value hi,
                  uint32_t* sel) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  __m128i idx = _mm_setr_epi32(0, 1, 2, 3);
  const __m128i step = _mm_set1_epi32(4);
  int n = 0;
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    int mask = InRangeMask(v, vlo, vhi);
    __m128i packed = _mm_shuffle_epi8(
        idx, _mm_load_si128(reinterpret_cast<const __m128i*>(kCompress4[mask])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + n), packed);
    n += __builtin_popcount(static_cast<unsigned>(mask));
    idx = _mm_add_epi32(idx, step);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return n;
}

int Avx2RefinePass(const Value* col, uint32_t* sel, int n, Value lo,
                   Value hi) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  int m = 0;
  int j = 0;
  // In place is safe: m <= j holds throughout, so the 16-byte store at
  // sel + m ends at sel[m + 3] <= sel[j + 3], inside the window this
  // iteration already loaded — never in unread territory (the scalar tail
  // [n & ~3, n) included).
  for (; j + 4 <= n; j += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    __m256i v = _mm256_i32gather_epi64(AsLL(col), idx, 8);
    int mask = InRangeMask(v, vlo, vhi);
    __m128i packed = _mm_shuffle_epi8(
        idx, _mm_load_si128(reinterpret_cast<const __m128i*>(kCompress4[mask])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + m), packed);
    m += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; j < n; ++j) {
    uint32_t i = sel[j];
    sel[m] = i;
    m += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return m;
}

int64_t Avx2SumGather(const Value* col, const uint32_t* sel, int n) {
  __m256i acc = _mm256_setzero_si256();
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    acc = _mm256_add_epi64(acc, _mm256_i32gather_epi64(AsLL(col), idx, 8));
  }
  int64_t s = HorizontalSum(acc);
  for (; j < n; ++j) s += col[sel[j]];
  return s;
}

Value Avx2MinGather(const Value* col, const uint32_t* sel, int n) {
  Value m = col[sel[0]];
  int j = 0;
  if (n >= 4) {
    __m256i acc = _mm256_set1_epi64x(m);
    for (; j + 4 <= n; j += 4) {
      __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
      acc = Min64(acc, _mm256_i32gather_epi64(AsLL(col), idx, 8));
    }
    m = HorizontalMin(acc);
  }
  for (; j < n; ++j) {
    Value v = col[sel[j]];
    m = v < m ? v : m;
  }
  return m;
}

Value Avx2MaxGather(const Value* col, const uint32_t* sel, int n) {
  Value m = col[sel[0]];
  int j = 0;
  if (n >= 4) {
    __m256i acc = _mm256_set1_epi64x(m);
    for (; j + 4 <= n; j += 4) {
      __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
      acc = Max64(acc, _mm256_i32gather_epi64(AsLL(col), idx, 8));
    }
    m = HorizontalMax(acc);
  }
  for (; j < n; ++j) {
    Value v = col[sel[j]];
    m = v > m ? v : m;
  }
  return m;
}

int64_t Avx2SumRange(const Value* col, int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t r = 0;
  for (; r + 4 <= n; r += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
  }
  int64_t s = HorizontalSum(acc);
  for (; r < n; ++r) s += col[r];
  return s;
}

Value Avx2MinRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 4) {
    __m256i acc = _mm256_set1_epi64x(m);
    for (; r + 4 <= n; r += 4) {
      acc = Min64(acc,
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
    }
    m = HorizontalMin(acc);
  }
  for (; r < n; ++r) m = col[r] < m ? col[r] : m;
  return m;
}

Value Avx2MaxRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 4) {
    __m256i acc = _mm256_set1_epi64x(m);
    for (; r + 4 <= n; r += 4) {
      acc = Max64(acc,
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
    }
    m = HorizontalMax(acc);
  }
  for (; r < n; ++r) m = col[r] > m ? col[r] : m;
  return m;
}

void Avx2BlockStats(const Value* col, int64_t n, Value* mn, Value* mx,
                    int64_t* sum) {
  Value lo = col[0], hi = col[0];
  int64_t s = 0;
  int64_t r = 0;
  if (n >= 4) {
    __m256i vmin = _mm256_set1_epi64x(lo);
    __m256i vmax = vmin;
    __m256i vsum = _mm256_setzero_si256();
    for (; r + 4 <= n; r += 4) {
      __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
      vmin = Min64(vmin, v);
      vmax = Max64(vmax, v);
      vsum = _mm256_add_epi64(vsum, v);
    }
    lo = HorizontalMin(vmin);
    hi = HorizontalMax(vmax);
    s = HorizontalSum(vsum);
  }
  for (; r < n; ++r) {
    Value v = col[r];
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
    s += v;
  }
  *mn = lo;
  *mx = hi;
  *sum = s;
}

constexpr SimdOps kAvx2Ops = {
    "avx2",        Avx2FirstPass, Avx2RefinePass, Avx2SumGather,
    Avx2MinGather, Avx2MaxGather, Avx2SumRange,   Avx2MinRange,
    Avx2MaxRange,  Avx2BlockStats,
};

}  // namespace

const SimdOps* Avx2SimdOps() { return &kAvx2Ops; }

}  // namespace tsunami

#else  // !__AVX2__ || TSUNAMI_DISABLE_SIMD

namespace tsunami {
const SimdOps* Avx2SimdOps() { return nullptr; }
}  // namespace tsunami

#endif
