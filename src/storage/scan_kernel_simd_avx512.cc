// AVX-512 tier: 8 x int64 lanes on raw values, and 64/32/16 x uint8/16/32
// lanes on FOR-encoded code blocks. Compares produce mask registers
// directly (__mmask8 .. __mmask64) and the selection vector is compressed
// with the native vpcompressd mask store — no lookup table, and the masked
// store writes only the surviving indices, so there is no overhang to pad
// for. The narrow passes compare one full vector of codes (vpcmpub /
// vpcmpuw / vpcmpud), then compress the 32-bit *index* vector in 16-lane
// mask slices; an all-zero compare mask (the common case in selective
// scans) skips the emit entirely, so throughput tracks the 2-8x smaller
// code footprint. Requires AVX512F + AVX512VL (the 256-bit compress-store)
// + AVX512BW (the 8/16-bit lane compares); simd_dispatch.cc checks all
// three CPUID bits before handing this table out. This TU is the only
// place compiled with -mavx512f -mavx512vl -mavx512bw (see CMakeLists.txt).
#include "src/storage/scan_kernel_simd.h"

#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512BW__) && \
    !defined(TSUNAMI_DISABLE_SIMD)

#include <immintrin.h>

namespace tsunami {

namespace {

// 8-bit mask of lanes with lo <= v <= hi.
inline __mmask8 InRangeMask(__m512i v, __m512i vlo, __m512i vhi) {
  return _mm512_cmp_epi64_mask(vlo, v, _MM_CMPINT_LE) &
         _mm512_cmp_epi64_mask(v, vhi, _MM_CMPINT_LE);
}

int Avx512FirstPass(const Value* col, int count, Value lo, Value hi,
                    uint32_t* sel) {
  const __m512i vlo = _mm512_set1_epi64(lo);
  const __m512i vhi = _mm512_set1_epi64(hi);
  __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i step = _mm256_set1_epi32(8);
  int n = 0;
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    __m512i v = _mm512_loadu_si512(col + i);
    __mmask8 mask = InRangeMask(v, vlo, vhi);
    _mm256_mask_compressstoreu_epi32(sel + n, mask, idx);
    n += __builtin_popcount(mask);
    idx = _mm256_add_epi32(idx, step);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return n;
}

int Avx512RefinePass(const Value* col, uint32_t* sel, int n, Value lo,
                     Value hi) {
  const __m512i vlo = _mm512_set1_epi64(lo);
  const __m512i vhi = _mm512_set1_epi64(hi);
  int m = 0;
  int j = 0;
  // In place is safe: m <= j throughout and the compress-store writes only
  // popcount(mask) <= 8 entries at sel + m, all inside the window this
  // iteration already loaded.
  for (; j + 8 <= n; j += 8) {
    __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + j));
    __m512i v = _mm512_i32gather_epi64(idx, col, 8);
    __mmask8 mask = InRangeMask(v, vlo, vhi);
    _mm256_mask_compressstoreu_epi32(sel + m, mask, idx);
    m += __builtin_popcount(mask);
  }
  for (; j < n; ++j) {
    uint32_t i = sel[j];
    sel[m] = i;
    m += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return m;
}

// Emits the selection indices for a `lanes`-bit compare mask in 16-lane
// vpcompressd slices. `base` is the block-relative index of mask bit 0.
template <int kLanes>
inline int EmitMask(uint64_t mask, int base, uint32_t* sel, int n) {
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15);
  for (int g = 0; g < kLanes / 16; ++g) {
    const auto m16 = static_cast<__mmask16>(mask >> (16 * g));
    if (m16 == 0) continue;
    __m512i idx = _mm512_add_epi32(_mm512_set1_epi32(base + 16 * g), iota);
    _mm512_mask_compressstoreu_epi32(sel + n, m16, idx);
    n += __builtin_popcount(m16);
  }
  return n;
}

int Avx512FirstPassU8(const uint8_t* codes, int count, uint8_t lo,
                      uint8_t hi, uint32_t* sel) {
  const __m512i vlo = _mm512_set1_epi8(static_cast<char>(lo));
  const __m512i vhi = _mm512_set1_epi8(static_cast<char>(hi));
  int n = 0;
  int i = 0;
  for (; i + 64 <= count; i += 64) {
    __m512i v = _mm512_loadu_si512(codes + i);
    __mmask64 mask = _mm512_cmp_epu8_mask(vlo, v, _MM_CMPINT_LE) &
                     _mm512_cmp_epu8_mask(v, vhi, _MM_CMPINT_LE);
    if (mask == 0) continue;
    n = EmitMask<64>(mask, i, sel, n);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

int Avx512FirstPassU16(const uint16_t* codes, int count, uint16_t lo,
                       uint16_t hi, uint32_t* sel) {
  const __m512i vlo = _mm512_set1_epi16(static_cast<short>(lo));
  const __m512i vhi = _mm512_set1_epi16(static_cast<short>(hi));
  int n = 0;
  int i = 0;
  for (; i + 32 <= count; i += 32) {
    __m512i v = _mm512_loadu_si512(codes + i);
    __mmask32 mask = _mm512_cmp_epu16_mask(vlo, v, _MM_CMPINT_LE) &
                     _mm512_cmp_epu16_mask(v, vhi, _MM_CMPINT_LE);
    if (mask == 0) continue;
    n = EmitMask<32>(mask, i, sel, n);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

int Avx512FirstPassU32(const uint32_t* codes, int count, uint32_t lo,
                       uint32_t hi, uint32_t* sel) {
  const __m512i vlo = _mm512_set1_epi32(static_cast<int>(lo));
  const __m512i vhi = _mm512_set1_epi32(static_cast<int>(hi));
  int n = 0;
  int i = 0;
  for (; i + 16 <= count; i += 16) {
    __m512i v = _mm512_loadu_si512(codes + i);
    __mmask16 mask = _mm512_cmp_epu32_mask(vlo, v, _MM_CMPINT_LE) &
                     _mm512_cmp_epu32_mask(v, vhi, _MM_CMPINT_LE);
    if (mask == 0) continue;
    n = EmitMask<16>(mask, i, sel, n);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

// 32-bit codes have a hardware gather, so the refine pass stays
// lane-parallel; 8/16-bit refines fall back to the shared scalar loops
// (gather-bound at tiny survivor counts — same policy as NEON's gathers).
int Avx512RefinePassU32(const uint32_t* codes, uint32_t* sel, int n,
                        uint32_t lo, uint32_t hi) {
  const __m512i vlo = _mm512_set1_epi32(static_cast<int>(lo));
  const __m512i vhi = _mm512_set1_epi32(static_cast<int>(hi));
  int m = 0;
  int j = 0;
  // In place is safe: m <= j throughout and the compress-store writes only
  // popcount(mask) <= 16 entries at sel + m, inside the window this
  // iteration already loaded.
  for (; j + 16 <= n; j += 16) {
    __m512i idx =
        _mm512_loadu_si512(reinterpret_cast<const __m512i*>(sel + j));
    __m512i v = _mm512_i32gather_epi32(idx, codes, 4);
    __mmask16 mask = _mm512_cmp_epu32_mask(vlo, v, _MM_CMPINT_LE) &
                     _mm512_cmp_epu32_mask(v, vhi, _MM_CMPINT_LE);
    _mm512_mask_compressstoreu_epi32(sel + m, mask, idx);
    m += __builtin_popcount(mask);
  }
  for (; j < n; ++j) {
    uint32_t i = sel[j];
    sel[m] = i;
    m += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return m;
}

int64_t Avx512SumGather(const Value* col, const uint32_t* sel, int n) {
  __m512i acc = _mm512_setzero_si512();
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + j));
    acc = _mm512_add_epi64(acc, _mm512_i32gather_epi64(idx, col, 8));
  }
  int64_t s = _mm512_reduce_add_epi64(acc);
  for (; j < n; ++j) s += col[sel[j]];
  return s;
}

Value Avx512MinGather(const Value* col, const uint32_t* sel, int n) {
  Value m = col[sel[0]];
  int j = 0;
  if (n >= 8) {
    __m512i acc = _mm512_set1_epi64(m);
    for (; j + 8 <= n; j += 8) {
      __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + j));
      acc = _mm512_min_epi64(acc, _mm512_i32gather_epi64(idx, col, 8));
    }
    m = _mm512_reduce_min_epi64(acc);
  }
  for (; j < n; ++j) {
    Value v = col[sel[j]];
    m = v < m ? v : m;
  }
  return m;
}

Value Avx512MaxGather(const Value* col, const uint32_t* sel, int n) {
  Value m = col[sel[0]];
  int j = 0;
  if (n >= 8) {
    __m512i acc = _mm512_set1_epi64(m);
    for (; j + 8 <= n; j += 8) {
      __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + j));
      acc = _mm512_max_epi64(acc, _mm512_i32gather_epi64(idx, col, 8));
    }
    m = _mm512_reduce_max_epi64(acc);
  }
  for (; j < n; ++j) {
    Value v = col[sel[j]];
    m = v > m ? v : m;
  }
  return m;
}

int64_t Avx512SumRange(const Value* col, int64_t n) {
  __m512i acc = _mm512_setzero_si512();
  int64_t r = 0;
  for (; r + 8 <= n; r += 8) {
    acc = _mm512_add_epi64(acc, _mm512_loadu_si512(col + r));
  }
  int64_t s = _mm512_reduce_add_epi64(acc);
  for (; r < n; ++r) s += col[r];
  return s;
}

Value Avx512MinRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 8) {
    __m512i acc = _mm512_set1_epi64(m);
    for (; r + 8 <= n; r += 8) {
      acc = _mm512_min_epi64(acc, _mm512_loadu_si512(col + r));
    }
    m = _mm512_reduce_min_epi64(acc);
  }
  for (; r < n; ++r) m = col[r] < m ? col[r] : m;
  return m;
}

Value Avx512MaxRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 8) {
    __m512i acc = _mm512_set1_epi64(m);
    for (; r + 8 <= n; r += 8) {
      acc = _mm512_max_epi64(acc, _mm512_loadu_si512(col + r));
    }
    m = _mm512_reduce_max_epi64(acc);
  }
  for (; r < n; ++r) m = col[r] > m ? col[r] : m;
  return m;
}

void Avx512BlockStats(const Value* col, int64_t n, Value* mn, Value* mx,
                      int64_t* sum) {
  Value lo = col[0], hi = col[0];
  int64_t s = 0;
  int64_t r = 0;
  if (n >= 8) {
    __m512i vmin = _mm512_set1_epi64(lo);
    __m512i vmax = vmin;
    __m512i vsum = _mm512_setzero_si512();
    for (; r + 8 <= n; r += 8) {
      __m512i v = _mm512_loadu_si512(col + r);
      vmin = _mm512_min_epi64(vmin, v);
      vmax = _mm512_max_epi64(vmax, v);
      vsum = _mm512_add_epi64(vsum, v);
    }
    lo = _mm512_reduce_min_epi64(vmin);
    hi = _mm512_reduce_max_epi64(vmax);
    s = _mm512_reduce_add_epi64(vsum);
  }
  for (; r < n; ++r) {
    Value v = col[r];
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
    s += v;
  }
  *mn = lo;
  *mx = hi;
  *sum = s;
}

constexpr SimdOps kAvx512Ops = {
    "avx512",
    Avx512FirstPass,
    Avx512RefinePass,
    Avx512FirstPassU8,
    Avx512FirstPassU16,
    Avx512FirstPassU32,
    scalar_ops::RefinePassU8,
    scalar_ops::RefinePassU16,
    Avx512RefinePassU32,
    Avx512SumGather,
    Avx512MinGather,
    Avx512MaxGather,
    Avx512SumRange,
    Avx512MinRange,
    Avx512MaxRange,
    Avx512BlockStats,
};

}  // namespace

const SimdOps* Avx512SimdOps() { return &kAvx512Ops; }

}  // namespace tsunami

#else  // !AVX512F/VL || TSUNAMI_DISABLE_SIMD

namespace tsunami {
const SimdOps* Avx512SimdOps() { return nullptr; }
}  // namespace tsunami

#endif
