// NEON tier (AArch64): 2 x int64 lanes on raw values, 16/8/4 x uint8/16/32
// lanes on FOR-encoded code blocks. NEON is baseline on AArch64, so this
// TU needs no special arch flags — it simply compiles empty on other
// architectures. Contiguous passes (predicate compare, run folds, zone-map
// stats) are vectorized; the 64-bit compares (vcgeq_s64/vcleq_s64) are
// A64-only, hence the __aarch64__ guard. The narrow first passes compare a
// full vector of codes and fold the lane masks to a scalar bitmask with
// the vshrn-by-4 narrowing trick, then emit indices branchlessly per lane.
// Gathered (selection-driven) passes and the narrow refines point straight
// at the shared scalar_ops loops: at these lane counts a software gather
// costs more than the loads it replaces, and reusing the reference
// implementations keeps the tiers drift-proof by construction.
#include "src/storage/scan_kernel_simd.h"

#if defined(__aarch64__) && defined(__ARM_NEON) && \
    !defined(TSUNAMI_DISABLE_SIMD)

#include <arm_neon.h>

namespace tsunami {

namespace {

inline int64x2_t Min64(int64x2_t a, int64x2_t b) {
  return vbslq_s64(vcgtq_s64(a, b), b, a);  // Where a > b, take b.
}

inline int64x2_t Max64(int64x2_t a, int64x2_t b) {
  return vbslq_s64(vcgtq_s64(b, a), b, a);  // Where b > a, take b.
}

int NeonFirstPass(const Value* col, int count, Value lo, Value hi,
                  uint32_t* sel) {
  const int64x2_t vlo = vdupq_n_s64(lo);
  const int64x2_t vhi = vdupq_n_s64(hi);
  int n = 0;
  int i = 0;
  for (; i + 2 <= count; i += 2) {
    int64x2_t v = vld1q_s64(col + i);
    uint64x2_t ok = vandq_u64(vcgeq_s64(v, vlo), vcleq_s64(v, vhi));
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>(vgetq_lane_u64(ok, 0) & 1);
    sel[n] = static_cast<uint32_t>(i + 1);
    n += static_cast<int>(vgetq_lane_u64(ok, 1) & 1);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return n;
}

int NeonFirstPassU8(const uint8_t* codes, int count, uint8_t lo, uint8_t hi,
                    uint32_t* sel) {
  const uint8x16_t vlo = vdupq_n_u8(lo);
  const uint8x16_t vhi = vdupq_n_u8(hi);
  int n = 0;
  int i = 0;
  for (; i + 16 <= count; i += 16) {
    uint8x16_t v = vld1q_u8(codes + i);
    uint8x16_t ok = vandq_u8(vcgeq_u8(v, vlo), vcleq_u8(v, vhi));
    // Narrow each byte's 0xFF/0x00 mask to a nibble: 4 bits per lane in m.
    uint64_t m = vget_lane_u64(
        vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(ok), 4)), 0);
    if (m == 0) continue;
    for (int k = 0; k < 16; ++k) {
      sel[n] = static_cast<uint32_t>(i + k);
      n += static_cast<int>((m >> (4 * k)) & 1);
    }
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

int NeonFirstPassU16(const uint16_t* codes, int count, uint16_t lo,
                     uint16_t hi, uint32_t* sel) {
  const uint16x8_t vlo = vdupq_n_u16(lo);
  const uint16x8_t vhi = vdupq_n_u16(hi);
  int n = 0;
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    uint16x8_t v = vld1q_u16(codes + i);
    uint16x8_t ok = vandq_u16(vcgeq_u16(v, vlo), vcleq_u16(v, vhi));
    // Narrow each 16-bit 0xFFFF/0 mask to a byte: 8 bits per lane in m.
    uint64_t m = vget_lane_u64(vreinterpret_u64_u8(vshrn_n_u16(ok, 4)), 0);
    if (m == 0) continue;
    for (int k = 0; k < 8; ++k) {
      sel[n] = static_cast<uint32_t>(i + k);
      n += static_cast<int>((m >> (8 * k)) & 1);
    }
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

int NeonFirstPassU32(const uint32_t* codes, int count, uint32_t lo,
                     uint32_t hi, uint32_t* sel) {
  const uint32x4_t vlo = vdupq_n_u32(lo);
  const uint32x4_t vhi = vdupq_n_u32(hi);
  int n = 0;
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    uint32x4_t v = vld1q_u32(codes + i);
    uint32x4_t ok = vandq_u32(vcgeq_u32(v, vlo), vcleq_u32(v, vhi));
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>(vgetq_lane_u32(ok, 0) & 1);
    sel[n] = static_cast<uint32_t>(i + 1);
    n += static_cast<int>(vgetq_lane_u32(ok, 1) & 1);
    sel[n] = static_cast<uint32_t>(i + 2);
    n += static_cast<int>(vgetq_lane_u32(ok, 2) & 1);
    sel[n] = static_cast<uint32_t>(i + 3);
    n += static_cast<int>(vgetq_lane_u32(ok, 3) & 1);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

int64_t NeonSumRange(const Value* col, int64_t n) {
  int64x2_t acc = vdupq_n_s64(0);
  int64_t r = 0;
  for (; r + 2 <= n; r += 2) acc = vaddq_s64(acc, vld1q_s64(col + r));
  int64_t s = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; r < n; ++r) s += col[r];
  return s;
}

Value NeonMinRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 2) {
    int64x2_t acc = vdupq_n_s64(m);
    for (; r + 2 <= n; r += 2) acc = Min64(acc, vld1q_s64(col + r));
    Value a = vgetq_lane_s64(acc, 0), b = vgetq_lane_s64(acc, 1);
    m = a < b ? a : b;
  }
  for (; r < n; ++r) m = col[r] < m ? col[r] : m;
  return m;
}

Value NeonMaxRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 2) {
    int64x2_t acc = vdupq_n_s64(m);
    for (; r + 2 <= n; r += 2) acc = Max64(acc, vld1q_s64(col + r));
    Value a = vgetq_lane_s64(acc, 0), b = vgetq_lane_s64(acc, 1);
    m = a > b ? a : b;
  }
  for (; r < n; ++r) m = col[r] > m ? col[r] : m;
  return m;
}

void NeonBlockStats(const Value* col, int64_t n, Value* mn, Value* mx,
                    int64_t* sum) {
  Value lo = col[0], hi = col[0];
  int64_t s = 0;
  int64_t r = 0;
  if (n >= 2) {
    int64x2_t vmin = vdupq_n_s64(lo);
    int64x2_t vmax = vmin;
    int64x2_t vsum = vdupq_n_s64(0);
    for (; r + 2 <= n; r += 2) {
      int64x2_t v = vld1q_s64(col + r);
      vmin = Min64(vmin, v);
      vmax = Max64(vmax, v);
      vsum = vaddq_s64(vsum, v);
    }
    Value a = vgetq_lane_s64(vmin, 0), b = vgetq_lane_s64(vmin, 1);
    lo = a < b ? a : b;
    a = vgetq_lane_s64(vmax, 0);
    b = vgetq_lane_s64(vmax, 1);
    hi = a > b ? a : b;
    s = vgetq_lane_s64(vsum, 0) + vgetq_lane_s64(vsum, 1);
  }
  for (; r < n; ++r) {
    Value v = col[r];
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
    s += v;
  }
  *mn = lo;
  *mx = hi;
  *sum = s;
}

constexpr SimdOps kNeonOps = {
    "neon",
    NeonFirstPass,
    scalar_ops::RefinePass,
    NeonFirstPassU8,
    NeonFirstPassU16,
    NeonFirstPassU32,
    scalar_ops::RefinePassU8,
    scalar_ops::RefinePassU16,
    scalar_ops::RefinePassU32,
    scalar_ops::SumGather,
    scalar_ops::MinGather,
    scalar_ops::MaxGather,
    NeonSumRange,
    NeonMinRange,
    NeonMaxRange,
    NeonBlockStats,
};

}  // namespace

const SimdOps* NeonSimdOps() { return &kNeonOps; }

}  // namespace tsunami

#else  // !__aarch64__ || TSUNAMI_DISABLE_SIMD

namespace tsunami {
const SimdOps* NeonSimdOps() { return nullptr; }
}  // namespace tsunami

#endif
