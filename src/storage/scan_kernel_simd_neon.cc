// NEON tier (AArch64): 2 x int64 lanes. NEON is baseline on AArch64, so
// this TU needs no special arch flags — it simply compiles empty on other
// architectures. Contiguous passes (predicate compare, run folds, zone-map
// stats) are vectorized; the 64-bit compares (vcgeq_s64/vcleq_s64) are
// A64-only, hence the __aarch64__ guard. Gathered (selection-driven)
// passes point straight at the shared scalar_ops loops: at 2 lanes a
// software gather costs more than the loads it replaces, and reusing the
// reference implementations keeps the tiers drift-proof by construction.
#include "src/storage/scan_kernel_simd.h"

#if defined(__aarch64__) && defined(__ARM_NEON) && \
    !defined(TSUNAMI_DISABLE_SIMD)

#include <arm_neon.h>

namespace tsunami {

namespace {

inline int64x2_t Min64(int64x2_t a, int64x2_t b) {
  return vbslq_s64(vcgtq_s64(a, b), b, a);  // Where a > b, take b.
}

inline int64x2_t Max64(int64x2_t a, int64x2_t b) {
  return vbslq_s64(vcgtq_s64(b, a), b, a);  // Where b > a, take b.
}

int NeonFirstPass(const Value* col, int count, Value lo, Value hi,
                  uint32_t* sel) {
  const int64x2_t vlo = vdupq_n_s64(lo);
  const int64x2_t vhi = vdupq_n_s64(hi);
  int n = 0;
  int i = 0;
  for (; i + 2 <= count; i += 2) {
    int64x2_t v = vld1q_s64(col + i);
    uint64x2_t ok = vandq_u64(vcgeq_s64(v, vlo), vcleq_s64(v, vhi));
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>(vgetq_lane_u64(ok, 0) & 1);
    sel[n] = static_cast<uint32_t>(i + 1);
    n += static_cast<int>(vgetq_lane_u64(ok, 1) & 1);
  }
  for (; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return n;
}

int64_t NeonSumRange(const Value* col, int64_t n) {
  int64x2_t acc = vdupq_n_s64(0);
  int64_t r = 0;
  for (; r + 2 <= n; r += 2) acc = vaddq_s64(acc, vld1q_s64(col + r));
  int64_t s = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; r < n; ++r) s += col[r];
  return s;
}

Value NeonMinRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 2) {
    int64x2_t acc = vdupq_n_s64(m);
    for (; r + 2 <= n; r += 2) acc = Min64(acc, vld1q_s64(col + r));
    Value a = vgetq_lane_s64(acc, 0), b = vgetq_lane_s64(acc, 1);
    m = a < b ? a : b;
  }
  for (; r < n; ++r) m = col[r] < m ? col[r] : m;
  return m;
}

Value NeonMaxRange(const Value* col, int64_t n) {
  Value m = col[0];
  int64_t r = 0;
  if (n >= 2) {
    int64x2_t acc = vdupq_n_s64(m);
    for (; r + 2 <= n; r += 2) acc = Max64(acc, vld1q_s64(col + r));
    Value a = vgetq_lane_s64(acc, 0), b = vgetq_lane_s64(acc, 1);
    m = a > b ? a : b;
  }
  for (; r < n; ++r) m = col[r] > m ? col[r] : m;
  return m;
}

void NeonBlockStats(const Value* col, int64_t n, Value* mn, Value* mx,
                    int64_t* sum) {
  Value lo = col[0], hi = col[0];
  int64_t s = 0;
  int64_t r = 0;
  if (n >= 2) {
    int64x2_t vmin = vdupq_n_s64(lo);
    int64x2_t vmax = vmin;
    int64x2_t vsum = vdupq_n_s64(0);
    for (; r + 2 <= n; r += 2) {
      int64x2_t v = vld1q_s64(col + r);
      vmin = Min64(vmin, v);
      vmax = Max64(vmax, v);
      vsum = vaddq_s64(vsum, v);
    }
    Value a = vgetq_lane_s64(vmin, 0), b = vgetq_lane_s64(vmin, 1);
    lo = a < b ? a : b;
    a = vgetq_lane_s64(vmax, 0);
    b = vgetq_lane_s64(vmax, 1);
    hi = a > b ? a : b;
    s = vgetq_lane_s64(vsum, 0) + vgetq_lane_s64(vsum, 1);
  }
  for (; r < n; ++r) {
    Value v = col[r];
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
    s += v;
  }
  *mn = lo;
  *mx = hi;
  *sum = s;
}

constexpr SimdOps kNeonOps = {
    "neon",
    NeonFirstPass,
    scalar_ops::RefinePass,
    scalar_ops::SumGather,
    scalar_ops::MinGather,
    scalar_ops::MaxGather,
    NeonSumRange,
    NeonMinRange,
    NeonMaxRange,
    NeonBlockStats,
};

}  // namespace

const SimdOps* NeonSimdOps() { return &kNeonOps; }

}  // namespace tsunami

#else  // !__aarch64__ || TSUNAMI_DISABLE_SIMD

namespace tsunami {
const SimdOps* NeonSimdOps() { return nullptr; }
}  // namespace tsunami

#endif
