#include "src/storage/simd_dispatch.h"

#include <cstdlib>

#include "src/storage/scan_kernel_simd.h"

namespace tsunami {

// ---- Portable scalar-branchless reference ops (the PR-1 loops) -----------
namespace scalar_ops {

int FirstPass(const Value* col, int count, Value lo, Value hi,
              uint32_t* sel) {
  int n = 0;
  for (int i = 0; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return n;
}

int RefinePass(const Value* col, uint32_t* sel, int n, Value lo, Value hi) {
  int m = 0;
  for (int j = 0; j < n; ++j) {
    uint32_t i = sel[j];
    sel[m] = i;
    m += static_cast<int>((col[i] >= lo) & (col[i] <= hi));
  }
  return m;
}

// Width-parameterized predicate passes over FOR codes: the same branchless
// store-and-advance loops as FirstPass/RefinePass, instantiated per code
// width. Bounds arrive pre-translated into code space (see
// TranslateToCodeSpace), so the comparisons are plain unsigned.
namespace {

template <typename T>
int FirstPassCodes(const T* codes, int count, T lo, T hi, uint32_t* sel) {
  int n = 0;
  for (int i = 0; i < count; ++i) {
    sel[n] = static_cast<uint32_t>(i);
    n += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return n;
}

template <typename T>
int RefinePassCodes(const T* codes, uint32_t* sel, int n, T lo, T hi) {
  int m = 0;
  for (int j = 0; j < n; ++j) {
    uint32_t i = sel[j];
    sel[m] = i;
    m += static_cast<int>((codes[i] >= lo) & (codes[i] <= hi));
  }
  return m;
}

}  // namespace

int FirstPassU8(const uint8_t* codes, int count, uint8_t lo, uint8_t hi,
                uint32_t* sel) {
  return FirstPassCodes(codes, count, lo, hi, sel);
}

int FirstPassU16(const uint16_t* codes, int count, uint16_t lo, uint16_t hi,
                 uint32_t* sel) {
  return FirstPassCodes(codes, count, lo, hi, sel);
}

int FirstPassU32(const uint32_t* codes, int count, uint32_t lo, uint32_t hi,
                 uint32_t* sel) {
  return FirstPassCodes(codes, count, lo, hi, sel);
}

int RefinePassU8(const uint8_t* codes, uint32_t* sel, int n, uint8_t lo,
                 uint8_t hi) {
  return RefinePassCodes(codes, sel, n, lo, hi);
}

int RefinePassU16(const uint16_t* codes, uint32_t* sel, int n, uint16_t lo,
                  uint16_t hi) {
  return RefinePassCodes(codes, sel, n, lo, hi);
}

int RefinePassU32(const uint32_t* codes, uint32_t* sel, int n, uint32_t lo,
                  uint32_t hi) {
  return RefinePassCodes(codes, sel, n, lo, hi);
}

int64_t SumGather(const Value* col, const uint32_t* sel, int n) {
  int64_t s = 0;
  for (int j = 0; j < n; ++j) s += col[sel[j]];
  return s;
}

Value MinGather(const Value* col, const uint32_t* sel, int n) {
  Value m = col[sel[0]];
  for (int j = 1; j < n; ++j) {
    Value v = col[sel[j]];
    m = v < m ? v : m;
  }
  return m;
}

Value MaxGather(const Value* col, const uint32_t* sel, int n) {
  Value m = col[sel[0]];
  for (int j = 1; j < n; ++j) {
    Value v = col[sel[j]];
    m = v > m ? v : m;
  }
  return m;
}

int64_t SumRange(const Value* col, int64_t n) {
  int64_t s = 0;
  for (int64_t r = 0; r < n; ++r) s += col[r];
  return s;
}

Value MinRange(const Value* col, int64_t n) {
  Value m = col[0];
  for (int64_t r = 1; r < n; ++r) m = col[r] < m ? col[r] : m;
  return m;
}

Value MaxRange(const Value* col, int64_t n) {
  Value m = col[0];
  for (int64_t r = 1; r < n; ++r) m = col[r] > m ? col[r] : m;
  return m;
}

void BlockStats(const Value* col, int64_t n, Value* mn, Value* mx,
                int64_t* sum) {
  Value lo = col[0], hi = col[0];
  int64_t s = 0;
  for (int64_t r = 0; r < n; ++r) {
    Value v = col[r];
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
    s += v;
  }
  *mn = lo;
  *mx = hi;
  *sum = s;
}

}  // namespace scalar_ops

namespace {

constexpr SimdOps kScalarOps = {
    "scalar",
    scalar_ops::FirstPass,
    scalar_ops::RefinePass,
    scalar_ops::FirstPassU8,
    scalar_ops::FirstPassU16,
    scalar_ops::FirstPassU32,
    scalar_ops::RefinePassU8,
    scalar_ops::RefinePassU16,
    scalar_ops::RefinePassU32,
    scalar_ops::SumGather,
    scalar_ops::MinGather,
    scalar_ops::MaxGather,
    scalar_ops::SumRange,
    scalar_ops::MinRange,
    scalar_ops::MaxRange,
    scalar_ops::BlockStats,
};

}  // namespace

const SimdOps& ScalarSimdOps() { return kScalarOps; }

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAuto:
      return "auto";
    case SimdTier::kNone:
      return "scalar";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool SimdTierSupported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAuto:
    case SimdTier::kNone:
      return true;
    case SimdTier::kNeon:
      return NeonSimdOps() != nullptr;
    case SimdTier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return Avx2SimdOps() != nullptr && __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdTier::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      // BW joined F+VL when the narrow-code passes landed: the 8/16-bit
      // lane compares (vpcmpub/vpcmpuw) are AVX512BW, and the whole TU is
      // compiled with -mavx512bw, so the CPU must have all three.
      return Avx512SimdOps() != nullptr &&
             __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512bw");
#else
      return false;
#endif
  }
  return false;
}

SimdTier DetectSimdTier() {
  static const SimdTier tier = [] {
    // Environment escape hatch for CI and debugging: pins the auto-resolved
    // tier to the portable scalar ops so the degraded path gets exercised
    // without a separate build. Explicitly forced tiers are unaffected.
    const char* force = std::getenv("TSUNAMI_FORCE_SCALAR");
    if (force != nullptr && force[0] != '\0' && force[0] != '0') {
      return SimdTier::kNone;
    }
    if (SimdTierSupported(SimdTier::kAvx512)) return SimdTier::kAvx512;
    if (SimdTierSupported(SimdTier::kAvx2)) return SimdTier::kAvx2;
    if (SimdTierSupported(SimdTier::kNeon)) return SimdTier::kNeon;
    return SimdTier::kNone;
  }();
  return tier;
}

const SimdOps& OpsForTier(SimdTier tier) {
  if (tier == SimdTier::kAuto) tier = DetectSimdTier();
  if (!SimdTierSupported(tier)) return kScalarOps;
  switch (tier) {
    case SimdTier::kAvx512:
      return *Avx512SimdOps();
    case SimdTier::kAvx2:
      return *Avx2SimdOps();
    case SimdTier::kNeon:
      return *NeonSimdOps();
    default:
      return kScalarOps;
  }
}

}  // namespace tsunami
