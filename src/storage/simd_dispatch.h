// Runtime CPU dispatch for the SIMD scan-kernel tier. The library is built
// with per-file arch flags (only the per-tier translation units get
// -mavx2 / -mavx512f; see CMakeLists.txt), so the binary always contains
// every tier the toolchain could compile, and the tier actually used is
// chosen once at startup from CPUID (NEON is baseline on aarch64). Callers
// can force a tier through ScanOptions; forcing an unavailable tier falls
// back to the portable scalar ops, never to illegal instructions.
#ifndef TSUNAMI_STORAGE_SIMD_DISPATCH_H_
#define TSUNAMI_STORAGE_SIMD_DISPATCH_H_

namespace tsunami {

struct SimdOps;

/// Instruction-set tiers for the scan kernel's inner loops, ordered by
/// preference. kAuto resolves to the best runtime-supported tier.
enum class SimdTier {
  kAuto,    // Resolve to DetectSimdTier() at the call site.
  kNone,    // Portable scalar-branchless loops (the PR-1 kernel).
  kNeon,    // 128-bit ARM NEON: 2 x int64 lanes.
  kAvx2,    // 256-bit x86: 4 x int64 lanes, movemask + shuffle compress.
  kAvx512,  // 512-bit x86: 8 x int64 lanes, native mask compress-store.
};

const char* SimdTierName(SimdTier tier);

/// True when `tier` was both compiled into this binary and is supported by
/// the CPU we are running on. kAuto and kNone are always supported.
bool SimdTierSupported(SimdTier tier);

/// Best supported tier on this machine (cached after the first call).
/// Returns kNone when the build disabled SIMD (TSUNAMI_DISABLE_SIMD), the
/// CPU has no supported extension, or the TSUNAMI_FORCE_SCALAR environment
/// variable is set non-empty/non-zero (CI's degraded-path pass).
SimdTier DetectSimdTier();

/// The inner-loop implementations for `tier`; falls back to the scalar ops
/// when the tier is unsupported, so the result is always safe to call.
const SimdOps& OpsForTier(SimdTier tier);

}  // namespace tsunami

#endif  // TSUNAMI_STORAGE_SIMD_DISPATCH_H_
