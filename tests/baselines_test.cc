// Tests for the non-learned baselines: Morton-code properties, structural
// invariants, and query correctness against a full scan.
#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/baselines/kdtree.h"
#include "src/baselines/octree.h"
#include "src/baselines/single_dim.h"
#include "src/baselines/zorder.h"
#include "src/common/random.h"
#include "src/datasets/datasets.h"

namespace tsunami {
namespace {

TEST(MortonTest, EncodeDecodeRoundTrip) {
  Rng rng(61);
  for (int trial = 0; trial < 200; ++trial) {
    int dims = 2 + static_cast<int>(rng.NextBelow(6));
    int bits = 1 + static_cast<int>(rng.NextBelow(63 / dims));
    std::vector<uint32_t> coords(dims);
    for (int d = 0; d < dims; ++d) {
      coords[d] = static_cast<uint32_t>(rng.NextBelow(1u << bits));
    }
    uint64_t code = MortonEncode(coords, bits);
    EXPECT_EQ(MortonDecode(code, dims, bits), coords);
  }
}

TEST(MortonTest, MonotonePerCoordinate) {
  // Increasing one coordinate (others fixed) increases the code; this is
  // what makes the corner codes of a query box its z-range.
  Rng rng(62);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> coords = {static_cast<uint32_t>(rng.NextBelow(255)),
                                    static_cast<uint32_t>(rng.NextBelow(255)),
                                    static_cast<uint32_t>(rng.NextBelow(255))};
    uint64_t before = MortonEncode(coords, 8);
    int d = static_cast<int>(rng.NextBelow(3));
    coords[d] += 1;
    EXPECT_LT(before, MortonEncode(coords, 8));
  }
}

TEST(MortonTest, KnownInterleaving) {
  // 2-D: (x=1, y=0) -> 0b01, (x=0, y=1) -> 0b10, (x=1, y=1) -> 0b11.
  EXPECT_EQ(MortonEncode({1, 0}, 1), 1u);
  EXPECT_EQ(MortonEncode({0, 1}, 1), 2u);
  EXPECT_EQ(MortonEncode({1, 1}, 1), 3u);
  EXPECT_EQ(MortonEncode({3, 0}, 2), 0b0101u);
}

TEST(SingleDimTest, PicksMostSelectiveDimension) {
  Benchmark bench = MakeUniformBenchmark(4, 3000, 63, 20);
  // Force a workload that's very selective on dim 2 only.
  Workload w;
  for (int i = 0; i < 20; ++i) {
    Query q;
    q.filters = {Predicate{2, 0, 1000}, Predicate{0, 0, kValueMax}};
    w.push_back(q);
  }
  SingleDimIndex index(bench.data, w);
  EXPECT_EQ(index.sort_dim(), 2);
}

TEST(SingleDimTest, FullScanFallbackWithoutSortDimFilter) {
  Benchmark bench = MakeUniformBenchmark(3, 2000, 64, 10);
  SingleDimIndex index(bench.data, bench.workload, /*forced_sort_dim=*/0);
  Query q;
  q.filters = {Predicate{1, 0, 500000000}};
  QueryResult r = index.Execute(q);
  EXPECT_EQ(r.scanned, bench.data.size());
}

TEST(ZOrderTest, PageCountMatchesPageSize) {
  Benchmark bench = MakeUniformBenchmark(3, 10000, 65, 5);
  ZOrderIndex::Options options;
  options.page_size = 1000;
  ZOrderIndex index(bench.data, options);
  EXPECT_EQ(index.num_pages(), 10);
}

TEST(KdTreeTest, LeavesRespectPageSize) {
  Benchmark bench = MakeUniformBenchmark(3, 20000, 66, 5);
  KdTree::Options options;
  options.page_size = 512;
  KdTree index(bench.data, bench.workload, options);
  EXPECT_GE(index.num_leaves(), 20000 / 512);
  EXPECT_EQ(index.num_nodes(), 2 * index.num_leaves() - 1);
}

TEST(OctreeTest, HandlesDuplicateHeavyData) {
  // All rows identical: the tree must terminate and stay correct.
  Dataset data(2, {});
  for (int i = 0; i < 5000; ++i) data.AppendRow({7, 7});
  HyperOctree index(data);
  Query q;
  q.filters = {Predicate{0, 0, 10}};
  EXPECT_EQ(index.Execute(q).agg, 5000);
  q.filters = {Predicate{0, 8, 10}};
  EXPECT_EQ(index.Execute(q).agg, 0);
}

// Property sweep: every baseline matches the full scan on every dataset.
struct BaselineCase {
  int index_kind;  // 0 single-dim, 1 z-order, 2 octree, 3 kd-tree.
  int dataset;     // 0 tpch, 1 taxi, 2 perfmon, 3 stocks, 4 correlated.
};

class BaselineCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BaselineCorrectness, MatchesFullScan) {
  auto [kind, dataset] = GetParam();
  Benchmark bench;
  switch (dataset) {
    case 0: bench = MakeTpchBenchmark(6000, 71, 8); break;
    case 1: bench = MakeTaxiBenchmark(6000, 72, 8); break;
    case 2: bench = MakePerfmonBenchmark(6000, 73, 8); break;
    case 3: bench = MakeStocksBenchmark(6000, 74, 8); break;
    default: bench = MakeScalingBenchmark(6, 6000, true, 75, 8); break;
  }
  FullScanIndex reference(bench.data);
  std::unique_ptr<MultiDimIndex> index;
  switch (kind) {
    case 0:
      index = std::make_unique<SingleDimIndex>(bench.data, bench.workload);
      break;
    case 1: {
      ZOrderIndex::Options options;
      options.page_size = 512;
      index = std::make_unique<ZOrderIndex>(bench.data, options);
      break;
    }
    case 2: {
      HyperOctree::Options options;
      options.page_size = 512;
      index = std::make_unique<HyperOctree>(bench.data, options);
      break;
    }
    default: {
      KdTree::Options options;
      options.page_size = 512;
      index = std::make_unique<KdTree>(bench.data, bench.workload, options);
      break;
    }
  }
  for (const Query& q : bench.workload) {
    QueryResult expected = reference.Execute(q);
    QueryResult got = index->Execute(q);
    ASSERT_EQ(got.agg, expected.agg) << index->Name() << "/" << bench.name;
  }
  EXPECT_GE(index->IndexSizeBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineCorrectness,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 5)));

}  // namespace
}  // namespace tsunami
