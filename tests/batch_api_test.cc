// Randomized equivalence suite for the batched, multi-aggregate query API:
//  * ExecuteBatch over shuffled batches is bit-identical to per-query
//    Execute for every index (all baselines, Flood, Tsunami, the secondary
//    indexes, and the access-path router), across thread counts and scan
//    modes;
//  * Prepare + ExecutePlan equals Execute;
//  * one multi-aggregate pass equals N single-aggregate runs, down at the
//    scan-kernel level too;
//  * cancellation skips the remaining work and batch stats add up;
//  * the SQL engine's Prepare/RunBatch surface matches per-statement Run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/baselines/grid_file.h"
#include "src/baselines/kdtree.h"
#include "src/baselines/octree.h"
#include "src/baselines/qd_tree.h"
#include "src/baselines/rtree.h"
#include "src/baselines/single_dim.h"
#include "src/baselines/ub_tree.h"
#include "src/baselines/zm_index.h"
#include "src/baselines/zorder.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/exec/runner.h"
#include "src/exec/thread_pool.h"
#include "src/flood/flood.h"
#include "src/query/engine.h"
#include "src/query/router.h"
#include "src/secondary/secondary_index.h"

namespace tsunami {
namespace {

void ExpectBitIdentical(const QueryResult& got, const QueryResult& want,
                        const std::string& context) {
  EXPECT_EQ(got.agg, want.agg) << context;
  EXPECT_EQ(got.scanned, want.scanned) << context;
  EXPECT_EQ(got.matched, want.matched) << context;
  EXPECT_EQ(got.cell_ranges, want.cell_ranges) << context;
  ASSERT_EQ(got.extra.size(), want.extra.size()) << context;
  for (size_t i = 0; i < got.extra.size(); ++i) {
    EXPECT_EQ(got.extra[i], want.extra[i]) << context << " extra " << i;
  }
}

class BatchApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(71);
    const int64_t n = 16000;
    data_ = Dataset(3, {});
    data_.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      Value x = rng.UniformValue(0, 40000);
      data_.AppendRow(
          {x, x + rng.UniformValue(-300, 300), rng.UniformValue(0, 1000)});
    }
    // Mixed workload: varying filtered dimensions, aggregates, and
    // selectivities, including unfiltered and multi-aggregate queries.
    for (int i = 0; i < 48; ++i) {
      Query q;
      if (i % 5 != 4) {
        Value lo = rng.UniformValue(0, 36000);
        q.filters.push_back(Predicate{0, lo, lo + 3000});
      }
      if (i % 3 == 0) {
        q.filters.push_back(Predicate{2, 0, rng.UniformValue(100, 900)});
      }
      switch (i % 4) {
        case 0:
          q.SetAggregates({{AggKind::kCount, 0}});
          break;
        case 1:
          q.SetAggregates({{AggKind::kSum, 1}});
          break;
        case 2:
          q.SetAggregates({{AggKind::kMin, 2}});
          break;
        case 3:
          q.SetAggregates({{AggKind::kSum, 2},
                           {AggKind::kCount, 0},
                           {AggKind::kMin, 1},
                           {AggKind::kMax, 0}});
          break;
      }
      q.type = i % 2;
      workload_.push_back(q);
    }
  }

  struct Roster {
    std::vector<std::unique_ptr<MultiDimIndex>> indexes;
    std::unique_ptr<AccessPathRouter> router;

    std::vector<const MultiDimIndex*> All() const {
      std::vector<const MultiDimIndex*> all;
      for (const auto& index : indexes) all.push_back(index.get());
      if (router != nullptr) all.push_back(router.get());
      return all;
    }
  };

  Roster BuildRoster() const {
    Roster roster;
    auto& xs = roster.indexes;
    xs.push_back(std::make_unique<FullScanIndex>(data_));
    xs.push_back(std::make_unique<SingleDimIndex>(data_, workload_));
    xs.push_back(std::make_unique<ZOrderIndex>(data_, ZOrderIndex::Options()));
    xs.push_back(std::make_unique<HyperOctree>(data_, HyperOctree::Options()));
    xs.push_back(std::make_unique<KdTree>(data_, workload_));
    xs.push_back(
        std::make_unique<GridFileIndex>(data_, GridFileIndex::Options()));
    xs.push_back(std::make_unique<RTreeIndex>(data_, RTreeIndex::Options()));
    xs.push_back(std::make_unique<UbTreeIndex>(data_, UbTreeIndex::Options()));
    xs.push_back(std::make_unique<QdTreeIndex>(data_, workload_));
    xs.push_back(std::make_unique<ZmIndex>(data_, ZmIndex::Options()));
    xs.push_back(std::make_unique<FloodIndex>(data_, workload_));
    TsunamiOptions options;
    options.cluster_queries = false;
    xs.push_back(std::make_unique<TsunamiIndex>(data_, workload_, options));
    xs.push_back(std::make_unique<SortedSecondaryIndex>(data_, /*host_dim=*/0,
                                                        /*key_dim=*/2));
    xs.push_back(std::make_unique<CorrelationSecondaryIndex>(
        data_, /*host_dim=*/0, /*key_dim=*/1));
    roster.router = std::make_unique<AccessPathRouter>(
        std::vector<const MultiDimIndex*>{xs[0].get(), xs[1].get(),
                                          xs[12].get()},
        data_, workload_);
    return roster;
  }

  Dataset data_;
  Workload workload_;
};

TEST_F(BatchApiTest, ExecuteBatchMatchesPerQueryExecuteShuffled) {
  Roster roster = BuildRoster();
  Rng rng(72);
  for (const MultiDimIndex* index : roster.All()) {
    Workload shuffled = workload_;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextBelow(i)]);
    }
    for (int threads : {0, 4}) {
      ThreadPool pool(threads);
      for (ScanMode mode : {ScanMode::kSimd, ScanMode::kScalar}) {
        ExecContext ctx(&pool, ScanOptions{mode});
        std::vector<QueryResult> batch = RunWorkload(*index, shuffled, ctx);
        ASSERT_EQ(batch.size(), shuffled.size());
        for (size_t i = 0; i < shuffled.size(); ++i) {
          ExpectBitIdentical(batch[i], index->Execute(shuffled[i]),
                             index->Name() + " query " + std::to_string(i) +
                                 " threads " + std::to_string(threads));
        }
        EXPECT_EQ(ctx.stats.queries, static_cast<int64_t>(shuffled.size()));
      }
    }
  }
}

TEST_F(BatchApiTest, PrepareThenExecutePlanMatchesExecute) {
  Roster roster = BuildRoster();
  ThreadPool pool(2);
  for (const MultiDimIndex* index : roster.All()) {
    ExecContext ctx(&pool);
    for (size_t i = 0; i < workload_.size(); ++i) {
      QueryPlan plan = index->Prepare(workload_[i]);
      ExpectBitIdentical(index->ExecutePlan(plan, ctx),
                         index->Execute(workload_[i]),
                         index->Name() + " plan " + std::to_string(i));
    }
  }
}

TEST_F(BatchApiTest, MultiAggregateMatchesSingleAggregateRuns) {
  Roster roster = BuildRoster();
  std::vector<AggregateSpec> specs = {{AggKind::kSum, 1},
                                      {AggKind::kCount, 0},
                                      {AggKind::kMin, 0},
                                      {AggKind::kMax, 2},
                                      {AggKind::kAvg, 2}};
  Rng rng(73);
  for (const MultiDimIndex* index : roster.All()) {
    for (int trial = 0; trial < 6; ++trial) {
      Query multi;
      if (trial % 3 != 2) {
        Value lo = rng.UniformValue(0, 30000);
        multi.filters.push_back(Predicate{0, lo, lo + 5000});
      }
      if (trial % 2 == 0) {
        multi.filters.push_back(Predicate{2, 100, 800});
      }
      multi.SetAggregates(specs);
      QueryResult got = index->Execute(multi);
      for (size_t a = 0; a < specs.size(); ++a) {
        Query single = multi;
        single.SetAggregates({specs[a]});
        QueryResult want = index->Execute(single);
        EXPECT_EQ(got.agg_value(static_cast<int>(a)), want.agg)
            << index->Name() << " trial " << trial << " agg " << a;
        EXPECT_EQ(got.matched, want.matched) << index->Name();
      }
    }
  }
}

// Acceptance check at the kernel level: one scan pass produces
// SUM+COUNT+MIN+MAX simultaneously, equal to four single-aggregate passes,
// in every scan mode (scalar reference, branchless block kernel, SIMD).
TEST_F(BatchApiTest, KernelSinglePassComputesFourAggregates) {
  ColumnStore store(data_);
  Rng rng(74);
  std::vector<AggregateSpec> specs = {{AggKind::kSum, 1},
                                      {AggKind::kCount, 0},
                                      {AggKind::kMin, 2},
                                      {AggKind::kMax, 1}};
  for (int trial = 0; trial < 8; ++trial) {
    Query multi;
    Value lo = rng.UniformValue(0, 30000);
    multi.filters.push_back(Predicate{0, lo, lo + 8000});
    multi.SetAggregates(specs);
    int64_t begin = rng.NextBelow(store.size() / 2);
    int64_t end = begin + 1 + rng.NextBelow(store.size() - begin - 1);
    for (ScanMode mode :
         {ScanMode::kScalar, ScanMode::kVectorized, ScanMode::kSimd}) {
      for (bool exact : {false, true}) {
        QueryResult got = InitResult(multi);
        store.ScanRange(begin, end, multi, exact, &got, ScanOptions{mode});
        for (size_t a = 0; a < specs.size(); ++a) {
          Query single = multi;
          single.SetAggregates({specs[a]});
          QueryResult want = InitResult(single);
          store.ScanRange(begin, end, single, exact, &want,
                          ScanOptions{mode});
          EXPECT_EQ(got.agg_value(static_cast<int>(a)), want.agg)
              << "mode " << static_cast<int>(mode) << " exact " << exact
              << " agg " << a;
          EXPECT_EQ(got.matched, want.matched);
        }
      }
    }
  }
}

TEST_F(BatchApiTest, AggsListWithoutMirrorSyncStillCorrect) {
  // `aggs` is a public field; a caller may fill it directly and leave the
  // legacy `agg`/`agg_dim` mirror at its default. Init/merge/kernels must
  // all read kinds through agg_spec(0), not the mirror.
  Query q;
  q.aggs = {{AggKind::kMin, 1}, {AggKind::kSum, 2}};  // agg stays kCount.
  QueryResult init = InitResult(q);
  EXPECT_EQ(init.agg, kValueMax);  // MIN identity, not COUNT's 0.

  Query synced = q;
  synced.SetAggregates({{AggKind::kMin, 1}, {AggKind::kSum, 2}});
  FloodIndex index(data_, workload_);
  QueryResult want = index.Execute(synced);
  QueryResult got = index.Execute(q);
  EXPECT_EQ(got.agg, want.agg);
  ASSERT_EQ(got.extra.size(), want.extra.size());
  EXPECT_EQ(got.extra[0], want.extra[0]);

  // The parallel partial-merge path (MergeQueryResults over MIN) too: the
  // unfiltered 16k-row scan exceeds a 2-thread pool's inline threshold.
  ThreadPool pool(2);
  ExecContext ctx(&pool);
  QueryResult parallel = index.ExecutePlan(index.Prepare(q), ctx);
  EXPECT_EQ(parallel.agg, want.agg);
  EXPECT_EQ(parallel.extra[0], want.extra[0]);
}

TEST_F(BatchApiTest, CancelledContextSkipsRemainingQueries) {
  FullScanIndex index(data_);
  std::atomic<bool> cancel{true};  // Cancelled before the batch starts.
  ExecContext ctx;
  ctx.cancel = &cancel;
  std::vector<QueryResult> results = RunWorkload(index, workload_, ctx);
  ASSERT_EQ(results.size(), workload_.size());
  EXPECT_EQ(ctx.stats.queries, 0);
  for (size_t i = 0; i < results.size(); ++i) {
    ExpectBitIdentical(results[i], InitResult(workload_[i]), "cancelled");
  }
}

TEST_F(BatchApiTest, DeadlineStopsBatchAndSurvivesForking) {
  FullScanIndex index(data_);
  ExecContext ctx;
  ctx.deadline_seconds = 1e-9;  // Expires before the first query.
  std::vector<QueryResult> results = RunWorkload(index, workload_, ctx);
  ASSERT_EQ(results.size(), workload_.size());
  // The deadline must stop the batch early (executing every query would
  // mean ShouldStop never fired).
  EXPECT_LT(ctx.stats.queries, static_cast<int64_t>(workload_.size()));
  // Forked children inherit the *remaining* deadline — an expired parent
  // must hand out an immediately-expiring child, never 0 ("no deadline"),
  // so forwarding layers (router sub-batches, engine statements, pooled
  // workers) cannot restart the clock.
  EXPECT_TRUE(ctx.ShouldStop());
  ExecContext child = ctx.Fork();
  EXPECT_GT(child.deadline_seconds, 0.0);
  EXPECT_LE(child.deadline_seconds, ctx.deadline_seconds);
  // A deadline-free parent forks deadline-free children.
  ExecContext free_ctx;
  EXPECT_EQ(free_ctx.Fork().deadline_seconds, 0.0);
}

TEST_F(BatchApiTest, BatchStatsMatchPerQueryCounters) {
  FloodIndex index(data_, workload_);
  ThreadPool pool(3);
  ExecContext ctx(&pool);
  std::vector<QueryResult> results = RunWorkload(index, workload_, ctx);
  int64_t scanned = 0, matched = 0, ranges = 0;
  for (const QueryResult& r : results) {
    scanned += r.scanned;
    matched += r.matched;
    ranges += r.cell_ranges;
  }
  EXPECT_EQ(ctx.stats.queries, static_cast<int64_t>(workload_.size()));
  EXPECT_EQ(ctx.stats.scanned, scanned);
  EXPECT_EQ(ctx.stats.matched, matched);
  EXPECT_EQ(ctx.stats.cell_ranges, ranges);
  EXPECT_GE(ctx.stats.seconds, 0.0);
}

TEST_F(BatchApiTest, DeltaBufferCoveredByBatchPath) {
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data_, workload_, options);
  index.Insert({100, 150, 500});
  index.Insert({35000, 34800, 200});
  ThreadPool pool(2);
  ExecContext ctx(&pool);
  std::vector<QueryResult> batch = RunWorkload(index, workload_, ctx);
  for (size_t i = 0; i < workload_.size(); ++i) {
    ExpectBitIdentical(batch[i], index.Execute(workload_[i]),
                       "delta query " + std::to_string(i));
  }
}

TEST_F(BatchApiTest, EngineMultiAggregateAndRunBatch) {
  FullScanIndex index(data_);
  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {"a", "b", "c"};
  QueryEngine engine(&index, schema);

  // Multi-aggregate SELECT list: one pass equals the four single runs.
  SqlResult multi = engine.Run(
      "SELECT SUM(b), COUNT(*), MIN(a), MAX(c) FROM t WHERE a BETWEEN 1000 "
      "AND 20000 AND c <= 700");
  ASSERT_TRUE(multi.ok) << multi.error;
  ASSERT_EQ(multi.values.size(), 4u);
  const char* singles[] = {"SELECT SUM(b)", "SELECT COUNT(*)",
                           "SELECT MIN(a)", "SELECT MAX(c)"};
  for (int a = 0; a < 4; ++a) {
    SqlResult one = engine.Run(
        std::string(singles[a]) +
        " FROM t WHERE a BETWEEN 1000 AND 20000 AND c <= 700");
    ASSERT_TRUE(one.ok) << one.error;
    EXPECT_DOUBLE_EQ(multi.values[a], one.value) << a;
  }
  EXPECT_DOUBLE_EQ(multi.value, multi.values[0]);

  // Prepared batch equals per-statement Run, including disjunctive and
  // unsatisfiable statements.
  std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM t WHERE a < 5000",
      "SELECT SUM(c), AVG(c) FROM t WHERE b > 10000",
      "SELECT COUNT(*) FROM t WHERE a < 1000 OR c > 900",
      "SELECT MIN(b) FROM t WHERE a > 20000 AND a < 1000",
  };
  std::vector<PreparedStatement> stmts;
  for (const std::string& sql : sqls) stmts.push_back(engine.Prepare(sql));
  ThreadPool pool(2);
  ExecContext ctx(&pool);
  std::vector<SqlResult> batch = engine.RunBatch(stmts, ctx);
  ASSERT_EQ(batch.size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    SqlResult want = engine.Run(sqls[i]);
    ASSERT_EQ(batch[i].ok, want.ok) << sqls[i];
    EXPECT_DOUBLE_EQ(batch[i].value, want.value) << sqls[i];
    EXPECT_EQ(batch[i].stats.matched, want.stats.matched) << sqls[i];
  }

  // Too many aggregates is a parse error, not a crash.
  PreparedStatement overflow = engine.Prepare(
      "SELECT COUNT(*), COUNT(*), COUNT(*), COUNT(*), COUNT(*), COUNT(*), "
      "COUNT(*), COUNT(*), COUNT(*) FROM t");
  EXPECT_FALSE(overflow.ok);
}

TEST_F(BatchApiTest, CalibrationAcceptsForcedTier) {
  // The calibration path must honor forced scan options (the ScanOptions
  // plumbing gap): a forced-tier calibration runs that kernel and still
  // produces sane positive weights.
  CostWeights simd = CalibrateCostWeights(ScanOptions{ScanMode::kSimd});
  CostWeights scalar = CalibrateCostWeights(ScanOptions{ScanMode::kScalar});
  EXPECT_GT(simd.w0, 0.0);
  EXPECT_GT(simd.w1, 0.0);
  EXPECT_GT(scalar.w0, 0.0);
  EXPECT_GT(scalar.w1, 0.0);
  ExecContext ctx;
  ctx.scan = ScanOptions{ScanMode::kVectorized};
  CostWeights vec = CalibrateCostWeights(ctx);
  EXPECT_GT(vec.w1, 0.0);
}

}  // namespace
}  // namespace tsunami
