// Tests for categorical co-access reordering (§8 "Categorical dimensions").
#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/storage/categorical.h"

namespace tsunami {
namespace {

TEST(CoAccessOrderTest, CoAccessedValuesBecomeAdjacent) {
  // Queries access {0, 7} together and {3, 9} together.
  std::vector<std::vector<Value>> sets = {{0, 7}, {0, 7}, {3, 9}, {3, 9}};
  std::vector<Value> order = CoAccessOrder(10, sets);
  std::vector<Value> new_code = InvertOrder(order);
  EXPECT_EQ(std::abs(new_code[0] - new_code[7]), 1);
  EXPECT_EQ(std::abs(new_code[3] - new_code[9]), 1);
  EXPECT_EQ(OrderFragmentation(sets, new_code), 0);
}

TEST(CoAccessOrderTest, AlphabeticOrderIsFragmented) {
  std::vector<std::vector<Value>> sets = {{0, 7}, {0, 7}, {3, 9}, {3, 9}};
  std::vector<Value> identity(10);
  for (Value v = 0; v < 10; ++v) identity[v] = v;
  // {0,7} spans 8 codes for 2 values; {3,9} spans 7 codes for 2 values.
  EXPECT_EQ(OrderFragmentation(sets, identity), 2 * 6 + 2 * 5);
}

TEST(CoAccessOrderTest, OrderIsAPermutation) {
  Rng rng(501);
  std::vector<std::vector<Value>> sets;
  for (int i = 0; i < 50; ++i) {
    std::vector<Value> set;
    for (int j = 0; j < 3; ++j) {
      set.push_back(static_cast<Value>(rng.NextBelow(40)));
    }
    sets.push_back(set);
  }
  std::vector<Value> order = CoAccessOrder(40, sets);
  ASSERT_EQ(order.size(), 40u);
  std::vector<char> seen(40, 0);
  for (Value v : order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 40);
    ASSERT_FALSE(seen[v]) << "duplicate " << v;
    seen[v] = 1;
  }
}

TEST(CoAccessOrderTest, UnaccessedValuesKeepRelativeOrder) {
  std::vector<std::vector<Value>> sets = {{5, 6}};
  std::vector<Value> order = CoAccessOrder(8, sets);
  // 5 and 6 lead; 0,1,2,3,4,7 follow in original order.
  std::vector<Value> tail(order.begin() + 2, order.end());
  EXPECT_EQ(tail, (std::vector<Value>{0, 1, 2, 3, 4, 7}));
}

TEST(CoAccessOrderTest, ChainKeepsStrongPairsAdjacent) {
  // 0-1 strong, 1-2 strong, 2-3 strong: every strongly co-accessed pair
  // must end up adjacent (the exact chain orientation is free).
  std::vector<std::vector<Value>> sets;
  for (int i = 0; i < 10; ++i) sets.push_back({0, 1});
  for (int i = 0; i < 9; ++i) sets.push_back({1, 2});
  for (int i = 0; i < 8; ++i) sets.push_back({2, 3});
  std::vector<Value> new_code = InvertOrder(CoAccessOrder(4, sets));
  EXPECT_EQ(std::abs(new_code[0] - new_code[1]), 1);
  EXPECT_LE(std::abs(new_code[1] - new_code[2]), 2);
  EXPECT_LE(std::abs(new_code[2] - new_code[3]), 2);
  EXPECT_LE(OrderFragmentation(sets, new_code), 10);
}

TEST(CoAccessOrderTest, RemapAndQueryEndToEnd) {
  // A categorical "ship mode" column where queries co-access modes {2, 5}.
  // After reordering, a single range predicate covers exactly those modes
  // and an index over the remapped data answers it with fewer scans.
  Rng rng(502);
  Dataset data(2, {});
  for (int i = 0; i < 20000; ++i) {
    data.AppendRow({static_cast<Value>(rng.NextBelow(7)),
                    rng.UniformValue(0, 1000000)});
  }
  std::vector<std::vector<Value>> sets(40, std::vector<Value>{2, 5});
  std::vector<Value> new_code = InvertOrder(CoAccessOrder(7, sets));
  Dataset remapped = data;
  RemapColumn(&remapped, 0, new_code);

  // The covering range over the remapped codes selects exactly {2, 5}.
  Predicate range = CoveringRange(0, {2, 5}, new_code);
  EXPECT_EQ(range.hi - range.lo, 1);
  int64_t expected = 0;
  for (int64_t r = 0; r < data.size(); ++r) {
    Value v = data.at(r, 0);
    expected += v == 2 || v == 5;
  }
  FullScanIndex reference(remapped);
  Query q;
  q.filters = {range};
  EXPECT_EQ(reference.Execute(q).agg, expected);
}

}  // namespace
}  // namespace tsunami
