// Tests for the CDF models: monotonicity, equi-depth partition balance,
// RMI accuracy, and conditional-CDF semantics.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/cdf/cdf_model.h"
#include "src/cdf/conditional_cdf.h"
#include "src/common/random.h"

namespace tsunami {
namespace {

std::vector<Value> SkewedColumn(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> column(n);
  for (int i = 0; i < n; ++i) {
    column[i] = static_cast<Value>(rng.NextExponential(1e-5));
  }
  return column;
}

TEST(EquiDepthCdfTest, MonotoneAndBounded) {
  auto model = EquiDepthCdf::Build(SkewedColumn(20000, 91), 256);
  double prev = -1.0;
  for (Value v = -1000; v < 2000000; v += 997) {
    double c = model->Cdf(v);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(EquiDepthCdfTest, PartitionsAreBalanced) {
  std::vector<Value> column = SkewedColumn(40000, 92);
  auto model = EquiDepthCdf::Build(column, 512);
  const int p = 16;
  std::vector<int64_t> counts(p, 0);
  for (Value v : column) ++counts[model->PartitionOf(v, p)];
  int64_t expected = static_cast<int64_t>(column.size()) / p;
  for (int64_t c : counts) {
    EXPECT_GT(c, expected / 2);
    EXPECT_LT(c, expected * 2);
  }
}

TEST(EquiDepthCdfTest, PartitionRangeBracketsMatchingValues) {
  std::vector<Value> column = SkewedColumn(20000, 93);
  auto model = EquiDepthCdf::Build(column, 256);
  const int p = 13;
  Rng rng(94);
  for (int trial = 0; trial < 200; ++trial) {
    Value lo = rng.UniformValue(0, 300000);
    Value hi = lo + rng.UniformValue(0, 300000);
    auto [l, h] = model->PartitionRange(lo, hi, p);
    ASSERT_LE(l, h);
    for (Value v : {lo, (lo + hi) / 2, hi}) {
      int part = model->PartitionOf(v, p);
      EXPECT_GE(part, l);
      EXPECT_LE(part, h);
    }
  }
}

TEST(EquiDepthCdfTest, DuplicateHeavyColumn) {
  std::vector<Value> column(10000, 42);
  for (int i = 0; i < 100; ++i) column.push_back(43);
  auto model = EquiDepthCdf::Build(column, 64);
  // All duplicates of 42 must land in one partition.
  EXPECT_EQ(model->PartitionOf(42, 8), model->PartitionOf(42, 8));
  EXPECT_LE(model->Cdf(42), 0.01);
  EXPECT_GT(model->Cdf(44), 0.99);
}

TEST(EquiDepthCdfTest, EmptyColumn) {
  auto model = EquiDepthCdf::Build({}, 16);
  int part = model->PartitionOf(5, 4);
  EXPECT_GE(part, 0);  // Degenerate model still clamps into range.
  EXPECT_LT(part, 4);
}

TEST(RmiCdfTest, MonotoneAndAccurate) {
  std::vector<Value> column = SkewedColumn(50000, 95);
  auto model = RmiCdf::Build(column, 128);
  std::vector<Value> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  double prev = -1.0;
  double max_err = 0.0;
  for (size_t i = 0; i < sorted.size(); i += 97) {
    double c = model->Cdf(sorted[i]);
    EXPECT_GE(c, prev - 1e-12);
    prev = std::max(prev, c);
    double truth = static_cast<double>(i) / sorted.size();
    max_err = std::max(max_err, std::abs(c - truth));
  }
  EXPECT_LT(max_err, 0.05);  // A 128-leaf RMI should be within 5%.
}

TEST(RmiCdfTest, SmallerThanData) {
  std::vector<Value> column = SkewedColumn(50000, 96);
  auto model = RmiCdf::Build(column, 64);
  EXPECT_LT(model->SizeBytes(),
            static_cast<int64_t>(column.size()) * 8 / 10);
}

TEST(ConditionalCdfTest, PerBasePartitionsAreBalanced) {
  // Y strongly depends on X: y ~ x + noise.
  Rng rng(97);
  const int n = 30000, pb = 8, pd = 8;
  std::vector<Value> xs(n), ys(n);
  std::vector<int> base(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = rng.UniformValue(0, 79999);
    ys[i] = xs[i] + rng.UniformValue(-2000, 2000);
    base[i] = static_cast<int>(xs[i] / 10000);
  }
  ConditionalCdf ccdf = ConditionalCdf::Build(
      n, pb, pd, [&](int64_t i) { return base[i]; },
      [&](int64_t i) { return ys[i]; });
  std::vector<std::vector<int64_t>> counts(pb, std::vector<int64_t>(pd, 0));
  for (int i = 0; i < n; ++i) ++counts[base[i]][ccdf.PartitionOf(base[i], ys[i])];
  for (int bp = 0; bp < pb; ++bp) {
    int64_t total = 0;
    for (int64_t c : counts[bp]) total += c;
    for (int64_t c : counts[bp]) {
      EXPECT_GT(c, total / pd / 3);
      EXPECT_LT(c, total / pd * 3);
    }
  }
}

TEST(ConditionalCdfTest, EmptyRangeDetection) {
  // Base partition 0 holds ys in [0, 100); partition 1 ys in [1000, 1100).
  const int n = 2000;
  std::vector<Value> ys(n);
  for (int i = 0; i < n; ++i) {
    ys[i] = i < n / 2 ? i % 100 : 1000 + i % 100;
  }
  ConditionalCdf ccdf = ConditionalCdf::Build(
      n, 2, 4, [&](int64_t i) { return i < n / 2 ? 0 : 1; },
      [&](int64_t i) { return ys[i]; });
  // A filter over [500, 900] touches no points of either base partition:
  // the "guaranteed no points" skip of Fig. 6.
  auto [l0, h0] = ccdf.PartitionRange(0, 500, 900);
  EXPECT_GT(l0, h0);
  auto [l1, h1] = ccdf.PartitionRange(1, 500, 900);
  EXPECT_GT(l1, h1);
  // A filter over [0, 2000] intersects everything.
  auto [l2, h2] = ccdf.PartitionRange(0, 0, 2000);
  EXPECT_EQ(l2, 0);
  EXPECT_EQ(h2, 3);
}

TEST(ConditionalCdfTest, CoversPartitionSemantics) {
  const int n = 1000;
  ConditionalCdf ccdf = ConditionalCdf::Build(
      n, 1, 2, [](int64_t) { return 0; },
      [](int64_t i) { return static_cast<Value>(i); });
  // Partition 0 covers [0, 500), partition 1 covers [500, 999].
  EXPECT_TRUE(ccdf.CoversPartition(0, 0, 0, 499));
  EXPECT_FALSE(ccdf.CoversPartition(0, 0, 1, 499));
  EXPECT_TRUE(ccdf.CoversPartition(0, 1, 500, 999));
  EXPECT_FALSE(ccdf.CoversPartition(0, 1, 500, 998));
}

TEST(ConditionalCdfTest, EmptyBasePartition) {
  ConditionalCdf ccdf = ConditionalCdf::Build(
      100, 4, 4, [](int64_t) { return 1; },  // Everything in base part 1.
      [](int64_t i) { return static_cast<Value>(i); });
  auto [l, h] = ccdf.PartitionRange(0, 0, 1000);  // Empty base partition.
  EXPECT_GT(l, h);
  EXPECT_GT(ccdf.SizeBytes(), 0);
}

}  // namespace
}  // namespace tsunami
