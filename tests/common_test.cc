// Tests for src/common: RNG determinism and distributions, summary stats,
// mass histograms, Earth Mover's Distance, and bounded linear regression.
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/emd.h"
#include "src/common/histogram.h"
#include "src/common/linear_model.h"
#include "src/common/random.h"
#include "src/common/stats.h"

namespace tsunami {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t n = 1 + rng.Next() % 1000;
    EXPECT_LT(rng.NextBelow(n), n);
  }
}

TEST(RngTest, UniformValueCoversInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    Value v = rng.UniformValue(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(4);
  int64_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 1.2) < 100) ++low;
  }
  // A zipf(1.2) draw over [0,1000) lands in the first decile far more than
  // uniformly.
  EXPECT_GT(low, n / 4);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 2.5);
}

TEST(StatsTest, PearsonDetectsPerfectAndNoCorrelation) {
  std::vector<double> xs, ys, zs;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    double x = rng.NextDouble();
    xs.push_back(x);
    ys.push_back(3.0 * x + 1.0);
    zs.push_back(rng.NextDouble());
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-9);
  EXPECT_NEAR(PearsonCorrelation(xs, zs), 0.0, 0.05);
  EXPECT_EQ(PearsonCorrelation(xs, std::vector<double>(xs.size(), 2.0)), 0.0);
}

TEST(HistogramTest, RangeMassSpreadsOverBins) {
  MassHistogram h(0, 99, 10);  // Bins of width 10.
  h.AddRangeMass(0, 29);       // Bins 0..2, 1/3 each.
  EXPECT_NEAR(h.mass()[0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(h.mass()[2], 1.0 / 3, 1e-12);
  EXPECT_NEAR(h.mass()[3], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.total_mass(), 1.0);
}

TEST(HistogramTest, MassConservedUnderClipping) {
  MassHistogram h(0, 99, 10);
  h.AddRangeMass(-50, 9);  // Clipped to bin 0.
  EXPECT_DOUBLE_EQ(h.mass()[0], 1.0);
  h.AddRangeMass(200, 300);  // Entirely outside: contributes no mass.
  EXPECT_DOUBLE_EQ(h.total_mass(), 1.0);
  EXPECT_DOUBLE_EQ(h.MassInBins(0, 10), 1.0);
}

TEST(HistogramTest, PerUniqueValueBins) {
  MassHistogram h(std::vector<Value>{5, 10, 20});
  EXPECT_EQ(h.bins(), 3);
  EXPECT_TRUE(h.per_unique_value());
  EXPECT_EQ(h.BinOf(5), 0);
  EXPECT_EQ(h.BinOf(12), 1);  // Falls into the bin starting at 10.
  EXPECT_EQ(h.BinOf(20), 2);
  EXPECT_EQ(h.BinLo(1), 10);
}

TEST(HistogramTest, BinBoundariesPartitionDomain) {
  MassHistogram h(0, 1000, 7);
  for (int b = 0; b < h.bins(); ++b) {
    EXPECT_LT(h.BinLo(b), h.BinHi(b));
    if (b > 0) EXPECT_EQ(h.BinLo(b), h.BinHi(b - 1));
    for (Value v = h.BinLo(b); v < h.BinHi(b); v += 37) {
      EXPECT_EQ(h.BinOf(v), b);
    }
  }
}

TEST(EmdTest, IdenticalDistributionsHaveZeroDistance) {
  std::vector<double> p = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Emd(p, p), 0.0);
}

TEST(EmdTest, KnownTransport) {
  // Move unit mass across 3 of 4 bins: work = 1 * (3/4).
  std::vector<double> p = {1, 0, 0, 0};
  std::vector<double> q = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(Emd(p, q), 0.75);
  EXPECT_DOUBLE_EQ(Emd(q, p), 0.75);  // Symmetry.
}

TEST(EmdTest, RescalesUnbalancedMass) {
  std::vector<double> p = {2, 0};
  std::vector<double> q = {0, 1};  // Scaled to {0, 2}.
  EXPECT_DOUBLE_EQ(Emd(p, q), 1.0);  // 2 units across half the range.
}

TEST(SkewTest, UniformMassHasZeroSkew) {
  std::vector<double> uniform(16, 0.5);
  EXPECT_DOUBLE_EQ(SkewOfMass(uniform), 0.0);
}

TEST(SkewTest, ConcentratedMassHasHighSkew) {
  std::vector<double> pdf(16, 0.0);
  pdf[15] = 8.0;
  double skew = SkewOfMass(pdf);
  EXPECT_GT(skew, 3.0);   // Almost all mass moved across the range.
  EXPECT_LE(skew, 8.0);   // Bounded by total mass.
}

TEST(SkewTest, SingleBinRangeHasZeroSkew) {
  std::vector<double> pdf = {5.0, 1.0};
  EXPECT_DOUBLE_EQ(SkewOfMassRange(pdf, 0, 1), 0.0);
}

TEST(SkewTest, SplittingSkewedRangeReducesSkew) {
  // Two internally-uniform halves at different levels: splitting at the
  // midpoint removes all skew.
  std::vector<double> pdf = {4, 4, 4, 4, 1, 1, 1, 1};
  double whole = SkewOfMass(pdf);
  double parts = SkewOfMassRange(pdf, 0, 4) + SkewOfMassRange(pdf, 4, 8);
  EXPECT_GT(whole, 0.0);
  EXPECT_DOUBLE_EQ(parts, 0.0);
}

TEST(LinearModelTest, ExactFitHasZeroErrorBand) {
  std::vector<Value> ys, xs;
  for (Value y = 0; y < 100; ++y) {
    ys.push_back(y);
    xs.push_back(2 * y + 5);
  }
  BoundedLinearModel m = BoundedLinearModel::Fit(ys, xs);
  EXPECT_NEAR(m.slope(), 2.0, 1e-9);
  EXPECT_NEAR(m.intercept(), 5.0, 1e-9);
  EXPECT_NEAR(m.ErrorBandWidth(), 0.0, 1e-6);
}

TEST(LinearModelTest, BoundsCoverAllTrainingPoints) {
  Rng rng(6);
  std::vector<Value> ys, xs;
  for (int i = 0; i < 2000; ++i) {
    Value y = rng.UniformValue(0, 1000000);
    ys.push_back(y);
    xs.push_back(y / 3 + rng.UniformValue(-500, 500));
  }
  BoundedLinearModel m = BoundedLinearModel::Fit(ys, xs);
  for (size_t i = 0; i < ys.size(); ++i) {
    auto [lo, hi] = m.MapRange(ys[i], ys[i]);
    EXPECT_LE(lo, xs[i]);
    EXPECT_GE(hi, xs[i]);
  }
}

TEST(LinearModelTest, NegativeSlopeRangeMapping) {
  std::vector<Value> ys, xs;
  for (Value y = 0; y < 50; ++y) {
    ys.push_back(y);
    xs.push_back(100 - 2 * y);
  }
  BoundedLinearModel m = BoundedLinearModel::Fit(ys, xs);
  auto [lo, hi] = m.MapRange(10, 20);
  EXPECT_LE(lo, 60);  // x(20) = 60.
  EXPECT_GE(hi, 80);  // x(10) = 80.
}

TEST(LinearModelTest, ConstantYPredictsMeanX) {
  std::vector<Value> ys(10, 7), xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  BoundedLinearModel m = BoundedLinearModel::Fit(ys, xs);
  EXPECT_DOUBLE_EQ(m.slope(), 0.0);
  EXPECT_NEAR(m.Predict(7), 5.5, 1e-9);
  auto [lo, hi] = m.MapRange(7, 7);
  EXPECT_LE(lo, 1);
  EXPECT_GE(hi, 10);
}

}  // namespace
}  // namespace tsunami
