// Cross-index consistency: every index in the library — learned and
// non-learned, including the related-work baselines — must return identical
// answers to a full scan on the same randomized data and queries, for every
// aggregate kind. This is the library's strongest end-to-end invariant.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/baselines/grid_file.h"
#include "src/baselines/kdtree.h"
#include "src/baselines/octree.h"
#include "src/baselines/qd_tree.h"
#include "src/baselines/rtree.h"
#include "src/baselines/single_dim.h"
#include "src/baselines/ub_tree.h"
#include "src/baselines/zm_index.h"
#include "src/baselines/zorder.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/flood/flood.h"
#include "src/secondary/secondary_index.h"

namespace tsunami {
namespace {

/// Dataset with a mix of correlation patterns: d0 uniform, d1 tightly
/// linear in d0, d2 loosely correlated with d0, d3 low-cardinality, d4
/// heavy-tailed. Exercises every partitioning strategy.
Benchmark MakeMixedBenchmark(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  Benchmark bench;
  bench.name = "mixed";
  bench.data = Dataset(5, {});
  bench.data.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    Value d0 = rng.UniformValue(0, 1000000);
    Value d1 = 3 * d0 + rng.UniformValue(-500, 500);
    Value d2 = d0 / 2 + rng.UniformValue(-200000, 200000);
    Value d3 = rng.UniformValue(0, 8);
    Value d4 = static_cast<Value>(rng.NextExponential(1e-4));
    bench.data.AppendRow({d0, d1, d2, d3, d4});
  }
  // Two skewed query types plus one uniform type.
  for (int i = 0; i < 90; ++i) {
    Query q;
    switch (i % 3) {
      case 0: {  // Narrow recent-d0 ranges.
        Value lo = rng.UniformValue(900000, 990000);
        q.filters = {Predicate{0, lo, lo + 10000}};
        break;
      }
      case 1: {  // Equality on the categorical dim + a d1 range.
        Value lo = rng.UniformValue(0, 2500000);
        q.filters = {Predicate{3, rng.UniformValue(0, 8),
                               rng.UniformValue(0, 8)},
                     Predicate{1, lo, lo + 400000}};
        break;
      }
      default: {  // Wide ranges over the loose/heavy dims.
        Value lo = rng.UniformValue(0, 500000);
        q.filters = {Predicate{2, lo, lo + 250000},
                     Predicate{4, 0, rng.UniformValue(1000, 60000)}};
        break;
      }
    }
    if (q.filters.front().lo > q.filters.front().hi) {
      std::swap(q.filters.front().lo, q.filters.front().hi);
    }
    q.type = i % 3;
    bench.workload.push_back(q);
  }
  return bench;
}

std::vector<std::unique_ptr<MultiDimIndex>> BuildAll(const Benchmark& bench) {
  std::vector<std::unique_ptr<MultiDimIndex>> indexes;
  indexes.push_back(std::make_unique<FullScanIndex>(bench.data));
  indexes.push_back(
      std::make_unique<SingleDimIndex>(bench.data, bench.workload));
  {
    ZOrderIndex::Options options;
    options.page_size = 1024;
    indexes.push_back(std::make_unique<ZOrderIndex>(bench.data, options));
  }
  {
    HyperOctree::Options options;
    options.page_size = 1024;
    indexes.push_back(std::make_unique<HyperOctree>(bench.data, options));
  }
  {
    KdTree::Options options;
    options.page_size = 1024;
    indexes.push_back(
        std::make_unique<KdTree>(bench.data, bench.workload, options));
  }
  {
    RTreeIndex::Options options;
    options.page_size = 1024;
    indexes.push_back(std::make_unique<RTreeIndex>(bench.data, options));
  }
  {
    GridFileIndex::Options options;
    options.target_cell_rows = 1024;
    indexes.push_back(std::make_unique<GridFileIndex>(bench.data, options));
  }
  {
    UbTreeIndex::Options options;
    options.page_size = 1024;
    indexes.push_back(std::make_unique<UbTreeIndex>(bench.data, options));
  }
  indexes.push_back(std::make_unique<ZmIndex>(bench.data));
  {
    QdTreeIndex::Options options;
    options.min_leaf_rows = 1024;
    indexes.push_back(
        std::make_unique<QdTreeIndex>(bench.data, bench.workload, options));
  }
  // Secondary indexes over the d0-clustered table, keyed on correlated d1.
  indexes.push_back(std::make_unique<SortedSecondaryIndex>(
      bench.data, /*host_dim=*/0, /*key_dim=*/1));
  indexes.push_back(std::make_unique<CorrelationSecondaryIndex>(
      bench.data, /*host_dim=*/0, /*key_dim=*/1));
  {
    FloodOptions options;
    options.agd.max_iters = 2;
    indexes.push_back(
        std::make_unique<FloodIndex>(bench.data, bench.workload, options));
  }
  {
    TsunamiOptions options;
    options.cluster_queries = false;
    options.agd.max_iters = 2;
    indexes.push_back(
        std::make_unique<TsunamiIndex>(bench.data, bench.workload, options));
  }
  return indexes;
}

class ConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyTest, AllIndexesAgreeWithFullScanOnAllAggregates) {
  Benchmark bench = MakeMixedBenchmark(20000, GetParam());
  std::vector<std::unique_ptr<MultiDimIndex>> indexes = BuildAll(bench);
  ColumnStore reference(bench.data);

  // Workload queries plus adversarial ones: empty ranges, full-domain
  // ranges, point queries outside the domain.
  Workload probes = bench.workload;
  {
    Query q;
    q.filters = {Predicate{0, 500, 400}};  // Empty range.
    probes.push_back(q);
    q.filters = {Predicate{0, kValueMin, kValueMax}};  // Everything.
    probes.push_back(q);
    q.filters = {Predicate{4, -100, -1}};  // Entirely below the domain.
    probes.push_back(q);
    q.filters.clear();  // No filters at all.
    probes.push_back(q);
  }

  for (Query q : probes) {
    for (AggKind agg :
         {AggKind::kCount, AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
      q.agg = agg;
      q.agg_dim = 2;
      QueryResult want = ExecuteFullScan(reference, q);
      for (const auto& index : indexes) {
        QueryResult got = index->Execute(q);
        ASSERT_EQ(got.agg, want.agg)
            << index->Name() << " disagrees (agg kind "
            << static_cast<int>(agg) << ")";
        ASSERT_EQ(got.matched, want.matched) << index->Name();
        ASSERT_GE(got.scanned, 0) << index->Name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace tsunami
