// Tests for the dataset emulators: schema shape, documented correlations,
// workload selectivity ranges, and generator determinism (§6.2, §6.5).
#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/common/workload_stats.h"
#include "src/datasets/datasets.h"

namespace tsunami {
namespace {

double DimCorrelation(const Dataset& data, int x, int y) {
  std::vector<double> xs, ys;
  for (int64_t r = 0; r < data.size(); ++r) {
    xs.push_back(static_cast<double>(data.at(r, x)));
    ys.push_back(static_cast<double>(data.at(r, y)));
  }
  return PearsonCorrelation(xs, ys);
}

TEST(TaxiTest, SchemaAndCorrelations) {
  Benchmark bench = MakeTaxiBenchmark(20000, 1, 10);
  EXPECT_EQ(bench.data.dims(), 9);
  EXPECT_EQ(bench.data.size(), 20000);
  EXPECT_EQ(bench.num_query_types, 6);
  EXPECT_EQ(bench.workload.size(), 60u);
  // Documented correlations: dropoff ~ pickup, fare ~ distance, total ~ fare.
  EXPECT_GT(DimCorrelation(bench.data, 0, 1), 0.99);
  EXPECT_GT(DimCorrelation(bench.data, 3, 4), 0.8);
  EXPECT_GT(DimCorrelation(bench.data, 4, 6), 0.9);
}

TEST(TaxiTest, SelectivitiesInPaperRange) {
  Benchmark bench = MakeTaxiBenchmark(50000, 2, 30);
  // Paper: 0.25%..3.9% averaging 1.3%. Allow a generous band.
  double total = 0.0;
  for (const Query& q : bench.workload) {
    double sel = QuerySelectivity(bench.data, q);
    EXPECT_LT(sel, 0.12) << "query too wide";
    total += sel;
  }
  double avg = total / bench.workload.size();
  EXPECT_GT(avg, 0.001);
  EXPECT_LT(avg, 0.05);
}

TEST(PerfmonTest, SchemaAndCorrelations) {
  Benchmark bench = MakePerfmonBenchmark(20000, 3, 10);
  EXPECT_EQ(bench.data.dims(), 7);
  EXPECT_EQ(bench.num_query_types, 5);
  EXPECT_GT(DimCorrelation(bench.data, 2, 3), 0.8);  // cpu_sys ~ cpu_user.
  EXPECT_GT(DimCorrelation(bench.data, 4, 5), 0.9);  // load5 ~ load1.
}

TEST(StocksTest, SchemaAndTightPriceCorrelations) {
  Benchmark bench = MakeStocksBenchmark(20000, 4, 10);
  EXPECT_EQ(bench.data.dims(), 7);
  EXPECT_GT(DimCorrelation(bench.data, 1, 2), 0.99);  // close ~ open.
  EXPECT_GT(DimCorrelation(bench.data, 3, 4), 0.99);  // high ~ low.
  EXPECT_GT(DimCorrelation(bench.data, 2, 6), 0.8);   // adj ~ close, loose.
}

TEST(TpchTest, SchemaAndDateCorrelations) {
  Benchmark bench = MakeTpchBenchmark(20000, 5, 10);
  EXPECT_EQ(bench.data.dims(), 8);
  EXPECT_GT(DimCorrelation(bench.data, 5, 6), 0.99);  // commit ~ ship.
  EXPECT_GT(DimCorrelation(bench.data, 5, 7), 0.99);  // receipt ~ ship.
  EXPECT_GT(DimCorrelation(bench.data, 0, 1), 0.9);   // price ~ quantity.
  // Quantity in [1, 50]; discount in [0, 10]; mode in [0, 7).
  DimBounds bounds = ComputeBounds(bench.data);
  EXPECT_GE(bounds.lo[0], 1);
  EXPECT_LE(bounds.hi[0], 50);
  EXPECT_LE(bounds.hi[4], 6);
}

TEST(TpchTest, ShiftedWorkloadDiffersFromOriginal) {
  Benchmark bench = MakeTpchBenchmark(20000, 6, 10);
  Workload shifted = MakeTpchShiftedWorkload(bench.data, 7, 10);
  EXPECT_EQ(shifted.size(), 50u);
  // The shifted workload has bulk-order queries (quantity >= 45); the
  // original workload has none.
  auto bulk_queries = [](const Workload& w) {
    int count = 0;
    for (const Query& q : w) {
      const Predicate* p = q.FilterOn(0);
      count += p != nullptr && p->lo >= 45;
    }
    return count;
  };
  EXPECT_GT(bulk_queries(shifted), 0);
  EXPECT_EQ(bulk_queries(bench.workload), 0);
}

TEST(SyntheticTest, CorrelatedHalvesAreCorrelated) {
  Benchmark bench = MakeScalingBenchmark(8, 20000, true, 8, 10);
  EXPECT_EQ(bench.data.dims(), 8);
  // dim 4+j ~ dim j; strong for even target dims, loose for odd ones.
  EXPECT_GT(DimCorrelation(bench.data, 0, 4), 0.99);
  EXPECT_GT(DimCorrelation(bench.data, 1, 5), 0.9);
  EXPECT_LT(std::abs(DimCorrelation(bench.data, 0, 1)), 0.05);
}

TEST(SyntheticTest, UncorrelatedGroupIsIndependent) {
  Benchmark bench = MakeScalingBenchmark(8, 20000, false, 9, 10);
  EXPECT_LT(std::abs(DimCorrelation(bench.data, 0, 4)), 0.05);
}

TEST(SyntheticTest, SelectivityWorkloadHitsTarget) {
  Benchmark bench = MakeScalingBenchmark(8, 50000, true, 10, 10);
  for (double target : {0.001, 0.01, 0.1}) {
    Workload w = MakeSelectivityWorkload(bench.data, target, 11, 30);
    double total = 0.0;
    for (const Query& q : w) total += QuerySelectivity(bench.data, q);
    double avg = total / w.size();
    // Correlation distorts the product rule; stay within ~6x of target.
    EXPECT_GT(avg, target / 6) << target;
    EXPECT_LT(avg, target * 6) << target;
  }
}

TEST(GeneratorTest, Deterministic) {
  Benchmark a = MakeTaxiBenchmark(5000, 12, 5);
  Benchmark b = MakeTaxiBenchmark(5000, 12, 5);
  EXPECT_EQ(a.data.raw(), b.data.raw());
  ASSERT_EQ(a.workload.size(), b.workload.size());
  for (size_t i = 0; i < a.workload.size(); ++i) {
    ASSERT_EQ(a.workload[i].filters.size(), b.workload[i].filters.size());
    for (size_t f = 0; f < a.workload[i].filters.size(); ++f) {
      EXPECT_EQ(a.workload[i].filters[f].lo, b.workload[i].filters[f].lo);
      EXPECT_EQ(a.workload[i].filters[f].hi, b.workload[i].filters[f].hi);
    }
  }
}

TEST(GeneratorTest, AllBenchmarksProduceTypedWorkloads) {
  for (const Benchmark& bench : MakeAllBenchmarks(3000)) {
    EXPECT_GT(bench.num_query_types, 0) << bench.name;
    EXPECT_EQ(bench.dim_names.size(),
              static_cast<size_t>(bench.data.dims()));
    for (const Query& q : bench.workload) {
      EXPECT_GE(q.type, 0);
      EXPECT_LT(q.type, bench.num_query_types);
      EXPECT_FALSE(q.filters.empty());
      for (const Predicate& p : q.filters) {
        EXPECT_GE(p.dim, 0);
        EXPECT_LT(p.dim, bench.data.dims());
        EXPECT_LE(p.lo, p.hi);
      }
    }
  }
}

TEST(WorkloadBuilderTest, QuantilesAndWindows) {
  Dataset data(1, {});
  for (Value v = 0; v < 1000; ++v) data.AppendRow({v});
  ColumnQuantiles quant(data);
  EXPECT_NEAR(static_cast<double>(quant.Q(0, 0.5)), 500.0, 2.0);
  EXPECT_EQ(quant.Q(0, 0.0), 0);
  EXPECT_EQ(quant.Q(0, 1.0), 999);
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    Predicate p = quant.Window(0, 0.1, 0.5, 1.0, &rng);
    EXPECT_GE(p.lo, 480);
    EXPECT_LE(p.hi, 999);
    EXPECT_LE(p.lo, p.hi);
  }
}

}  // namespace
}  // namespace tsunami
