// Tests for disjunctive filter support (src/query/bool_expr.*): box
// subtraction, DNF normalization to disjoint boxes, the extended SQL
// grammar (OR / NOT / IN / != / <>), and union execution through the
// engine against brute-force evaluation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/tsunami.h"
#include "src/query/bool_expr.h"
#include "src/query/engine.h"
#include "src/query/sql_parser.h"

namespace tsunami {
namespace {

using Kind = BoolExpr::Kind;

Box MakeBox(std::vector<Value> lo, std::vector<Value> hi) {
  Box b;
  b.lo = std::move(lo);
  b.hi = std::move(hi);
  return b;
}

// Number of integer points of `box` inside the probe grid [0, n)^d.
int64_t GridVolume(const Box& box, int n) {
  int64_t v = 1;
  for (int d = 0; d < box.dims(); ++d) {
    Value lo = std::max<Value>(box.lo[d], 0);
    Value hi = std::min<Value>(box.hi[d], n - 1);
    if (lo > hi) return 0;
    v *= hi - lo + 1;
  }
  return v;
}

TEST(SubtractBoxTest, DisjointBoxesSurviveWhole) {
  Box a = MakeBox({0, 0}, {3, 3});
  Box b = MakeBox({5, 5}, {9, 9});
  std::vector<Box> out;
  SubtractBox(a, b, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], a);
}

TEST(SubtractBoxTest, ContainedBoxVanishes) {
  Box a = MakeBox({2, 2}, {5, 5});
  Box b = MakeBox({0, 0}, {9, 9});
  std::vector<Box> out;
  SubtractBox(a, b, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SubtractBoxTest, CenterHoleLeavesFourPieces2D) {
  Box a = MakeBox({0, 0}, {9, 9});
  Box b = MakeBox({3, 3}, {6, 6});
  std::vector<Box> out;
  SubtractBox(a, b, &out);
  ASSERT_EQ(out.size(), 4u);
  int64_t volume = 0;
  for (const Box& piece : out) volume += GridVolume(piece, 10);
  EXPECT_EQ(volume, 100 - 16);
}

// Property sweep: subtraction produces pairwise-disjoint pieces whose
// union is exactly a \ b, checked point-by-point on a small grid.
class SubtractFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SubtractFuzzTest, ExactDifferenceOnGrid) {
  constexpr int kGrid = 6;
  constexpr int kDims = 3;
  Rng rng(1000 + GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    auto random_box = [&] {
      Box box = Box::All(kDims);
      for (int d = 0; d < kDims; ++d) {
        Value x = rng.UniformValue(0, kGrid - 1);
        Value y = rng.UniformValue(0, kGrid - 1);
        box.lo[d] = std::min(x, y);
        box.hi[d] = std::max(x, y);
      }
      return box;
    };
    Box a = random_box(), b = random_box();
    std::vector<Box> pieces;
    SubtractBox(a, b, &pieces);
    std::vector<Value> point(kDims);
    for (point[0] = 0; point[0] < kGrid; ++point[0]) {
      for (point[1] = 0; point[1] < kGrid; ++point[1]) {
        for (point[2] = 0; point[2] < kGrid; ++point[2]) {
          int hits = 0;
          for (const Box& piece : pieces) hits += piece.Contains(point);
          int expect = a.Contains(point) && !b.Contains(point);
          ASSERT_LE(hits, 1) << "pieces overlap";
          ASSERT_EQ(hits, expect);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubtractFuzzTest, ::testing::Range(0, 4));

// Random expression trees normalize to disjoint boxes that cover exactly
// the matching points.
BoolExpr RandomExpr(Rng* rng, int dims, int grid, int depth) {
  if (depth == 0 || rng->NextBool(0.4)) {
    Predicate p;
    p.dim = static_cast<int>(rng->NextBelow(dims));
    Value x = rng->UniformValue(0, grid - 1);
    Value y = rng->UniformValue(0, grid - 1);
    p.lo = std::min(x, y);
    p.hi = std::max(x, y);
    return BoolExpr::Leaf(p);
  }
  switch (rng->NextBelow(3)) {
    case 0: {
      std::vector<BoolExpr> cs;
      int n = 2 + static_cast<int>(rng->NextBelow(2));
      for (int i = 0; i < n; ++i) {
        cs.push_back(RandomExpr(rng, dims, grid, depth - 1));
      }
      return BoolExpr::And(std::move(cs));
    }
    case 1: {
      std::vector<BoolExpr> cs;
      int n = 2 + static_cast<int>(rng->NextBelow(2));
      for (int i = 0; i < n; ++i) {
        cs.push_back(RandomExpr(rng, dims, grid, depth - 1));
      }
      return BoolExpr::Or(std::move(cs));
    }
    default:
      return BoolExpr::Not(RandomExpr(rng, dims, grid, depth - 1));
  }
}

class DnfFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DnfFuzzTest, DisjointBoxesMatchExpression) {
  constexpr int kGrid = 5;
  constexpr int kDims = 3;
  Rng rng(7000 + GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    BoolExpr expr = RandomExpr(&rng, kDims, kGrid, 3);
    NormalizeResult norm = ToDisjointBoxes(expr, kDims);
    ASSERT_TRUE(norm.ok) << norm.error << " for " << expr.ToString();
    std::vector<Value> point(kDims);
    for (point[0] = 0; point[0] < kGrid; ++point[0]) {
      for (point[1] = 0; point[1] < kGrid; ++point[1]) {
        for (point[2] = 0; point[2] < kGrid; ++point[2]) {
          int hits = 0;
          for (const Box& box : norm.boxes) hits += box.Contains(point);
          ASSERT_LE(hits, 1) << "boxes overlap for " << expr.ToString();
          ASSERT_EQ(hits, expr.Matches(point) ? 1 : 0)
              << expr.ToString() << " at point (" << point[0] << ","
              << point[1] << "," << point[2] << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfFuzzTest, ::testing::Range(0, 6));

TEST(DnfTest, UnsatisfiableYieldsNoBoxes) {
  // x <= 3 AND x >= 7.
  BoolExpr expr = BoolExpr::And(
      {BoolExpr::Leaf(Predicate{0, kValueMin, 3}),
       BoolExpr::Leaf(Predicate{0, 7, kValueMax})});
  NormalizeResult norm = ToDisjointBoxes(expr, 2);
  ASSERT_TRUE(norm.ok);
  EXPECT_TRUE(norm.boxes.empty());
}

TEST(DnfTest, TautologyYieldsAllSpace) {
  // x <= 3 OR x >= 1 covers everything.
  BoolExpr expr = BoolExpr::Or({BoolExpr::Leaf(Predicate{0, kValueMin, 3}),
                                BoolExpr::Leaf(Predicate{0, 1, kValueMax})});
  NormalizeResult norm = ToDisjointBoxes(expr, 1);
  ASSERT_TRUE(norm.ok);
  int64_t covered = 0;
  for (const Box& box : norm.boxes) {
    covered += GridVolume(box, 10);  // Probe grid [0,10).
  }
  EXPECT_EQ(covered, 10);
}

TEST(DnfTest, DoubleNegationIsIdentity) {
  Predicate p{1, 3, 8};
  BoolExpr expr = BoolExpr::Not(BoolExpr::Not(BoolExpr::Leaf(p)));
  NormalizeResult norm = ToDisjointBoxes(expr, 2);
  ASSERT_TRUE(norm.ok);
  ASSERT_EQ(norm.boxes.size(), 1u);
  EXPECT_EQ(norm.boxes[0].lo[1], 3);
  EXPECT_EQ(norm.boxes[0].hi[1], 8);
}

TEST(DnfTest, BlowupIsCappedCleanly) {
  // AND of many two-way ORs on distinct dims: 2^16 conjuncts.
  std::vector<BoolExpr> terms;
  for (int d = 0; d < 16; ++d) {
    terms.push_back(BoolExpr::Or({BoolExpr::Leaf(Predicate{d, 0, 1}),
                                  BoolExpr::Leaf(Predicate{d, 3, 4})}));
  }
  NormalizeLimits limits;
  limits.max_boxes = 1024;
  NormalizeResult norm =
      ToDisjointBoxes(BoolExpr::And(std::move(terms)), 16, limits);
  EXPECT_FALSE(norm.ok);
  EXPECT_NE(norm.error.find("1024"), std::string::npos);
}

// --- Extended SQL grammar ---

class DisjunctiveSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = Dataset(3, {});
    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
      data_.AppendRow({rng.UniformValue(0, 49), rng.UniformValue(0, 49),
                       rng.UniformValue(0, 9)});
    }
    index_ = std::make_unique<FullScanIndex>(data_);
    schema_.table_name = "t";
    schema_.columns = {"a", "b", "c"};
    engine_ = std::make_unique<QueryEngine>(index_.get(), schema_);
  }

  // Brute-force COUNT of rows matching `expr`.
  int64_t BruteCount(const BoolExpr& expr) const {
    int64_t n = 0;
    for (int64_t r = 0; r < data_.size(); ++r) {
      std::vector<Value> row = {data_.at(r, 0), data_.at(r, 1),
                                data_.at(r, 2)};
      n += expr.Matches(row);
    }
    return n;
  }

  Dataset data_;
  TableSchema schema_;
  std::unique_ptr<FullScanIndex> index_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(DisjunctiveSqlTest, OrDoesNotDoubleCountOverlap) {
  // The two ranges overlap on [10, 29]; the union must count each row once.
  SqlResult r = engine_->Run(
      "SELECT COUNT(*) FROM t WHERE a <= 29 OR a >= 10");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 500);
}

TEST_F(DisjunctiveSqlTest, ParsesAsDisjunctive) {
  ParseResult p = ParseSql("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2",
                           schema_);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_TRUE(p.disjunctive);
  ParseResult q = ParseSql(
      "SELECT COUNT(*) FROM t WHERE (a <= 5 AND b <= 5) AND c = 1", schema_);
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_FALSE(q.disjunctive) << "parenthesized conjunction stays flat";
  EXPECT_EQ(q.query.filters.size(), 3u);
}

TEST_F(DisjunctiveSqlTest, AndBindsTighterThanOr) {
  SqlResult got = engine_->Run(
      "SELECT COUNT(*) FROM t WHERE a <= 5 AND b <= 5 OR c = 1");
  ASSERT_TRUE(got.ok) << got.error;
  BoolExpr expect = BoolExpr::Or(
      {BoolExpr::And({BoolExpr::Leaf(Predicate{0, kValueMin, 5}),
                      BoolExpr::Leaf(Predicate{1, kValueMin, 5})}),
       BoolExpr::Leaf(Predicate{2, 1, 1})});
  EXPECT_EQ(got.value, BruteCount(expect));
}

TEST_F(DisjunctiveSqlTest, InList) {
  SqlResult got = engine_->Run("SELECT COUNT(*) FROM t WHERE c IN (1, 3, 5)");
  ASSERT_TRUE(got.ok) << got.error;
  BoolExpr expect = BoolExpr::Or({BoolExpr::Leaf(Predicate{2, 1, 1}),
                                  BoolExpr::Leaf(Predicate{2, 3, 3}),
                                  BoolExpr::Leaf(Predicate{2, 5, 5})});
  EXPECT_EQ(got.value, BruteCount(expect));
  EXPECT_GT(got.value, 0);
}

TEST_F(DisjunctiveSqlTest, NotInList) {
  SqlResult in = engine_->Run("SELECT COUNT(*) FROM t WHERE c IN (0, 9)");
  SqlResult not_in =
      engine_->Run("SELECT COUNT(*) FROM t WHERE c NOT IN (0, 9)");
  ASSERT_TRUE(in.ok && not_in.ok);
  EXPECT_EQ(in.value + not_in.value, 500);
}

TEST_F(DisjunctiveSqlTest, NotEqualsBothSpellings) {
  SqlResult ne1 = engine_->Run("SELECT COUNT(*) FROM t WHERE c != 4");
  SqlResult ne2 = engine_->Run("SELECT COUNT(*) FROM t WHERE c <> 4");
  SqlResult eq = engine_->Run("SELECT COUNT(*) FROM t WHERE c = 4");
  ASSERT_TRUE(ne1.ok && ne2.ok && eq.ok);
  EXPECT_EQ(ne1.value, ne2.value);
  EXPECT_EQ(ne1.value + eq.value, 500);
}

TEST_F(DisjunctiveSqlTest, NotBetween) {
  SqlResult inside =
      engine_->Run("SELECT COUNT(*) FROM t WHERE a BETWEEN 10 AND 20");
  SqlResult outside =
      engine_->Run("SELECT COUNT(*) FROM t WHERE a NOT BETWEEN 10 AND 20");
  ASSERT_TRUE(inside.ok && outside.ok);
  EXPECT_EQ(inside.value + outside.value, 500);
}

TEST_F(DisjunctiveSqlTest, NestedParenthesesAndNot) {
  SqlResult got = engine_->Run(
      "SELECT COUNT(*) FROM t WHERE NOT (a <= 9 OR (b >= 40 AND c = 2))");
  ASSERT_TRUE(got.ok) << got.error;
  BoolExpr expect = BoolExpr::Not(BoolExpr::Or(
      {BoolExpr::Leaf(Predicate{0, kValueMin, 9}),
       BoolExpr::And({BoolExpr::Leaf(Predicate{1, 40, kValueMax}),
                      BoolExpr::Leaf(Predicate{2, 2, 2})})}));
  EXPECT_EQ(got.value, BruteCount(expect));
}

TEST_F(DisjunctiveSqlTest, SumAndAvgAcrossUnion) {
  // SUM/AVG over a disjunction must equal the brute-force sum over
  // matching rows.
  BoolExpr expect = BoolExpr::Or({BoolExpr::Leaf(Predicate{0, 0, 9}),
                                  BoolExpr::Leaf(Predicate{1, 0, 9})});
  int64_t sum = 0, n = 0;
  for (int64_t r = 0; r < data_.size(); ++r) {
    std::vector<Value> row = {data_.at(r, 0), data_.at(r, 1), data_.at(r, 2)};
    if (expect.Matches(row)) {
      sum += data_.at(r, 2);
      ++n;
    }
  }
  SqlResult s =
      engine_->Run("SELECT SUM(c) FROM t WHERE a <= 9 OR b <= 9");
  SqlResult a =
      engine_->Run("SELECT AVG(c) FROM t WHERE a <= 9 OR b <= 9");
  ASSERT_TRUE(s.ok && a.ok);
  EXPECT_EQ(s.value, sum);
  ASSERT_GT(n, 0);
  EXPECT_DOUBLE_EQ(a.value, static_cast<double>(sum) / n);
}

TEST_F(DisjunctiveSqlTest, MinMaxAcrossUnion) {
  SqlResult lo = engine_->Run(
      "SELECT MIN(a) FROM t WHERE a BETWEEN 20 AND 25 OR a BETWEEN 5 AND 8");
  SqlResult hi = engine_->Run(
      "SELECT MAX(a) FROM t WHERE a BETWEEN 20 AND 25 OR a BETWEEN 5 AND 8");
  ASSERT_TRUE(lo.ok && hi.ok);
  EXPECT_GE(lo.value, 5);
  EXPECT_LE(lo.value, 8);
  EXPECT_GE(hi.value, 20);
  EXPECT_LE(hi.value, 25);
}

TEST_F(DisjunctiveSqlTest, SyntaxErrors) {
  EXPECT_FALSE(engine_->Run("SELECT COUNT(*) FROM t WHERE a NOT 5").ok);
  EXPECT_FALSE(engine_->Run("SELECT COUNT(*) FROM t WHERE a IN ()").ok);
  EXPECT_FALSE(engine_->Run("SELECT COUNT(*) FROM t WHERE (a = 1").ok);
  EXPECT_FALSE(engine_->Run("SELECT COUNT(*) FROM t WHERE a = 1 OR").ok);
  EXPECT_FALSE(engine_->Run("SELECT COUNT(*) FROM t WHERE OR a = 1").ok);
}

// Disjunctive SQL through a real Tsunami index must agree with FullScan.
TEST(DisjunctiveTsunamiTest, UnionThroughTsunamiMatchesFullScan) {
  Rng rng(1234);
  Dataset data(3, {});
  for (int i = 0; i < 4000; ++i) {
    Value x = rng.UniformValue(0, 999);
    data.AppendRow({x, x + rng.UniformValue(-20, 20),
                    rng.UniformValue(0, 99)});
  }
  Workload workload;
  for (int i = 0; i < 40; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900);
    q.filters = {Predicate{0, lo, lo + 60}};
    q.type = 0;
    workload.push_back(q);
  }
  TsunamiOptions opts;
  opts.sample_rows = 2000;
  TsunamiIndex tsunami(data, workload, opts);
  FullScanIndex full(data);

  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {"x", "y", "z"};
  QueryEngine et(&tsunami, schema);
  QueryEngine ef(&full, schema);
  const char* statements[] = {
      "SELECT COUNT(*) FROM t WHERE x <= 100 OR y >= 900",
      "SELECT SUM(z) FROM t WHERE x BETWEEN 50 AND 150 OR x BETWEEN 700 "
      "AND 800 OR z IN (3, 7)",
      "SELECT COUNT(*) FROM t WHERE NOT (x BETWEEN 100 AND 899)",
      "SELECT MAX(z) FROM t WHERE x <= 499 OR z NOT IN (1, 2, 3)",
      "SELECT AVG(y) FROM t WHERE x != 500",
  };
  for (const char* sql : statements) {
    SqlResult a = et.Run(sql);
    SqlResult b = ef.Run(sql);
    ASSERT_TRUE(a.ok) << sql << ": " << a.error;
    ASSERT_TRUE(b.ok) << sql << ": " << b.error;
    EXPECT_EQ(a.value, b.value) << sql;
    EXPECT_EQ(a.stats.matched, b.stats.matched) << sql;
  }
}

}  // namespace
}  // namespace tsunami
