// Cross-checks for the encoded-column layer: FOR + bit-width narrowed
// blocks must be bit-identical to raw blocks under every scan mode and
// SIMD tier — on unaligned/straddling/sub-width ranges, blocks that fall
// back to raw storage, and code-space bound-translation edge cases
// (including predicates empty after translation) — and must round-trip
// through serialization verbatim.
#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/storage/column_store.h"
#include "src/storage/encoded_column.h"
#include "src/storage/scan_kernel.h"
#include "src/storage/scan_kernel_simd.h"
#include "src/storage/simd_dispatch.h"

namespace tsunami {
namespace {

constexpr AggKind kAggs[] = {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                             AggKind::kMax, AggKind::kAvg};

void ExpectSameResult(const QueryResult& got, const QueryResult& want,
                      const char* what) {
  EXPECT_EQ(got.agg, want.agg) << what;
  EXPECT_EQ(got.scanned, want.scanned) << what;
  EXPECT_EQ(got.matched, want.matched) << what;
  EXPECT_EQ(got.cell_ranges, want.cell_ranges) << what;
  ASSERT_EQ(got.extra.size(), want.extra.size()) << what;
  for (size_t i = 0; i < got.extra.size(); ++i) {
    EXPECT_EQ(got.extra[i], want.extra[i]) << what << " extra " << i;
  }
}

// Mixed-codec data: consecutive blocks cycle through ranges that encode at
// 8, 16, and 32-bit codes plus ranges so wide they must stay raw, with
// negative frames of reference in the mix. `clustered` sorts nothing —
// block-local ranges are what decide codecs, and they are set per block.
Dataset MakeMixedWidthData(int64_t rows, int dims, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dims, {});
  std::vector<Value> row(dims);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t block = i / kScanBlockRows;
    for (int d = 0; d < dims; ++d) {
      // Each (block, dim) pair gets its own width class and base.
      switch ((block + d) % 4) {
        case 0:  // 8-bit codes, negative ref.
          row[d] = -5000 + rng.UniformValue(0, 200);
          break;
        case 1:  // 16-bit codes.
          row[d] = 1000 + rng.UniformValue(0, 50000);
          break;
        case 2:  // 32-bit codes.
          row[d] = -100000 + rng.UniformValue(0, int64_t{1} << 24);
          break;
        default:  // Raw fallback: range wider than 32-bit codes allow.
          row[d] = rng.NextBelow(2) == 0
                       ? kValueMin + rng.UniformValue(0, 1000)
                       : kValueMax - rng.UniformValue(0, 1000);
          break;
      }
    }
    data.AppendRow(row);
  }
  return data;
}

Query RandomQuery(Rng* rng, int dims, int num_filters, AggKind agg) {
  Query q;
  q.agg = agg;
  q.agg_dim = static_cast<int>(rng->NextBelow(dims));
  for (int f = 0; f < num_filters; ++f) {
    int dim = static_cast<int>(rng->NextBelow(dims));
    // Bounds spanning the width classes above, plus occasional extremes.
    Value lo;
    switch (rng->NextBelow(4)) {
      case 0:
        lo = -6000 + rng->UniformValue(0, 2000);
        break;
      case 1:
        lo = rng->UniformValue(0, 60000);
        break;
      case 2:
        lo = -200000 + rng->UniformValue(0, int64_t{1} << 24);
        break;
      default:
        lo = rng->NextBelow(2) == 0 ? kValueMin : kValueMax - 2000;
        break;
    }
    Value width = rng->NextBelow(4) == 0 ? rng->UniformValue(0, 100)
                                         : rng->UniformValue(0, int64_t{1}
                                                                    << 20);
    Value hi = (width > kValueMax - lo) ? kValueMax : lo + width;
    q.filters.push_back(Predicate{dim, lo, hi});
  }
  return q;
}

// --- Code-space bound translation ------------------------------------------

TEST(EncodedColumnTest, TranslateBoundsEdgeCases) {
  const uint64_t w8 = CodeDomainMax(1);
  // Fully below the block: empty before any clamping.
  EXPECT_EQ(TranslateToCodeSpace(-100, -1, 0, w8).state, CodeRange::kEmpty);
  // Fully above the code domain: empty after translation.
  EXPECT_EQ(TranslateToCodeSpace(256, 500, 0, w8).state, CodeRange::kEmpty);
  // Exactly the domain: the identity pass.
  EXPECT_EQ(TranslateToCodeSpace(0, 255, 0, w8).state, CodeRange::kAll);
  // Wider than the domain on both sides: still the identity.
  EXPECT_EQ(TranslateToCodeSpace(kValueMin, kValueMax, 0, w8).state,
            CodeRange::kAll);
  // Interior range translates with the ref subtracted.
  CodeRange cr = TranslateToCodeSpace(10, 20, 5, w8);
  EXPECT_EQ(cr.state, CodeRange::kCompare);
  EXPECT_EQ(cr.lo, 5u);
  EXPECT_EQ(cr.hi, 15u);
  // Upper bound clamps into the domain.
  cr = TranslateToCodeSpace(10, 100000, 5, w8);
  EXPECT_EQ(cr.state, CodeRange::kCompare);
  EXPECT_EQ(cr.lo, 5u);
  EXPECT_EQ(cr.hi, w8);
  // Equality at the block minimum / maximum code.
  cr = TranslateToCodeSpace(5, 5, 5, w8);
  EXPECT_EQ(cr.state, CodeRange::kCompare);
  EXPECT_EQ(cr.lo, 0u);
  EXPECT_EQ(cr.hi, 0u);
  // Negative ref near the int64 floor: offsets stay exact in uint64.
  cr = TranslateToCodeSpace(kValueMin + 3, kValueMin + 7, kValueMin,
                            CodeDomainMax(2));
  EXPECT_EQ(cr.state, CodeRange::kCompare);
  EXPECT_EQ(cr.lo, 3u);
  EXPECT_EQ(cr.hi, 7u);
  // Predicate at the int64 ceiling against a low ref: clamps, not wraps.
  cr = TranslateToCodeSpace(10, kValueMax, 0, CodeDomainMax(4));
  EXPECT_EQ(cr.state, CodeRange::kCompare);
  EXPECT_EQ(cr.lo, 10u);
  EXPECT_EQ(cr.hi, CodeDomainMax(4));
}

// --- Encode / decode / codec selection -------------------------------------

TEST(EncodedColumnTest, RoundTripsValuesAndPicksExpectedWidths) {
  Rng rng(7001);
  const int64_t rows = 4 * kScanBlockRows + 333;
  std::vector<Value> values(rows);
  for (int64_t i = 0; i < rows; ++i) {
    switch ((i / kScanBlockRows) % 5) {
      case 0:
        values[i] = 100 + rng.UniformValue(0, 255);  // u8.
        break;
      case 1:
        values[i] = -77 + rng.UniformValue(0, 40000);  // u16.
        break;
      case 2:
        values[i] = rng.UniformValue(0, int64_t{1} << 30);  // u32.
        break;
      case 3:
        values[i] = rng.NextBelow(2) == 0 ? kValueMin : kValueMax;  // Raw.
        break;
      default:
        values[i] = 42;  // Constant block: 8-bit, all-zero codes.
        break;
    }
  }
  EncodedColumn col;
  col.Encode(values, /*narrow=*/true);
  ASSERT_EQ(col.rows(), rows);
  ASSERT_EQ(col.num_blocks(), 5);
  for (int64_t i = 0; i < rows; ++i) {
    ASSERT_EQ(col.Get(i), values[i]) << "row " << i;
  }
  std::vector<Value> all = col.DecodeAll();
  EXPECT_EQ(all, values);
#if !defined(TSUNAMI_DISABLE_ENCODING)
  EXPECT_EQ(col.block(0).width, 1);
  EXPECT_EQ(col.block(1).width, 2);
  EXPECT_EQ(col.block(2).width, 4);
  EXPECT_EQ(col.block(3).width, 8);
  EXPECT_EQ(col.block(4).width, 1);
  int64_t widths[4] = {0, 0, 0, 0};
  col.WidthHistogram(widths);
  EXPECT_EQ(widths[0], 2);
  EXPECT_EQ(widths[1], 1);
  EXPECT_EQ(widths[2], 1);
  EXPECT_EQ(widths[3], 1);
  // Narrowing must actually shrink: 2 blocks at 1 B + 1 at 2 B + 1 at 4 B
  // + 1 raw block + metadata, against 8 B/row raw.
  EXPECT_LT(col.SizeBytes(), rows * static_cast<int64_t>(sizeof(Value)));
#endif
  // The raw-pinned encoding serves identical values.
  EncodedColumn raw;
  raw.Encode(values, /*narrow=*/false);
  EXPECT_EQ(raw.DecodeAll(), values);
  EXPECT_EQ(raw.block(0).width, 8);
}

TEST(EncodedColumnTest, SerializeRoundTrip) {
  Rng rng(7002);
  const int64_t rows = 3 * kScanBlockRows + 17;
  std::vector<Value> values(rows);
  for (int64_t i = 0; i < rows; ++i) {
    values[i] = (i / kScanBlockRows) % 2 == 0
                    ? -123 + rng.UniformValue(0, 200)
                    : rng.UniformValue(kValueMin / 2, kValueMax / 2);
  }
  EncodedColumn col;
  col.Encode(values, /*narrow=*/true);
  BinaryWriter writer;
  col.Serialize(&writer);
  EncodedColumn loaded;
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(loaded.Deserialize(&reader));
  ASSERT_TRUE(reader.AtEnd());
  ASSERT_EQ(loaded.rows(), col.rows());
  EXPECT_EQ(loaded.DecodeAll(), values);
  EXPECT_EQ(loaded.SizeBytes(), col.SizeBytes());
  for (int64_t b = 0; b < col.num_blocks(); ++b) {
    EXPECT_EQ(loaded.block(b).width, col.block(b).width) << "block " << b;
    EXPECT_EQ(loaded.block(b).ref, col.block(b).ref) << "block " << b;
  }
  // Truncated payloads are rejected, not misread.
  BinaryReader truncated(
      std::string_view(writer.buffer().data(), writer.buffer().size() / 2));
  EncodedColumn corrupt;
  EXPECT_FALSE(corrupt.Deserialize(&truncated));
}

// --- Ops-table-level: narrow passes vs the scalar reference ----------------

template <typename T>
void CheckNarrowPasses(int (*first)(const T*, int, T, T, uint32_t*),
                       int (*first_ref)(const T*, int, T, T, uint32_t*),
                       int (*refine)(const T*, uint32_t*, int, T, T),
                       int (*refine_ref)(const T*, uint32_t*, int, T, T),
                       uint64_t wmax, Rng* rng) {
  for (int n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64,
                65, 100, 1024}) {
    std::vector<T> codes(n);
    for (T& c : codes) {
      c = static_cast<T>(rng->NextBelow(
          static_cast<int64_t>(std::min<uint64_t>(wmax, 1 << 12)) + 1));
    }
    const std::pair<uint64_t, uint64_t> bounds[] = {
        {0, wmax},          // Full domain.
        {0, 0},             // Equality at the frame of reference.
        {1, wmax / 2 + 1},  // Interior.
        {wmax, wmax},       // Equality at the top code.
        {3, 200},           // Small range.
    };
    for (auto [blo, bhi] : bounds) {
      const T lo = static_cast<T>(blo);
      const T hi = static_cast<T>(bhi);
      std::vector<uint32_t> got(n), want(n);
      int got_n = first(codes.data(), n, lo, hi, got.data());
      int want_n = first_ref(codes.data(), n, lo, hi, want.data());
      ASSERT_EQ(got_n, want_n) << "n=" << n << " lo=" << blo;
      for (int i = 0; i < got_n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
      }
      std::vector<uint32_t> got2(got.begin(), got.end());
      std::vector<uint32_t> want2(want.begin(), want.end());
      const T rlo = static_cast<T>(std::min<uint64_t>(5, wmax));
      const T rhi = static_cast<T>(std::min<uint64_t>(150, wmax));
      int got2_n = refine(codes.data(), got2.data(), got_n, rlo, rhi);
      int want2_n = refine_ref(codes.data(), want2.data(), want_n, rlo, rhi);
      ASSERT_EQ(got2_n, want2_n) << "n=" << n;
      for (int i = 0; i < got2_n; ++i) {
        ASSERT_EQ(got2[i], want2[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(EncodedColumnTest, NarrowOpsMatchScalarAtEveryLength) {
  const SimdOps& ref = ScalarSimdOps();
  Rng rng(7003);
  for (SimdTier tier :
       {SimdTier::kNeon, SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (!SimdTierSupported(tier)) continue;
    const SimdOps& ops = OpsForTier(tier);
    SCOPED_TRACE(ops.name);
    CheckNarrowPasses<uint8_t>(ops.first_pass_u8, ref.first_pass_u8,
                               ops.refine_pass_u8, ref.refine_pass_u8,
                               CodeDomainMax(1), &rng);
    CheckNarrowPasses<uint16_t>(ops.first_pass_u16, ref.first_pass_u16,
                                ops.refine_pass_u16, ref.refine_pass_u16,
                                CodeDomainMax(2), &rng);
    CheckNarrowPasses<uint32_t>(ops.first_pass_u32, ref.first_pass_u32,
                                ops.refine_pass_u32, ref.refine_pass_u32,
                                CodeDomainMax(4), &rng);
  }
}

// --- Store-level: encoded vs raw scans, every tier, randomized -------------

TEST(EncodedColumnTest, EncodedScansBitIdenticalToRawAcrossTiers) {
  const int kDims = 4;
  Dataset data = MakeMixedWidthData(8 * kScanBlockRows + 501, kDims, 7004);
  ColumnStore encoded(data, /*encode=*/true);
  ColumnStore raw(data, /*encode=*/false);
  ASSERT_EQ(encoded.size(), raw.size());
  const SimdTier kTiers[] = {SimdTier::kAuto, SimdTier::kNone,
                             SimdTier::kNeon, SimdTier::kAvx2,
                             SimdTier::kAvx512};
  Rng rng(7005);
  for (int trial = 0; trial < 200; ++trial) {
    AggKind agg = kAggs[trial % 5];
    Query q = RandomQuery(&rng, kDims, 1 + static_cast<int>(rng.NextBelow(4)),
                          agg);
    if (trial % 3 == 0) {
      // Multi-aggregate: one pass must feed every accumulator identically.
      q.SetAggregates({{agg, 0},
                       {AggKind::kSum, 1},
                       {AggKind::kMin, 2},
                       {AggKind::kCount, 0}});
    }
    int64_t begin = rng.UniformValue(0, encoded.size());
    int64_t end = rng.UniformValue(begin, encoded.size());
    if (trial % 13 == 0) {
      begin = 0;
      end = encoded.size();
    }
    const bool exact = trial % 7 == 0;
    QueryResult scalar_raw = InitResult(q);
    raw.ScanRange(begin, end, q, exact, &scalar_raw,
                  ScanOptions{ScanOptions::kScalar});
    for (SimdTier tier : kTiers) {
      ScanOptions options;
      options.mode = ScanMode::kSimd;
      options.tier = tier;
      QueryResult got = InitResult(q);
      encoded.ScanRange(begin, end, q, exact, &got, options);
      ExpectSameResult(got, scalar_raw, SimdTierName(tier));
      QueryResult raw_simd = InitResult(q);
      raw.ScanRange(begin, end, q, exact, &raw_simd, options);
      ExpectSameResult(raw_simd, scalar_raw, "raw store");
    }
    // The vectorized (scalar-branchless) mode over encoded blocks too.
    QueryResult vec = InitResult(q);
    encoded.ScanRange(begin, end, q, exact, &vec,
                      ScanOptions{ScanOptions::kVectorized});
    ExpectSameResult(vec, scalar_raw, "vectorized");
  }
}

// Unaligned, straddling, and sub-SIMD-width ranges around every block seam,
// against filters placed at codec boundaries (block min/max, empty after
// translation, covering the whole block).
TEST(EncodedColumnTest, UnalignedRangesAndTranslationBoundaries) {
  const int kDims = 3;
  Dataset data = MakeMixedWidthData(4 * kScanBlockRows + 117, kDims, 7006);
  ColumnStore encoded(data, /*encode=*/true);
  ColumnStore raw(data, /*encode=*/false);
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (int64_t edge : {kScanBlockRows, 2 * kScanBlockRows,
                       3 * kScanBlockRows}) {
    for (int64_t d : {1, 2, 3, 5, 9, 17, 33, 65}) {
      ranges.push_back({edge - d, edge + d});
      ranges.push_back({edge, edge + d});
      ranges.push_back({edge - d, edge});
    }
  }
  ranges.push_back({0, encoded.size()});
  ranges.push_back({3, 4});
  const std::vector<std::vector<Predicate>> filter_sets = {
      // Straddles the u8 blocks' domain (ref approx -5000).
      {Predicate{0, -5000, -4900}},
      // Empty after translation for the u8/u16 blocks, live for u32/raw.
      {Predicate{0, int64_t{1} << 22, int64_t{1} << 23}},
      // Equality at a possible frame of reference.
      {Predicate{1, -5000, -5000}},
      // Covers every narrow block whole (kAll fast-out) but not raw ones.
      {Predicate{0, -2000000, int64_t{1} << 40}, Predicate{1, -6000, 70000}},
      // Matches nothing anywhere.
      {Predicate{2, kValueMax - 5, kValueMax - 4}},
      {},  // No filters.
  };
  for (const auto& filters : filter_sets) {
    for (const auto& [begin, end] : ranges) {
      for (AggKind agg : kAggs) {
        Query q;
        q.agg = agg;
        q.agg_dim = 2;
        q.filters = filters;
        QueryResult want = InitResult(q);
        raw.ScanRange(begin, end, q, /*exact=*/false, &want,
                      ScanOptions{ScanOptions::kScalar});
        QueryResult got = InitResult(q);
        encoded.ScanRange(begin, end, q, /*exact=*/false, &got);
        ExpectSameResult(got, want, "encoded simd");
      }
    }
  }
}

TEST(EncodedColumnTest, BatchedScansAndDataSize) {
  const int kDims = 3;
  Dataset data = MakeMixedWidthData(6 * kScanBlockRows, kDims, 7007);
  ColumnStore encoded(data, /*encode=*/true);
  ColumnStore raw(data, /*encode=*/false);
  Rng rng(7008);
  for (int trial = 0; trial < 40; ++trial) {
    Query q = RandomQuery(&rng, kDims, 2, kAggs[trial % 5]);
    std::vector<RangeTask> tasks;
    int64_t cursor = 0;
    while (cursor < encoded.size()) {
      int64_t len = rng.UniformValue(0, 3000);
      int64_t end = std::min(encoded.size(), cursor + len);
      tasks.push_back(RangeTask{cursor, end, /*exact=*/rng.NextBelow(5) == 0});
      cursor = end + rng.UniformValue(0, 700);
    }
    QueryResult got = InitResult(q), want = InitResult(q);
    encoded.ScanRanges(tasks, q, &got);
    raw.ScanRanges(tasks, q, &want, ScanOptions{ScanOptions::kScalar});
    ExpectSameResult(got, want, "batch");
  }
#if !defined(TSUNAMI_DISABLE_ENCODING)
  // Mixed-width data narrows 3 of every 4 blocks: true stored bytes must
  // undercut the logical 8 B/value footprint; the raw store cannot.
  const int64_t logical =
      encoded.size() * kDims * static_cast<int64_t>(sizeof(Value));
  EXPECT_LT(encoded.DataSizeBytes(), logical);
  EXPECT_GE(raw.DataSizeBytes(), logical);
#endif
}

TEST(EncodedColumnTest, StoreSerializeRoundTripPreservesEncodedBlocks) {
  Dataset data = MakeMixedWidthData(3 * kScanBlockRows + 77, 3, 7009);
  ColumnStore store(data, /*encode=*/true);
  BinaryWriter writer;
  store.Serialize(&writer);
  ColumnStore loaded;
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(loaded.Deserialize(&reader));
  ASSERT_EQ(loaded.size(), store.size());
  ASSERT_EQ(loaded.dims(), store.dims());
  ASSERT_EQ(loaded.DataSizeBytes(), store.DataSizeBytes());
  for (int d = 0; d < store.dims(); ++d) {
    for (int64_t b = 0; b < store.encoded(d).num_blocks(); ++b) {
      ASSERT_EQ(loaded.encoded(d).block(b).width,
                store.encoded(d).block(b).width);
    }
    EXPECT_EQ(loaded.DecodeColumn(d), store.DecodeColumn(d));
  }
  // And the loaded store answers queries identically (zone maps rebuilt).
  Rng rng(7010);
  for (int trial = 0; trial < 30; ++trial) {
    Query q = RandomQuery(&rng, 3, 2, kAggs[trial % 5]);
    QueryResult got = InitResult(q), want = InitResult(q);
    loaded.ScanRange(0, loaded.size(), q, /*exact=*/false, &got);
    store.ScanRange(0, store.size(), q, /*exact=*/false, &want);
    ExpectSameResult(got, want, "loaded");
  }
}

TEST(EncodedColumnTest, LowerUpperBoundOnEncodedStore) {
  Dataset data(1, {});
  for (int64_t i = 0; i < 2 * kScanBlockRows; ++i) {
    data.AppendRow({i / 3});  // Sorted with duplicates; narrow blocks.
  }
  ColumnStore store(data, /*encode=*/true);
  Rng rng(7011);
  for (int trial = 0; trial < 100; ++trial) {
    Value v = rng.UniformValue(-5, 2 * kScanBlockRows / 3 + 5);
    int64_t lo = store.LowerBound(0, 0, store.size(), v);
    int64_t hi = store.UpperBound(0, 0, store.size(), v);
    EXPECT_TRUE(lo == store.size() || store.Get(lo, 0) >= v);
    EXPECT_TRUE(lo == 0 || store.Get(lo - 1, 0) < v);
    EXPECT_TRUE(hi == store.size() || store.Get(hi, 0) > v);
    EXPECT_TRUE(hi == 0 || store.Get(hi - 1, 0) <= v);
  }
}

}  // namespace
}  // namespace tsunami
