// Tests for the parallel execution substrate: thread pool semantics,
// parallel workload runs, and parallel index builds being bit-identical to
// serial builds.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/exec/runner.h"
#include "src/exec/task_scheduler.h"
#include "src/exec/thread_pool.h"
#include "src/flood/flood.h"

namespace tsunami {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }  // Destructor joins after draining.
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  pool.ParallelFor(0, 10000, 16, [&](int64_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(7, 8, 1, [&](int64_t i) {
    ++calls;
    EXPECT_EQ(i, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::atomic<int> distinct{0};
  std::mutex mu;
  std::vector<std::thread::id> seen;
  pool.ParallelFor(0, 64, 1, [&](int64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    auto id = std::this_thread::get_id();
    if (std::find(seen.begin(), seen.end(), id) == seen.end()) {
      seen.push_back(id);
      distinct.fetch_add(1);
    }
  });
  EXPECT_GE(distinct.load(), 2);
}

// --- Parallel workload execution ---------------------------------------------

class ParallelRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    data_ = Dataset(3, {});
    const int64_t n = 25000;
    data_.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      Value x = rng.UniformValue(0, 50000);
      data_.AppendRow(
          {x, x + rng.UniformValue(-200, 200), rng.UniformValue(0, 1000)});
    }
    for (int i = 0; i < 80; ++i) {
      Query q;
      Value lo = rng.UniformValue(0, 45000);
      q.filters = {Predicate{0, lo, lo + 2000},
                   Predicate{2, 0, rng.UniformValue(100, 900)}};
      q.type = i % 2;
      workload_.push_back(q);
    }
  }

  Dataset data_;
  Workload workload_;
};

TEST_F(ParallelRunTest, IntraQueryParallelismMatchesSerialExecute) {
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data_, workload_, options);
  // A query spanning many regions, plus the regular workload, must return
  // identical results and counters for every pool size (regions are
  // disjoint, so partial merges are exact).
  Workload probes = workload_;
  Query wide;
  wide.filters = {Predicate{0, 0, 50000}};
  probes.push_back(wide);
  Query everything;
  probes.push_back(everything);
  for (int threads : {0, 1, 2, 4}) {
    ThreadPool pool(threads);
    ExecContext ctx(&pool);
    for (Query q : probes) {
      for (AggKind agg : {AggKind::kCount, AggKind::kSum, AggKind::kMin}) {
        q.agg = agg;
        q.agg_dim = 1;
        QueryResult serial = index.Execute(q);
        QueryResult parallel = index.ExecutePlan(index.Prepare(q), ctx);
        ASSERT_EQ(parallel.agg, serial.agg) << threads << " threads";
        ASSERT_EQ(parallel.matched, serial.matched);
        ASSERT_EQ(parallel.scanned, serial.scanned);
        ASSERT_EQ(parallel.cell_ranges, serial.cell_ranges);
      }
    }
  }
}

TEST_F(ParallelRunTest, SchedulerBackedExecuteRangeTasksMatchesSerial) {
  // A pool-less context with a work-stealing scheduler attached: the
  // runner submits its row-balanced chunks to the shared deques instead of
  // ParallelFor. Must be bit-identical to serial Execute for every worker
  // count. (Only legal from outside the scheduler's workers — the runner
  // blocks in Wait; see ExecContext::scheduler.)
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data_, workload_, options);
  Workload probes = workload_;
  Query wide;
  wide.filters = {Predicate{0, 0, 50000}};
  probes.push_back(wide);
  for (int threads : {1, 2, 4}) {
    TaskScheduler scheduler(threads);
    ExecContext ctx;
    ctx.scheduler = &scheduler;
    for (Query q : probes) {
      q.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
      QueryResult serial = index.Execute(q);
      QueryResult stolen = index.ExecutePlan(index.Prepare(q), ctx);
      ASSERT_EQ(stolen.agg, serial.agg) << threads << " workers";
      ASSERT_EQ(stolen.matched, serial.matched);
      ASSERT_EQ(stolen.scanned, serial.scanned);
      ASSERT_EQ(stolen.cell_ranges, serial.cell_ranges);
      for (size_t i = 0; i < stolen.extra.size(); ++i) {
        ASSERT_EQ(stolen.extra[i], serial.extra[i]);
      }
    }
  }
}

TEST_F(ParallelRunTest, IntraQueryParallelismCoversDeltaBuffer) {
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data_, workload_, options);
  index.Insert({100, 100, 100});
  index.Insert({200, 250, 500});
  ThreadPool pool(2);
  ExecContext ctx(&pool);
  Query q;
  q.filters = {Predicate{0, 0, 50000}};
  QueryResult serial = index.Execute(q);
  QueryResult parallel = index.ExecutePlan(index.Prepare(q), ctx);
  EXPECT_EQ(parallel.agg, serial.agg);
  EXPECT_EQ(parallel.matched, serial.matched);
}

TEST_F(ParallelRunTest, ParallelResultsEqualSerial) {
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data_, workload_, options);
  std::vector<QueryResult> serial = RunWorkload(index, workload_);
  ThreadPool pool(4);
  std::vector<QueryResult> parallel = RunWorkload(index, workload_, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].agg, serial[i].agg);
    EXPECT_EQ(parallel[i].matched, serial[i].matched);
    EXPECT_EQ(parallel[i].scanned, serial[i].scanned);
    EXPECT_EQ(parallel[i].cell_ranges, serial[i].cell_ranges);
  }
}

TEST_F(ParallelRunTest, MeasureWorkloadCountersMatchResults) {
  FloodIndex index(data_, workload_, FloodOptions());
  std::vector<QueryResult> results = RunWorkload(index, workload_);
  WorkloadRunStats stats = MeasureWorkload(index, workload_);
  int64_t scanned = 0, matched = 0;
  for (const QueryResult& r : results) {
    scanned += r.scanned;
    matched += r.matched;
  }
  EXPECT_EQ(stats.total_scanned, scanned);
  EXPECT_EQ(stats.total_matched, matched);
  EXPECT_GT(stats.avg_query_micros, 0.0);
}

// --- Parallel index construction ----------------------------------------------

TEST_F(ParallelRunTest, ParallelBuildProducesIdenticalIndex) {
  TsunamiOptions serial_options;
  serial_options.cluster_queries = false;
  serial_options.build_threads = 1;
  TsunamiIndex serial(data_, workload_, serial_options);

  TsunamiOptions parallel_options = serial_options;
  parallel_options.build_threads = 4;
  TsunamiIndex parallel(data_, workload_, parallel_options);

  // Structure must be identical, not merely equivalent.
  EXPECT_EQ(parallel.stats().num_regions, serial.stats().num_regions);
  EXPECT_EQ(parallel.stats().total_cells, serial.stats().total_cells);
  EXPECT_EQ(parallel.IndexSizeBytes(), serial.IndexSizeBytes());
  ASSERT_EQ(parallel.store().size(), serial.store().size());
  for (int d = 0; d < serial.store().dims(); ++d) {
    EXPECT_EQ(parallel.store().DecodeColumn(d), serial.store().DecodeColumn(d))
        << "clustered layout differs in dimension " << d;
  }
  // And answers + work done must match query by query.
  for (const Query& q : workload_) {
    QueryResult a = serial.Execute(q);
    QueryResult b = parallel.Execute(q);
    EXPECT_EQ(a.agg, b.agg);
    EXPECT_EQ(a.scanned, b.scanned);
    EXPECT_EQ(a.cell_ranges, b.cell_ranges);
  }
}

class BuildThreadSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BuildThreadSweepTest, AnyThreadCountMatchesFullScan) {
  Rng rng(31);
  Dataset data(2, {});
  for (int64_t i = 0; i < 8000; ++i) {
    Value x = rng.UniformValue(0, 10000);
    data.AppendRow({x, rng.UniformValue(0, 10000)});
  }
  Workload workload;
  for (int i = 0; i < 30; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 9000);
    q.filters = {Predicate{i % 2, lo, lo + 500}};
    q.type = i % 2;
    workload.push_back(q);
  }
  TsunamiOptions options;
  options.cluster_queries = false;
  options.build_threads = GetParam();
  TsunamiIndex index(data, workload, options);
  ColumnStore reference(data);
  for (const Query& q : workload) {
    EXPECT_EQ(index.Execute(q).agg, ExecuteFullScan(reference, q).agg);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BuildThreadSweepTest,
                         ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace tsunami
