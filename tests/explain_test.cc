// Tests for the EXPLAIN-style Describe() introspection and a fuzz test of
// the SQL parser (random statements must bind consistently or fail cleanly,
// never crash or mis-answer).
#include <gtest/gtest.h>

#include <string>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/query/engine.h"

namespace tsunami {
namespace {

class DescribeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(41);
    data_ = Dataset(3, {});
    for (int64_t i = 0; i < 20000; ++i) {
      Value x = rng.UniformValue(0, 100000);
      data_.AppendRow({x, 2 * x + rng.UniformValue(-50, 50),
                       rng.UniformValue(0, 100)});
    }
    for (int i = 0; i < 40; ++i) {
      Query q;
      Value lo = rng.UniformValue(i % 2 == 0 ? 80000 : 0, 90000);
      q.filters = {Predicate{0, lo, lo + (i % 2 == 0 ? 1000 : 30000)}};
      q.type = i % 2;
      workload_.push_back(q);
    }
  }

  Dataset data_;
  Workload workload_;
};

TEST_F(DescribeTest, MentionsEveryRegionAndDimensionNames) {
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data_, workload_, options);
  std::string text = index.Describe({"time", "value", "load"});
  EXPECT_NE(text.find("Tsunami:"), std::string::npos);
  for (int r = 0; r < index.stats().num_regions; ++r) {
    EXPECT_NE(text.find("region " + std::to_string(r)), std::string::npos)
        << text;
  }
  // Dimension names appear instead of raw indices wherever used.
  EXPECT_NE(text.find("time"), std::string::npos);
  EXPECT_EQ(text.find("d0="), std::string::npos);
}

TEST_F(DescribeTest, FallsBackToGenericDimNames) {
  TsunamiOptions options;
  options.cluster_queries = false;
  options.use_grid_tree = false;
  TsunamiIndex index(data_, workload_, options);
  std::string text = index.Describe();
  EXPECT_NE(text.find("d0"), std::string::npos);
  EXPECT_NE(text.find("skeleton"), std::string::npos);
}

TEST_F(DescribeTest, ReportsDeltaBuffer) {
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data_, workload_, options);
  index.Insert({1, 2, 3});
  EXPECT_NE(index.Describe().find("delta buffer: 1"), std::string::npos);
}

TEST(GridTreeDescribeTest, EmptyTree) {
  GridTree tree;
  EXPECT_NE(tree.Describe().find("empty"), std::string::npos);
}

// --- SQL parser fuzz ----------------------------------------------------------

// Random token soup must never crash the parser, and whenever it parses,
// running the query must agree with a full scan.
TEST(SqlFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(77);
  Dataset data(2, {});
  for (int i = 0; i < 1000; ++i) {
    data.AppendRow({rng.UniformValue(0, 100), rng.UniformValue(0, 100)});
  }
  FullScanIndex index(data);
  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {"a", "b"};
  QueryEngine engine(&index, schema);

  const char* tokens[] = {"SELECT", "COUNT",  "(",   ")",  "*",   "FROM",
                          "t",      "WHERE",  "a",   "b",  "c",   "AND",
                          "BETWEEN", "<=",    ">=",  "<",  ">",   "=",
                          "5",      "-3",     "2.5", "'x'", ";",  "SUM",
                          "AVG",    "99999999999999999999"};
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    int n = 1 + static_cast<int>(rng.NextBelow(12));
    for (int i = 0; i < n; ++i) {
      sql += tokens[rng.NextBelow(std::size(tokens))];
      sql += ' ';
    }
    SqlResult result = engine.Run(sql);  // Must not crash or hang.
    if (result.ok) {
      // Whatever parsed must agree with a direct scan of the bound query.
      ColumnStore reference(data);
      QueryResult want = ExecuteFullScan(reference, result.query);
      EXPECT_EQ(result.stats.matched, want.matched) << sql;
    } else {
      EXPECT_FALSE(result.error.empty()) << sql;
    }
  }
}

// Generated well-formed statements must always parse and answer correctly.
TEST(SqlFuzzTest, GeneratedStatementsAlwaysParseAndMatchScan) {
  Rng rng(78);
  Dataset data(3, {});
  for (int i = 0; i < 5000; ++i) {
    data.AppendRow({rng.UniformValue(-500, 500), rng.UniformValue(0, 10),
                    rng.UniformValue(0, 100000)});
  }
  FullScanIndex index(data);
  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {"x", "y", "z"};
  QueryEngine engine(&index, schema);
  ColumnStore reference(data);

  const char* aggs[] = {"COUNT(*)", "SUM(x)", "MIN(z)", "MAX(z)", "AVG(y)"};
  const char* ops[] = {"<", "<=", ">", ">=", "="};
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql = std::string("SELECT ") + aggs[rng.NextBelow(5)] +
                      " FROM t WHERE ";
    int preds = 1 + static_cast<int>(rng.NextBelow(3));
    for (int p = 0; p < preds; ++p) {
      if (p > 0) sql += " AND ";
      const char* col = schema.columns[rng.NextBelow(3)].c_str();
      if (rng.NextBool(0.25)) {
        Value lo = rng.UniformValue(-600, 400);
        sql += std::string(col) + " BETWEEN " + std::to_string(lo) + " AND " +
               std::to_string(lo + rng.UniformValue(0, 300));
      } else {
        sql += std::string(col) + " " + ops[rng.NextBelow(5)] + " " +
               std::to_string(rng.UniformValue(-600, 600));
      }
    }
    SqlResult result = engine.Run(sql);
    ASSERT_TRUE(result.ok) << sql << " -> " << result.error;
    QueryResult want = ExecuteFullScan(reference, result.query);
    EXPECT_EQ(result.stats.matched, want.matched) << sql;
    EXPECT_DOUBLE_EQ(result.value, FinalAggValue(result.query, want)) << sql;
  }
}

}  // namespace
}  // namespace tsunami
