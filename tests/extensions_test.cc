// Tests for the §8 extensions: delta-buffer insertions and workload-shift
// detection.
#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/core/query_clustering.h"
#include "src/core/tsunami.h"
#include "src/core/workload_monitor.h"
#include "src/datasets/datasets.h"

namespace tsunami {
namespace {

TsunamiOptions SmallOptions() {
  TsunamiOptions options;
  options.sample_rows = 20000;
  options.agd.max_sample_points = 512;
  options.agd.max_sample_queries = 32;
  options.agd.max_iters = 2;
  options.agd.max_cells = 1 << 12;
  return options;
}

TEST(DeltaInsertTest, InsertedRowsAreVisibleImmediately) {
  Benchmark bench = MakeUniformBenchmark(3, 5000, 401, 10);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  Query all;  // Unfiltered COUNT(*).
  EXPECT_EQ(index.Execute(all).agg, 5000);
  index.Insert({1, 2, 3});
  index.Insert({1000000000, 4, 5});
  EXPECT_EQ(index.delta_size(), 2);
  EXPECT_EQ(index.Execute(all).agg, 5002);
  Query narrow;
  narrow.filters = {Predicate{0, 1, 1}, Predicate{1, 2, 2}};
  EXPECT_EQ(index.Execute(narrow).agg, 1);
}

TEST(DeltaInsertTest, SumIncludesDelta) {
  Benchmark bench = MakeUniformBenchmark(2, 1000, 402, 5);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  Query sum;
  sum.agg = AggKind::kSum;
  sum.agg_dim = 1;
  int64_t before = index.Execute(sum).agg;
  index.Insert({0, 1000});
  index.Insert({0, 234});
  EXPECT_EQ(index.Execute(sum).agg, before + 1234);
}

TEST(DeltaInsertTest, MaterializeAndMergeFoldsBuffer) {
  Benchmark bench = MakeUniformBenchmark(3, 4000, 403, 10);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  Rng rng(404);
  for (int i = 0; i < 500; ++i) {
    index.Insert({rng.UniformValue(0, 1000000000),
                  rng.UniformValue(0, 1000000000),
                  rng.UniformValue(0, 1000000000)});
  }
  Dataset merged_data = index.MaterializeData();
  EXPECT_EQ(merged_data.size(), 4500);
  TsunamiIndex merged(merged_data, bench.workload, SmallOptions());
  EXPECT_EQ(merged.delta_size(), 0);
  // The merged index answers exactly like the delta-carrying one.
  FullScanIndex reference(merged_data);
  for (const Query& q : bench.workload) {
    int64_t expected = reference.Execute(q).agg;
    EXPECT_EQ(index.Execute(q).agg, expected);
    EXPECT_EQ(merged.Execute(q).agg, expected);
  }
}

TEST(DeltaInsertTest, DeltaMatchesFullScanUnderRandomQueries) {
  Benchmark bench = MakeTaxiBenchmark(4000, 405, 8);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  // Insert duplicates of existing rows (hits the same cells' key ranges).
  std::vector<Value> row(bench.data.dims());
  for (int64_t r = 0; r < 200; ++r) {
    for (int d = 0; d < bench.data.dims(); ++d) {
      row[d] = bench.data.at(r * 7 % bench.data.size(), d);
    }
    index.Insert(row);
  }
  FullScanIndex reference(index.MaterializeData());
  for (const Query& q : bench.workload) {
    ASSERT_EQ(index.Execute(q).agg, reference.Execute(q).agg);
  }
}

// The columnarized delta buffer (scanned through the SimdOps
// compare+compress passes) must be bit-identical to the old row-major
// row-at-a-time loop — every QueryResult field, every aggregate kind,
// multi-aggregate lists included. The reference below *is* that old loop.
TEST(DeltaInsertTest, ColumnarDeltaBitIdenticalToRowMajorLoop) {
  Benchmark bench = MakeUniformBenchmark(3, 6000, 407, 10);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  Rng rng(408);
  std::vector<std::vector<Value>> inserted;
  // Enough rows to span several kScanBlockRows chunks, plus extremes.
  for (int i = 0; i < 2600; ++i) {
    std::vector<Value> row = {rng.UniformValue(-1000000, 1000000),
                              rng.UniformValue(-1000000, 1000000),
                              rng.UniformValue(-1000000, 1000000)};
    if (i % 97 == 0) row[1] = kValueMax - i;
    if (i % 89 == 0) row[2] = kValueMin + i;
    inserted.push_back(row);
    index.Insert(row);
  }
  const AggKind kAggs[] = {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                           AggKind::kMax, AggKind::kAvg};
  // A delta-free twin provides the clustered store's contribution; both
  // indexes are built from identical inputs, so their stores match.
  TsunamiIndex no_delta(bench.data, bench.workload, SmallOptions());
  for (int trial = 0; trial < 120; ++trial) {
    Query q;
    q.agg = kAggs[trial % 5];
    q.agg_dim = trial % 3;
    if (trial % 4 == 0) {
      q.SetAggregates({{q.agg, q.agg_dim},
                       {AggKind::kSum, (trial + 1) % 3},
                       {AggKind::kMax, (trial + 2) % 3}});
    }
    int num_filters = trial % 3;  // 0, 1, or 2 (empty filters included).
    for (int f = 0; f < num_filters; ++f) {
      Value lo = rng.UniformValue(-1200000, 1200000);
      q.filters.push_back(
          Predicate{static_cast<int>(rng.NextBelow(3)), lo,
                    lo + rng.UniformValue(0, 800000)});
    }
    // The reference: the clustered store's contribution plus the exact
    // pre-columnarization delta loop, row-at-a-time in insert order.
    QueryResult want = no_delta.Execute(q);
    ++want.cell_ranges;
    want.scanned += static_cast<int64_t>(inserted.size());
    for (const std::vector<Value>& row : inserted) {
      bool ok = true;
      for (const Predicate& p : q.filters) {
        if (!p.Matches(row[p.dim])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      ++want.matched;
      for (int a = 0; a < q.num_aggs(); ++a) {
        const AggregateSpec spec = q.agg_spec(a);
        AccumulateAgg(spec.op,
                      spec.op == AggKind::kCount ? 0 : row[spec.column],
                      want.agg_accumulator(a));
      }
    }
    QueryResult got = index.Execute(q);
    EXPECT_EQ(got.agg, want.agg) << "trial " << trial;
    EXPECT_EQ(got.scanned, want.scanned) << "trial " << trial;
    EXPECT_EQ(got.matched, want.matched) << "trial " << trial;
    EXPECT_EQ(got.cell_ranges, want.cell_ranges) << "trial " << trial;
    ASSERT_EQ(got.extra.size(), want.extra.size());
    for (size_t e = 0; e < got.extra.size(); ++e) {
      EXPECT_EQ(got.extra[e], want.extra[e]) << "trial " << trial;
    }
  }
}

class WorkloadMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_ = MakeTpchBenchmark(20000, 406, 20);
    int num_types = 0;
    typed_ = LabelQueryTypes(bench_.data, bench_.workload, {}, &num_types);
  }
  Benchmark bench_;
  Workload typed_;
};

TEST_F(WorkloadMonitorTest, SteadyWorkloadDoesNotTrigger) {
  WorkloadMonitorOptions options;
  options.window = 100;
  WorkloadMonitor monitor(bench_.data, typed_, options);
  for (int rep = 0; rep < 4; ++rep) {
    for (const Query& q : typed_) monitor.Observe(q);
  }
  EXPECT_GE(monitor.observed(), 100);
  EXPECT_FALSE(monitor.ShouldReoptimize()) << monitor.Reason();
  EXPECT_LT(monitor.unknown_fraction(), 0.2);
}

TEST_F(WorkloadMonitorTest, ShiftedWorkloadTriggersNewType) {
  WorkloadMonitorOptions options;
  options.window = 100;
  WorkloadMonitor monitor(bench_.data, typed_, options);
  Workload shifted = MakeTpchShiftedWorkload(bench_.data, 407, 30);
  for (const Query& q : shifted) monitor.Observe(q);
  EXPECT_TRUE(monitor.ShouldReoptimize());
  EXPECT_FALSE(monitor.Reason().empty());
  EXPECT_GT(monitor.unknown_fraction(), 0.2);
}

TEST_F(WorkloadMonitorTest, FrequencyDriftTriggers) {
  WorkloadMonitorOptions options;
  options.window = 100;
  WorkloadMonitor monitor(bench_.data, typed_, options);
  // Only ever observe queries of one build-time type.
  int count = 0;
  for (int rep = 0; rep < 20 && count < 150; ++rep) {
    for (const Query& q : typed_) {
      if (q.type == 0) {
        monitor.Observe(q);
        ++count;
      }
    }
  }
  EXPECT_TRUE(monitor.ShouldReoptimize());
  // One type dominating means the others disappeared (or drifted).
  EXPECT_TRUE(monitor.Reason() == "type disappeared" ||
              monitor.Reason() == "frequency drift")
      << monitor.Reason();
}

TEST_F(WorkloadMonitorTest, ResetClearsTheWindow) {
  WorkloadMonitorOptions options;
  options.window = 50;
  WorkloadMonitor monitor(bench_.data, typed_, options);
  Workload shifted = MakeTpchShiftedWorkload(bench_.data, 408, 20);
  for (const Query& q : shifted) monitor.Observe(q);
  ASSERT_TRUE(monitor.ShouldReoptimize());
  monitor.Reset();
  EXPECT_EQ(monitor.observed(), 0);
  EXPECT_FALSE(monitor.ShouldReoptimize());
}

TEST_F(WorkloadMonitorTest, WindowGatesDetection) {
  WorkloadMonitorOptions options;
  options.window = 1000;  // Larger than what we feed it.
  WorkloadMonitor monitor(bench_.data, typed_, options);
  Workload shifted = MakeTpchShiftedWorkload(bench_.data, 409, 20);
  for (const Query& q : shifted) monitor.Observe(q);
  EXPECT_FALSE(monitor.ShouldReoptimize());  // Not enough evidence yet.
}

TEST(IncrementalReoptTest, SameWorkloadReusesEveryRegionPlan) {
  Benchmark bench = MakeTpchBenchmark(12000, 410, 12);
  TsunamiIndex first(bench.data, bench.workload, SmallOptions());
  TsunamiIndex second(first, bench.workload, SmallOptions());
  EXPECT_EQ(second.stats().regions_reused,
            second.stats().num_indexed_regions);
  // The reused index keeps the previous tree.
  EXPECT_EQ(second.stats().num_regions, first.stats().num_regions);
  FullScanIndex reference(bench.data);
  for (const Query& q : bench.workload) {
    ASSERT_EQ(second.Execute(q).agg, reference.Execute(q).agg);
  }
}

TEST(IncrementalReoptTest, ShiftedWorkloadReoptimizesSomeRegions) {
  Benchmark bench = MakeTpchBenchmark(12000, 411, 12);
  Workload shifted = MakeTpchShiftedWorkload(bench.data, 412, 12);
  TsunamiIndex first(bench.data, bench.workload, SmallOptions());
  TsunamiIndex second(first, shifted, SmallOptions());
  // A hard shift must re-optimize at least one region, and the result must
  // stay correct on both workloads.
  EXPECT_LT(second.stats().regions_reused,
            second.stats().num_indexed_regions);
  FullScanIndex reference(bench.data);
  for (const Workload* w : {&shifted, &bench.workload}) {
    for (const Query& q : *w) {
      ASSERT_EQ(second.Execute(q).agg, reference.Execute(q).agg);
    }
  }
}

TEST(IncrementalReoptTest, FoldsDeltaBufferIntoRebuild) {
  Benchmark bench = MakeUniformBenchmark(3, 5000, 413, 10);
  TsunamiIndex first(bench.data, bench.workload, SmallOptions());
  first.Insert({1, 2, 3});
  first.Insert({4, 5, 6});
  TsunamiIndex second(first, bench.workload, SmallOptions());
  EXPECT_EQ(second.delta_size(), 0);
  Query all;
  EXPECT_EQ(second.Execute(all).agg, 5002);
}

TEST(IncrementalReoptTest, FullBuildReportsZeroReuse) {
  Benchmark bench = MakeUniformBenchmark(3, 3000, 414, 10);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  EXPECT_EQ(index.stats().regions_reused, 0);
}

}  // namespace
}  // namespace tsunami
