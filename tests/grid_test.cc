// Unit and property tests for Skeleton and AugmentedGrid: structural
// validation rules, and query correctness against a full scan across
// skeleton shapes, partition counts, and datasets.
#include <numeric>

#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/core/augmented_grid.h"
#include "src/core/skeleton.h"
#include "src/datasets/synthetic.h"
#include "src/datasets/taxi.h"

namespace tsunami {
namespace {

TEST(SkeletonTest, AllIndependentValidates) {
  Skeleton s = Skeleton::AllIndependent(4);
  EXPECT_TRUE(s.Validate());
  EXPECT_EQ(s.GridDims().size(), 4u);
  EXPECT_EQ(s.NumMapped(), 0);
  EXPECT_EQ(s.NumConditional(), 0);
}

TEST(SkeletonTest, EmptySkeletonInvalid) {
  Skeleton s;
  std::string error;
  EXPECT_FALSE(s.Validate(&error));
  EXPECT_FALSE(error.empty());
}

TEST(SkeletonTest, MappedTargetCannotBeMapped) {
  Skeleton s = Skeleton::AllIndependent(3);
  s.dims[0] = {PartitionStrategy::kMapped, 1};
  s.dims[1] = {PartitionStrategy::kMapped, 2};
  EXPECT_FALSE(s.Validate());
  s.dims[0] = {PartitionStrategy::kMapped, 2};
  EXPECT_TRUE(s.Validate());
}

TEST(SkeletonTest, ConditionalBaseMustBeIndependent) {
  Skeleton s = Skeleton::AllIndependent(3);
  s.dims[1] = {PartitionStrategy::kConditional, 0};
  EXPECT_TRUE(s.Validate());
  // Base becomes conditional itself: invalid.
  s.dims[0] = {PartitionStrategy::kConditional, 2};
  EXPECT_FALSE(s.Validate());
  // Base becomes mapped: invalid ("a base dimension cannot be mapped").
  s.dims[0] = {PartitionStrategy::kMapped, 2};
  EXPECT_FALSE(s.Validate());
}

TEST(SkeletonTest, OtherMustBeDistinctInRange) {
  Skeleton s = Skeleton::AllIndependent(2);
  s.dims[0] = {PartitionStrategy::kMapped, 0};
  EXPECT_FALSE(s.Validate());
  s.dims[0] = {PartitionStrategy::kMapped, 5};
  EXPECT_FALSE(s.Validate());
}

TEST(SkeletonTest, AtLeastOneGridDim) {
  Skeleton s = Skeleton::AllIndependent(2);
  s.dims[0] = {PartitionStrategy::kMapped, 1};
  EXPECT_TRUE(s.Validate());
  s.dims[1] = {PartitionStrategy::kMapped, 0};
  EXPECT_FALSE(s.Validate());  // Also violates target-not-mapped.
}

TEST(SkeletonTest, ToStringNotation) {
  Skeleton s = Skeleton::AllIndependent(3);
  s.dims[1] = {PartitionStrategy::kConditional, 0};
  s.dims[2] = {PartitionStrategy::kMapped, 0};
  EXPECT_EQ(s.ToString(), "[d0, d1|d0, d2->d0]");
}

// --- AugmentedGrid correctness ---

// Builds a grid over the whole benchmark dataset and checks every query's
// aggregate against the full-scan reference.
void CheckGridMatchesFullScan(const Benchmark& bench,
                              const Skeleton& skeleton,
                              const std::vector<int>& partitions) {
  FullScanIndex reference(bench.data);
  std::vector<uint32_t> rows(bench.data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  AugmentedGrid grid;
  grid.Build(bench.data, &rows, skeleton, partitions, {});
  ColumnStore store(bench.data, rows);
  grid.Attach(&store, 0);
  for (const Query& q : bench.workload) {
    QueryResult expected = reference.Execute(q);
    QueryResult got;
    grid.Execute(q, &got);
    ASSERT_EQ(got.agg, expected.agg) << skeleton.ToString();
    ASSERT_EQ(got.matched, expected.matched);
  }
}

TEST(AugmentedGridTest, IndependentSkeletonMatchesFullScanUniform) {
  Benchmark bench = MakeUniformBenchmark(3, 4000, 21, 10);
  CheckGridMatchesFullScan(bench, Skeleton::AllIndependent(3), {4, 5, 3});
}

TEST(AugmentedGridTest, SinglePartitionGridIsOneCell) {
  Benchmark bench = MakeUniformBenchmark(2, 500, 22, 5);
  std::vector<uint32_t> rows(bench.data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  AugmentedGrid grid;
  grid.Build(bench.data, &rows, Skeleton::AllIndependent(2), {1, 1}, {});
  EXPECT_EQ(grid.num_cells(), 1);
}

TEST(AugmentedGridTest, MappedSkeletonMatchesFullScanCorrelated) {
  Benchmark bench = MakeScalingBenchmark(4, 4000, /*correlated=*/true, 23, 10);
  Skeleton s = Skeleton::AllIndependent(4);
  s.dims[2] = {PartitionStrategy::kMapped, 0};  // dim2 ~ dim0 (±1%).
  CheckGridMatchesFullScan(bench, s, {8, 4, 1, 4});
}

TEST(AugmentedGridTest, ConditionalSkeletonMatchesFullScanCorrelated) {
  Benchmark bench = MakeScalingBenchmark(4, 4000, /*correlated=*/true, 24, 10);
  Skeleton s = Skeleton::AllIndependent(4);
  s.dims[3] = {PartitionStrategy::kConditional, 1};  // dim3 ~ dim1 (±10%).
  CheckGridMatchesFullScan(bench, s, {6, 6, 4, 5});
}

TEST(AugmentedGridTest, MixedSkeletonMatchesFullScanTaxi) {
  Benchmark bench = MakeTaxiBenchmark(5000, 25, 8);
  Skeleton s = Skeleton::AllIndependent(9);
  s.dims[1] = {PartitionStrategy::kMapped, 0};       // dropoff ~ pickup.
  s.dims[6] = {PartitionStrategy::kMapped, 4};       // total ~ fare.
  s.dims[3] = {PartitionStrategy::kConditional, 4};  // distance | fare.
  ASSERT_TRUE(s.Validate());
  CheckGridMatchesFullScan(bench, s, {8, 1, 3, 4, 6, 2, 1, 4, 4});
}

TEST(AugmentedGridTest, EmptyRegionExecutesToZero) {
  Dataset empty(3, {});
  std::vector<uint32_t> rows;
  AugmentedGrid grid;
  grid.Build(empty, &rows, Skeleton::AllIndependent(3), {2, 2, 2}, {});
  ColumnStore store(empty);
  grid.Attach(&store, 0);
  Query q;
  q.filters = {Predicate{0, 0, 100}};
  QueryResult result;
  grid.Execute(q, &result);
  EXPECT_EQ(result.agg, 0);
}

TEST(AugmentedGridTest, CellCapIsEnforced) {
  Benchmark bench = MakeUniformBenchmark(4, 2000, 26, 5);
  std::vector<uint32_t> rows(bench.data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  AugmentedGrid grid;
  AugmentedGrid::BuildOptions options;
  options.max_cells = 64;
  grid.Build(bench.data, &rows, Skeleton::AllIndependent(4), {16, 16, 16, 16},
             options);
  EXPECT_LE(grid.num_cells(), 64);
}

TEST(AugmentedGridTest, SumAggregationMatches) {
  Benchmark bench = MakeUniformBenchmark(3, 3000, 27, 10);
  FullScanIndex reference(bench.data);
  std::vector<uint32_t> rows(bench.data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  AugmentedGrid grid;
  grid.Build(bench.data, &rows, Skeleton::AllIndependent(3), {5, 4, 3}, {});
  ColumnStore store(bench.data, rows);
  grid.Attach(&store, 0);
  for (Query q : bench.workload) {
    q.agg = AggKind::kSum;
    q.agg_dim = 2;
    QueryResult expected = reference.Execute(q);
    QueryResult got;
    grid.Execute(q, &got);
    ASSERT_EQ(got.agg, expected.agg);
  }
}

// Parameterized sweep: partition-count shapes on the correlated dataset
// with a conditional dimension must stay correct.
class GridPartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(GridPartitionSweep, ConditionalCorrectAtAllPartitionCounts) {
  int p = GetParam();
  Benchmark bench = MakeScalingBenchmark(4, 3000, /*correlated=*/true, 29, 6);
  Skeleton s = Skeleton::AllIndependent(4);
  s.dims[2] = {PartitionStrategy::kConditional, 0};
  CheckGridMatchesFullScan(bench, s, {p, 3, p, 3});
}

INSTANTIATE_TEST_SUITE_P(Partitions, GridPartitionSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 33));

// Exhaustive skeleton sweep: EVERY valid 3-d skeleton (all combinations of
// independent / mapped / conditional with all `other` choices that pass
// Validate) must build a correct grid on correlated data. This covers
// interactions the named tests above cannot, e.g. two dimensions mapped to
// the same target, or a conditional dimension whose base is also a
// mapping target.
TEST(AugmentedGridTest, EveryValidThreeDimSkeletonMatchesFullScan) {
  Benchmark bench = MakeScalingBenchmark(3, 2500, /*correlated=*/true, 31, 8);
  const int d = 3;
  int checked = 0;
  int64_t combos = 1;
  for (int i = 0; i < d; ++i) combos *= 1 + 2 * d;
  for (int64_t code = 0; code < combos; ++code) {
    Skeleton s;
    s.dims.resize(d);
    int64_t c = code;
    for (int i = 0; i < d; ++i) {
      int choice = static_cast<int>(c % (1 + 2 * d));
      c /= 1 + 2 * d;
      if (choice == 0) {
        s.dims[i] = DimSpec{PartitionStrategy::kIndependent, -1};
      } else if (choice <= d) {
        s.dims[i] = DimSpec{PartitionStrategy::kMapped, choice - 1};
      } else {
        s.dims[i] = DimSpec{PartitionStrategy::kConditional, choice - d - 1};
      }
    }
    if (!s.Validate()) continue;
    std::vector<int> partitions(d, 4);
    CheckGridMatchesFullScan(bench, s, partitions);
    ++checked;
  }
  // 3 dims admit a few dozen valid skeletons; make sure the sweep ran.
  EXPECT_GT(checked, 20);
}

}  // namespace
}  // namespace tsunami
