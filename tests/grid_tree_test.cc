// Tests for the Grid Tree (§4): structural invariants (regions partition the
// space), query routing, skew-driven splitting, and leaf thresholds.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/grid_tree.h"
#include "src/datasets/synthetic.h"
#include "src/datasets/taxi.h"

namespace tsunami {
namespace {

constexpr Value kDomain = 1'000'000'000;

// Fig. 2's workload: type 0 = wide year-span queries everywhere; type 1 =
// narrow month queries over the last fifth of the time dimension.
Benchmark MakeSkewedBench(int64_t rows) {
  Benchmark bench = MakeUniformBenchmark(2, rows, 111, 1, 1);
  bench.workload.clear();
  Rng rng(112);
  for (int i = 0; i < 60; ++i) {
    Query wide;
    wide.type = 0;
    Value start = rng.UniformValue(0, kDomain / 2);
    wide.filters = {Predicate{0, start, start + kDomain / 4}};
    bench.workload.push_back(wide);
    Query narrow;
    narrow.type = 1;
    Value nstart = rng.UniformValue(kDomain * 4 / 5, kDomain - kDomain / 100);
    narrow.filters = {Predicate{0, nstart, nstart + kDomain / 100}};
    bench.workload.push_back(narrow);
  }
  bench.num_query_types = 2;
  return bench;
}

TEST(GridTreeTest, SplitsSkewedWorkload) {
  Benchmark bench = MakeSkewedBench(20000);
  GridTree tree =
      GridTree::Build(bench.data, bench.workload, 2, GridTreeOptions{});
  EXPECT_GE(tree.num_regions(), 2);
  EXPECT_GE(tree.depth(), 1);
  EXPECT_GT(tree.SizeBytes(), 0);
}

TEST(GridTreeTest, UniformWorkloadStaysOneRegion) {
  Benchmark bench = MakeUniformBenchmark(2, 20000, 113, 40, 1);
  GridTree tree =
      GridTree::Build(bench.data, bench.workload, 1, GridTreeOptions{});
  EXPECT_EQ(tree.num_regions(), 1);
  EXPECT_EQ(tree.depth(), 0);
}

TEST(GridTreeTest, RegionsPartitionEveryPoint) {
  Benchmark bench = MakeSkewedBench(10000);
  GridTree tree =
      GridTree::Build(bench.data, bench.workload, 2, GridTreeOptions{});
  std::vector<int64_t> counts(tree.num_regions(), 0);
  for (int64_t r = 0; r < bench.data.size(); ++r) {
    int region = tree.RegionOf(bench.data, r);
    ASSERT_GE(region, 0);
    ASSERT_LT(region, tree.num_regions());
    ++counts[region];
  }
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, bench.data.size());
}

TEST(GridTreeTest, RegionBoxesContainTheirPoints) {
  Benchmark bench = MakeSkewedBench(10000);
  GridTree tree =
      GridTree::Build(bench.data, bench.workload, 2, GridTreeOptions{});
  for (int64_t r = 0; r < bench.data.size(); r += 17) {
    int region = tree.RegionOf(bench.data, r);
    for (int d = 0; d < bench.data.dims(); ++d) {
      EXPECT_GE(bench.data.at(r, d), tree.region_lo(region)[d]);
      EXPECT_LE(bench.data.at(r, d), tree.region_hi(region)[d]);
    }
  }
}

TEST(GridTreeTest, CollectRegionsCoversMatchingPoints) {
  Benchmark bench = MakeSkewedBench(10000);
  GridTree tree =
      GridTree::Build(bench.data, bench.workload, 2, GridTreeOptions{});
  Rng rng(114);
  std::vector<int> regions;
  for (int trial = 0; trial < 100; ++trial) {
    Query q;
    Value lo = rng.UniformValue(0, kDomain - 1);
    Value hi = rng.UniformValue(lo, kDomain - 1);
    q.filters = {Predicate{0, lo, hi}};
    tree.CollectRegions(q, &regions);
    ASSERT_FALSE(regions.empty());
    // Every point matching the query must live in a collected region.
    for (int64_t r = 0; r < bench.data.size(); r += 23) {
      if (bench.data.at(r, 0) < lo || bench.data.at(r, 0) > hi) continue;
      int region = tree.RegionOf(bench.data, r);
      EXPECT_NE(std::find(regions.begin(), regions.end(), region),
                regions.end());
    }
  }
}

TEST(GridTreeTest, UnfilteredQueryHitsAllRegions) {
  Benchmark bench = MakeSkewedBench(10000);
  GridTree tree =
      GridTree::Build(bench.data, bench.workload, 2, GridTreeOptions{});
  Query q;  // No filters.
  std::vector<int> regions;
  tree.CollectRegions(q, &regions);
  EXPECT_EQ(static_cast<int>(regions.size()), tree.num_regions());
}

TEST(GridTreeTest, MaxDepthIsRespected) {
  Benchmark bench = MakeSkewedBench(10000);
  GridTreeOptions options;
  options.max_depth = 1;
  GridTree tree = GridTree::Build(bench.data, bench.workload, 2, options);
  EXPECT_LE(tree.depth(), 1);
}

TEST(GridTreeTest, MinQueriesThresholdStopsSplitting) {
  Benchmark bench = MakeSkewedBench(10000);
  GridTreeOptions options;
  options.min_queries_frac = 10.0;  // Impossible: every node is a leaf.
  GridTree tree = GridTree::Build(bench.data, bench.workload, 2, options);
  EXPECT_EQ(tree.num_regions(), 1);
}

TEST(GridTreeTest, TreeIsLightweightOnRealWorkloads) {
  Benchmark bench = MakeTaxiBenchmark(30000, 115, 50);
  GridTree tree = GridTree::Build(bench.data, bench.workload,
                                  bench.num_query_types, GridTreeOptions{});
  // Tab. 4: trees stay small (tens of nodes, depth <= 4ish).
  EXPECT_LE(tree.num_nodes(), 200);
  EXPECT_LE(tree.depth(), 8);
  EXPECT_LT(tree.SizeBytes(), 64 * 1024);
}

}  // namespace
}  // namespace tsunami
