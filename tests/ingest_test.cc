// Concurrent-ingest suite: EpochManager pin/retire/reclaim ordering,
// DeltaChunk encoded-vs-raw bit identity, IngestStore correctness against
// the full-scan reference across inserts / folds / reorganizations /
// repairs, snapshot isolation for pinned readers, plan-cache staleness, and
// a writers-vs-readers-vs-compaction stress run whose invariants (no torn
// reads, monotone visibility, quiesced-replay bit identity) are what the
// TSan CI pass checks for races. Fault-injection builds additionally drive
// the ingest.compact_throw fail-closed path and the ingest.swap_delay
// publish stall.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/fault_injection.h"
#include "src/common/random.h"
#include "src/ingest/delta_chunk.h"
#include "src/ingest/epoch.h"
#include "src/ingest/ingest_store.h"
#include "src/ingest/snapshot.h"
#include "src/serve/query_service.h"

namespace tsunami {
namespace {

using ingest::DeltaChunk;
using ingest::EpochManager;
using ingest::EpochPin;
using ingest::IngestOptions;
using ingest::IngestStore;

IngestOptions SmallIngestOptions() {
  IngestOptions options;
  options.index.sample_rows = 20000;
  options.index.agd.max_sample_points = 512;
  options.index.agd.max_sample_queries = 32;
  options.index.agd.max_iters = 2;
  options.index.agd.max_cells = 1 << 12;
  options.background_compaction = false;
  return options;
}

Query RangeCount(int dim, Value lo, Value hi) {
  Query q;
  q.filters.push_back(Predicate{dim, lo, hi});
  q.SetAggregates({{AggKind::kCount, 0}});
  return q;
}

void ExpectSameAnswer(const QueryResult& got, const QueryResult& want) {
  EXPECT_EQ(got.agg, want.agg);
  EXPECT_EQ(got.matched, want.matched);
  EXPECT_EQ(got.extra, want.extra);
}

// ---- EpochManager ---------------------------------------------------------

TEST(EpochManagerTest, RetireWithNoReadersReclaimsImmediately) {
  EpochManager epochs;
  int reclaimed = 0;
  epochs.Retire([&] { ++reclaimed; });
  EXPECT_EQ(reclaimed, 1);
  const EpochManager::Stats stats = epochs.stats();
  EXPECT_EQ(stats.retired, 1);
  EXPECT_EQ(stats.reclaimed, 1);
  EXPECT_EQ(stats.pending, 0);
}

TEST(EpochManagerTest, PinnedReaderHoldsBackReclaim) {
  EpochManager epochs;
  const uint64_t reader = epochs.Pin();
  int reclaimed = 0;
  epochs.Retire([&] { ++reclaimed; });
  // The reader pinned at (or before) the retire point: not reclaimable.
  EXPECT_EQ(reclaimed, 0);
  EXPECT_EQ(epochs.stats().pending, 1);
  // A *new* reader pins the post-retire epoch and does not hold it back.
  const uint64_t late = epochs.Pin();
  epochs.Unpin(late);
  EXPECT_EQ(reclaimed, 0);
  epochs.Unpin(reader);
  EXPECT_EQ(reclaimed, 1);
  EXPECT_EQ(epochs.stats().pending, 0);
}

TEST(EpochManagerTest, RetirementIsMonotone) {
  // Several versions retired behind one slow reader reclaim in retirement
  // order the moment the reader advances, and the lag statistic records how
  // far it dragged.
  EpochManager epochs;
  const uint64_t slow = epochs.Pin();
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    epochs.Retire([&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(order.empty());
  epochs.Unpin(slow);
  ASSERT_EQ(order.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[i], i);
  const EpochManager::Stats stats = epochs.stats();
  EXPECT_EQ(stats.reclaimed, 4);
  // The first retirement waited through three more epochs before the
  // reader moved: lag is at least the epoch distance it was dragged.
  EXPECT_GE(stats.max_retire_lag, 4u);
  EXPECT_EQ(stats.current_epoch, stats.oldest_pinned);
}

TEST(EpochManagerTest, RaiiPinReleasesOnce) {
  EpochManager epochs;
  int reclaimed = 0;
  {
    EpochPin pin(&epochs);
    EXPECT_TRUE(pin.held());
    EpochPin moved = std::move(pin);
    EXPECT_FALSE(pin.held());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(moved.held());
    epochs.Retire([&] { ++reclaimed; });
    EXPECT_EQ(reclaimed, 0);
  }
  EXPECT_EQ(reclaimed, 1);
  EXPECT_EQ(epochs.stats().pinned, 0);
}

// ---- DeltaChunk -----------------------------------------------------------

// Satellite: a sealed (block-encoded) chunk must answer every query with
// results bit-identical to the raw columnar path — aggregates, match
// counts, and the scanned/cell_ranges accounting all included.
TEST(DeltaChunkTest, SealedScanBitIdenticalToRaw) {
  Rng rng(91);
  const int64_t capacity = 3 * kScanBlockRows;
  DeltaChunk chunk(/*dims=*/3, capacity, /*id=*/1);
  std::vector<Value> row(3);
  for (int64_t i = 0; i < capacity; ++i) {
    row[0] = rng.UniformValue(0, 100000);
    row[1] = rng.UniformValue(-5000, 5000);
    row[2] = rng.UniformValue(0, 100);
    ASSERT_TRUE(chunk.Append(row.data()));
  }
  ASSERT_TRUE(chunk.full());
  EXPECT_FALSE(chunk.Append(row.data()));  // Full chunks refuse appends.

  std::vector<Query> queries;
  {
    Query q = RangeCount(0, 25000, 75000);
    q.SetAggregates({{AggKind::kCount, 0},
                     {AggKind::kSum, 1},
                     {AggKind::kMin, 1},
                     {AggKind::kMax, 2},
                     {AggKind::kAvg, 1}});
    queries.push_back(q);
  }
  {
    Query q;  // Multi-filter, narrow.
    q.filters.push_back(Predicate{0, 40000, 60000});
    q.filters.push_back(Predicate{1, -1000, 1000});
    q.SetAggregates({{AggKind::kSum, 2}});
    queries.push_back(q);
  }
  {
    Query q;  // No filters: every row matches.
    q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kMax, 0}});
    queries.push_back(q);
  }
  {
    Query q = RangeCount(2, 1000, 2000);  // Empty match set.
    queries.push_back(q);
  }

  std::vector<QueryResult> raw;
  for (const Query& q : queries) {
    QueryResult r = InitResult(q);
    chunk.Scan(q, &r, ScanOptions{});
    raw.push_back(r);
  }

  ASSERT_FALSE(chunk.sealed());
  chunk.Seal();
  ASSERT_TRUE(chunk.sealed());

  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResult r = InitResult(queries[i]);
    chunk.Scan(queries[i], &r, ScanOptions{});
    EXPECT_EQ(r.agg, raw[i].agg) << "query " << i;
    EXPECT_EQ(r.matched, raw[i].matched) << "query " << i;
    EXPECT_EQ(r.extra, raw[i].extra) << "query " << i;
    EXPECT_EQ(r.scanned, raw[i].scanned) << "query " << i;
    EXPECT_EQ(r.cell_ranges, raw[i].cell_ranges) << "query " << i;
  }
}

TEST(DeltaChunkTest, CommittedCountGatesVisibility) {
  DeltaChunk chunk(/*dims=*/2, /*capacity=*/64, /*id=*/1);
  Query all;
  all.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
  QueryResult empty = InitResult(all);
  chunk.Scan(all, &empty, ScanOptions{});
  EXPECT_EQ(empty.matched, 0);

  const Value row[2] = {7, 100};
  ASSERT_TRUE(chunk.Append(row));
  QueryResult one = InitResult(all);
  chunk.Scan(all, &one, ScanOptions{});
  EXPECT_EQ(one.matched, 1);
  EXPECT_EQ(one.agg, 1);
  EXPECT_EQ(one.extra[0], 100);
  EXPECT_EQ(chunk.Get(0, 0), 7);
}

// ---- IngestStore correctness ---------------------------------------------

struct IngestFixture {
  Dataset data{2, {}};
  Workload workload;
  Rng rng{17};

  explicit IngestFixture(int64_t base_rows) {
    for (int64_t i = 0; i < base_rows; ++i) {
      Value x = rng.UniformValue(0, 100000);
      data.AppendRow({x, rng.UniformValue(0, 1000)});
    }
    for (int i = 0; i < 12; ++i) {
      Query q;
      Value lo = rng.UniformValue(0, 90000);
      q.filters.push_back(Predicate{0, lo, lo + 8000});
      workload.push_back(q);
    }
  }

  std::vector<Value> RandomRow() {
    return {rng.UniformValue(0, 100000), rng.UniformValue(0, 1000)};
  }

  std::vector<Query> CheckQueries() {
    std::vector<Query> queries;
    for (int i = 0; i < 16; ++i) {
      Query q;
      Value lo = rng.UniformValue(0, 80000);
      q.filters.push_back(Predicate{0, lo, lo + 15000});
      q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
      queries.push_back(q);
    }
    Query all = RangeCount(0, 0, 200000);
    queries.push_back(all);
    return queries;
  }
};

void CheckAgainstReference(const IngestStore& store, const Dataset& expect,
                           const std::vector<Query>& queries) {
  FullScanIndex reference(expect);
  for (const Query& q : queries) {
    const QueryResult want = reference.Execute(q);
    const QueryResult got = store.Execute(q);
    ExpectSameAnswer(got, want);
    EXPECT_FALSE(got.degraded);
  }
}

TEST(IngestStoreTest, InsertsVisibleImmediatelyAndMatchReference) {
  IngestFixture fx(4000);
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 512;  // Force several rolls.
  IngestStore store(fx.data, fx.workload, options);
  EXPECT_EQ(store.version(), 1u);

  Dataset expect = fx.data;
  for (int i = 0; i < 2000; ++i) {
    std::vector<Value> row = fx.RandomRow();
    store.Insert(row);
    expect.AppendRow(row);
  }
  const IngestStore::Stats stats = store.stats();
  EXPECT_EQ(stats.rows_ingested, 2000);
  EXPECT_GE(stats.chunk_rolls, 1);
  EXPECT_EQ(stats.store_rows + stats.delta_rows,
            static_cast<int64_t>(expect.size()));
  CheckAgainstReference(store, expect, fx.CheckQueries());
}

TEST(IngestStoreTest, CompactionFoldsDeltaAndPreservesAnswers) {
  IngestFixture fx(4000);
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 512;
  IngestStore store(fx.data, fx.workload, options);

  Dataset expect = fx.data;
  std::vector<std::vector<Value>> batch;
  for (int i = 0; i < 1500; ++i) {
    batch.push_back(fx.RandomRow());
    expect.AppendRow(batch.back());
  }
  EXPECT_EQ(store.InsertBatch(batch), 1500);

  // Quiesced replay: record the answers, fold everything, replay — the
  // answers must be bit-identical across the version swap.
  const std::vector<Query> queries = fx.CheckQueries();
  std::vector<QueryResult> before;
  for (const Query& q : queries) before.push_back(store.Execute(q));

  const uint64_t v0 = store.version();
  store.ForceRoll();
  const uint64_t folded = store.CompactNow();
  EXPECT_GT(folded, v0);
  const IngestStore::Stats stats = store.stats();
  EXPECT_EQ(stats.delta_rows, 0);
  EXPECT_EQ(stats.store_rows, static_cast<int64_t>(expect.size()));
  EXPECT_GE(stats.compactions, 1);

  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameAnswer(store.Execute(queries[i]), before[i]);
  }
  CheckAgainstReference(store, expect, queries);

  // Nothing retired and no reorg requested: CompactNow is a no-op.
  EXPECT_EQ(store.CompactNow(), store.version());
}

TEST(IngestStoreTest, PinnedSnapshotIsUntouchedByFold) {
  IngestFixture fx(3000);
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 256;
  IngestStore store(fx.data, fx.workload, options);

  auto pinned = store.PinSnapshot();
  const uint64_t pinned_version = pinned->version();
  const int64_t pinned_store_rows = pinned->index().store().size();
  EXPECT_GE(store.stats().epochs.pinned, 1);

  for (int i = 0; i < 1000; ++i) store.Insert(fx.RandomRow());
  store.ForceRoll();
  ASSERT_GT(store.CompactNow(), pinned_version);

  // The fold built and published a new version; the pinned snapshot's
  // sorted index is the old one, byte for byte.
  EXPECT_EQ(pinned->version(), pinned_version);
  EXPECT_EQ(pinned->index().store().size(), pinned_store_rows);
  EXPECT_GT(store.CurrentSnapshot()->index().store().size(),
            pinned_store_rows);

  // The superseded versions stay un-reclaimed while the pin lives, and
  // reclaim the moment it drops.
  EXPECT_GE(store.stats().epochs.pending, 1);
  pinned.reset();
  const EpochManager::Stats epochs = store.stats().epochs;
  EXPECT_EQ(epochs.pending, 0);
  EXPECT_GE(epochs.reclaimed, 1);
}

TEST(IngestStoreTest, ReorganizeRetargetsGridWithoutChangingAnswers) {
  IngestFixture fx(4000);
  IngestStore store(fx.data, fx.workload, SmallIngestOptions());

  Dataset expect = fx.data;
  for (int i = 0; i < 600; ++i) {
    std::vector<Value> row = fx.RandomRow();
    store.Insert(row);
    expect.AppendRow(row);
  }

  // The workload shifts: dim-1-heavy queries. Reorganization is synchronous
  // here (no background compactor) and must not change any answer.
  Workload shifted;
  for (int i = 0; i < 12; ++i) {
    Query q;
    Value lo = fx.rng.UniformValue(0, 800);
    q.filters.push_back(Predicate{1, lo, lo + 100});
    shifted.push_back(q);
  }
  const uint64_t v0 = store.version();
  store.ForceRoll();  // Retire the tail so the reorg folds every row.
  store.RequestReorganize(shifted);
  EXPECT_GT(store.version(), v0);
  const IngestStore::Stats stats = store.stats();
  EXPECT_GE(stats.reorgs, 1);
  EXPECT_EQ(stats.delta_rows, 0);  // Reorg folds the retired delta too.
  CheckAgainstReference(store, expect, fx.CheckQueries());
}

TEST(IngestStoreTest, BackgroundTickSealsRetiredChunks) {
  IngestFixture fx(2000);
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 2 * kScanBlockRows;
  options.encode_min_blocks = 2;
  options.compact_min_chunks = 1000;  // Keep the fold out of this test.
  IngestStore store(fx.data, fx.workload, options);

  for (int64_t i = 0; i < 2 * options.chunk_capacity + 16; ++i) {
    store.Insert(fx.RandomRow());
  }
  // Sealing is a pure representation change: compare the store's answers
  // before and after, no external reference needed.
  const std::vector<Query> queries = fx.CheckQueries();
  std::vector<QueryResult> before;
  for (const Query& q : queries) before.push_back(store.Execute(q));

  store.BackgroundTick();
  EXPECT_GE(store.stats().chunks_sealed, 2);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameAnswer(store.Execute(queries[i]), before[i]);
  }
}

// Satellite: repair flows through the snapshot mechanism — the healed index
// is published as a new version while a reader pinned on the quarantined
// version keeps seeing its (degraded but consistent) snapshot.
TEST(IngestStoreTest, RepairPublishesHealedVersionOldPinStaysDegraded) {
  // Base table entirely in dim0 <= 10000; inserted rows far above, so after
  // the fold the clustered store's tail blocks are wholly insert-origin —
  // exactly the blocks RepairQuarantinedFromDelta can re-materialize.
  Rng rng(53);
  Dataset data(2, {});
  for (int i = 0; i < 6000; ++i) {
    data.AppendRow({rng.UniformValue(0, 10000), rng.UniformValue(0, 500)});
  }
  Workload workload;
  for (int i = 0; i < 12; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 9000);
    q.filters.push_back(Predicate{0, lo, lo + 800});
    workload.push_back(q);
  }
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 512;
  IngestStore store(data, workload, options);
  EXPECT_EQ(store.RepairQuarantined(), 0);  // Nothing to heal yet.

  std::vector<std::vector<Value>> inserts;
  for (int i = 0; i < 3000; ++i) {
    inserts.push_back(
        {rng.UniformValue(100000, 110000), rng.UniformValue(0, 500)});
  }
  store.InsertBatch(inserts);
  store.ForceRoll();
  ASSERT_GT(store.CompactNow(), 1u);
  ASSERT_EQ(store.stats().delta_rows, 0);

  Query over_new;
  over_new.filters.push_back(Predicate{0, 100000, 110000});
  over_new.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
  const QueryResult want = store.Execute(over_new);
  EXPECT_EQ(want.matched, 3000);
  EXPECT_FALSE(want.degraded);

  // Quarantine the wholly-insert-origin blocks on the current version, then
  // pin it: this reader is stuck on the corrupt snapshot.
  const ColumnStore& cur_store = store.store();
  std::vector<int64_t> delta_blocks;
  for (int64_t b = 0; b * kScanBlockRows < cur_store.size(); ++b) {
    const int64_t lo = b * kScanBlockRows;
    const int64_t hi = std::min(cur_store.size(), lo + kScanBlockRows);
    bool all_delta = true;
    for (int64_t r = lo; r < hi && all_delta; ++r) {
      all_delta = cur_store.Get(r, 0) >= 100000;
    }
    if (all_delta) delta_blocks.push_back(b);
  }
  ASSERT_GE(delta_blocks.size(), 1u);
  for (int64_t b : delta_blocks) {
    cur_store.encoded(0).Quarantine(b);
    cur_store.encoded(1).Quarantine(b);
  }
  const int64_t quarantined = static_cast<int64_t>(delta_blocks.size()) * 2;
  auto pinned = store.PinSnapshot();
  const QueryResult degraded = pinned->Execute(over_new);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_LT(degraded.matched, want.matched);

  // Repair publishes a *new* version with every block healed...
  const uint64_t before_repair = store.version();
  EXPECT_EQ(store.RepairQuarantined(), quarantined);
  EXPECT_GT(store.version(), before_repair);
  EXPECT_GE(store.stats().repairs_published, 1);
  const QueryResult healed = store.Execute(over_new);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.agg, want.agg);
  EXPECT_EQ(healed.matched, want.matched);

  // ...while the pinned reader still sees its quarantined version — never a
  // half-repaired block, and byte-identical to its pre-repair answer.
  const QueryResult still_degraded = pinned->Execute(over_new);
  EXPECT_TRUE(still_degraded.degraded);
  EXPECT_EQ(still_degraded.matched, degraded.matched);
  EXPECT_EQ(still_degraded.agg, degraded.agg);
}

// ---- QueryService integration --------------------------------------------

TEST(IngestServiceTest, PlanCacheDropsPlansForSupersededVersions) {
  IngestFixture fx(3000);
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 256;
  IngestStore store(fx.data, fx.workload, options);

  ServiceOptions service_options;
  service_options.threads = 0;  // Inline execution: deterministic.
  QueryService service(&store, service_options);

  Query q = RangeCount(0, 10000, 60000);
  const QueryResult first = service.Run(q);
  const QueryResult repeat = service.Run(q);  // Cache hit, same version.
  ExpectSameAnswer(repeat, first);
  EXPECT_GE(service.plan_cache().stats().hits, 1);

  // Publish a new version (fold), then replay: the cached plan pins the old
  // snapshot and must be dropped as stale, not silently replayed.
  Dataset expect = fx.data;
  for (int i = 0; i < 800; ++i) {
    std::vector<Value> row = fx.RandomRow();
    store.Insert(row);
    expect.AppendRow(row);
  }
  store.ForceRoll();
  ASSERT_GT(store.CompactNow(), 1u);

  const QueryResult after = service.Run(q);
  EXPECT_GE(service.plan_cache().stats().stale, 1);
  FullScanIndex reference(expect);
  ExpectSameAnswer(after, reference.Execute(q));
}

TEST(IngestServiceTest, PublishListenerInvalidatesEagerly) {
  IngestFixture fx(3000);
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 256;
  IngestStore store(fx.data, fx.workload, options);

  ServiceOptions service_options;
  service_options.threads = 0;
  QueryService service(&store, service_options);
  store.AddPublishListener([&service, &store](uint64_t) {
    service.plan_cache().InvalidateIndex(store);
  });

  (void)service.Run(RangeCount(0, 0, 50000));
  (void)service.Run(RangeCount(0, 50000, 100000));
  EXPECT_EQ(service.plan_cache().stats().size, 2);

  // Any publish — here a chunk roll — drops the superseded plans without
  // waiting for them to be looked up again.
  for (int i = 0; i < 300; ++i) store.Insert(fx.RandomRow());
  store.ForceRoll();
  EXPECT_EQ(service.plan_cache().stats().size, 0);
  EXPECT_GE(service.plan_cache().stats().stale, 2);
}

// ---- Concurrency stress ---------------------------------------------------

// Writers, readers, and forced reorganization race freely; under TSan this
// is the data-race probe, and in any build it checks the visibility
// invariants: a reader never sees a torn count (matched must lie between
// the rows committed before and after its scan) and the quiesced store
// replays the reference answers exactly.
TEST(IngestConcurrencyTest, WritersReadersAndReorgRaceWithoutTornReads) {
  Rng rng(29);
  Dataset data(2, {});
  const int64_t kBaseRows = 2000;
  for (int64_t i = 0; i < kBaseRows; ++i) {
    data.AppendRow({rng.UniformValue(0, 100000), rng.UniformValue(0, 1000)});
  }
  Workload workload;
  for (int i = 0; i < 8; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 90000);
    q.filters.push_back(Predicate{0, lo, lo + 8000});
    workload.push_back(q);
  }
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 256;
  options.compact_min_chunks = 2;
  options.background_compaction = true;
  options.compact_poll_ms = 1;
  IngestStore store(data, workload, options);

  constexpr int kWriters = 2;
  constexpr int kRowsPerWriter = 2000;
  constexpr int kReaders = 2;
  constexpr int kReadsPerReader = 60;

  // Pre-generate every writer's rows so the quiesced reference is exact.
  std::vector<std::vector<std::vector<Value>>> writer_rows(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    Rng wrng(100 + w);
    for (int i = 0; i < kRowsPerWriter; ++i) {
      writer_rows[w].push_back(
          {wrng.UniformValue(0, 100000), wrng.UniformValue(0, 1000)});
    }
  }

  const Query count_all = RangeCount(0, 0, 200000);
  std::atomic<bool> torn{false};
  std::atomic<bool> stop_chaos{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, &writer_rows, w] {
      for (const auto& row : writer_rows[w]) store.Insert(row);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&store, &count_all, &torn, kBaseRows] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        // rows_ingested is incremented after the commit store, so any row
        // counted "ingested" before the scan starts is already visible in
        // the snapshot the scan pins.
        const int64_t low = kBaseRows + store.stats().rows_ingested;
        const QueryResult got = store.Execute(count_all);
        const int64_t high = kBaseRows + store.stats().rows_ingested;
        if (got.matched < low || got.matched > high || got.degraded) {
          torn.store(true);
        }
      }
    });
  }
  threads.emplace_back([&store, &workload, &stop_chaos] {
    // Chaos: force rolls and full reorganizations while traffic flows.
    int spin = 0;
    while (!stop_chaos.load()) {
      store.ForceRoll();
      if (++spin % 3 == 0) store.RequestReorganize(workload);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (int w = 0; w < kWriters + kReaders; ++w) threads[w].join();
  stop_chaos.store(true);
  threads.back().join();
  EXPECT_FALSE(torn.load());

  // Quiesce: fold everything, then replay against the exact reference.
  store.ForceRoll();
  store.CompactNow();
  const IngestStore::Stats stats = store.stats();
  EXPECT_EQ(stats.rows_ingested, kWriters * kRowsPerWriter);
  EXPECT_EQ(stats.delta_rows, 0);
  EXPECT_EQ(stats.store_rows, kBaseRows + kWriters * kRowsPerWriter);

  Dataset expect = data;
  for (const auto& rows : writer_rows) {
    for (const auto& row : rows) expect.AppendRow(row);
  }
  FullScanIndex reference(expect);
  ExpectSameAnswer(store.Execute(count_all), reference.Execute(count_all));
  Rng qrng(7);
  for (int i = 0; i < 12; ++i) {
    Query q;
    Value lo = qrng.UniformValue(0, 80000);
    q.filters.push_back(Predicate{0, lo, lo + 15000});
    q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
    ExpectSameAnswer(store.Execute(q), reference.Execute(q));
  }
}

// ---- Fault injection ------------------------------------------------------

#if defined(TSUNAMI_FAULT_INJECTION)

class IngestFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(IngestFaultTest, CompactThrowFailsClosedAndRetrySucceeds) {
  IngestFixture fx(3000);
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 256;
  IngestStore store(fx.data, fx.workload, options);

  Dataset expect = fx.data;
  for (int i = 0; i < 600; ++i) {
    std::vector<Value> row = fx.RandomRow();
    store.Insert(row);
    expect.AppendRow(row);
  }
  store.ForceRoll();

  fault::FaultSpec spec;
  spec.max_fires = 1;
  fault::Arm("ingest.compact_throw", spec);
  const uint64_t v0 = store.version();
  EXPECT_EQ(store.CompactNow(), v0);  // Failed closed: version unchanged.
  EXPECT_EQ(fault::FireCount("ingest.compact_throw"), 1);
  const IngestStore::Stats failed = store.stats();
  EXPECT_GE(failed.failed_compactions, 1);
  EXPECT_GT(failed.delta_rows, 0);  // Chunks stayed queued.
  CheckAgainstReference(store, expect, fx.CheckQueries());

  // The spec is exhausted: the retry folds normally and answers hold.
  EXPECT_GT(store.CompactNow(), v0);
  EXPECT_EQ(store.stats().delta_rows, 0);
  CheckAgainstReference(store, expect, fx.CheckQueries());
}

TEST_F(IngestFaultTest, SwapDelayWidensPublishWindowWithoutCorruption) {
  IngestFixture fx(2000);
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 128;
  IngestStore store(fx.data, fx.workload, options);

  fault::FaultSpec spec;
  spec.param = 500;  // Stall 500us inside every publish critical section.
  fault::Arm("ingest.swap_delay", spec);

  Dataset expect = fx.data;
  std::thread reader([&store] {
    const Query q = RangeCount(0, 0, 200000);
    for (int i = 0; i < 40; ++i) (void)store.Execute(q);
  });
  for (int i = 0; i < 500; ++i) {
    std::vector<Value> row = fx.RandomRow();
    store.Insert(row);
    expect.AppendRow(row);
  }
  store.ForceRoll();
  store.CompactNow();
  reader.join();
  EXPECT_GT(fault::FireCount("ingest.swap_delay"), 0);
  CheckAgainstReference(store, expect, fx.CheckQueries());
}

#endif  // TSUNAMI_FAULT_INJECTION

}  // namespace
}  // namespace tsunami
