// Cross-module integration tests: determinism, execution-counter
// invariants, size accounting, and degenerate-shape robustness of the full
// Tsunami pipeline.
#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/core/tsunami.h"
#include "src/datasets/datasets.h"
#include "src/flood/flood.h"

namespace tsunami {
namespace {

TsunamiOptions SmallOptions() {
  TsunamiOptions options;
  options.sample_rows = 20000;
  options.agd.max_sample_points = 512;
  options.agd.max_sample_queries = 32;
  options.agd.max_iters = 2;
  options.agd.max_cells = 1 << 12;
  return options;
}

TEST(IntegrationTest, RebuildsAreDeterministic) {
  Benchmark bench = MakeStocksBenchmark(6000, 601, 10);
  TsunamiIndex a(bench.data, bench.workload, SmallOptions());
  TsunamiIndex b(bench.data, bench.workload, SmallOptions());
  EXPECT_EQ(a.stats().num_regions, b.stats().num_regions);
  EXPECT_EQ(a.stats().total_cells, b.stats().total_cells);
  EXPECT_EQ(a.IndexSizeBytes(), b.IndexSizeBytes());
  for (const Query& q : bench.workload) {
    QueryResult ra = a.Execute(q);
    QueryResult rb = b.Execute(q);
    EXPECT_EQ(ra.agg, rb.agg);
    EXPECT_EQ(ra.scanned, rb.scanned);
    EXPECT_EQ(ra.cell_ranges, rb.cell_ranges);
  }
}

TEST(IntegrationTest, ExecutionCountersAreConsistent) {
  Benchmark bench = MakeTpchBenchmark(8000, 602, 10);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  FullScanIndex reference(bench.data);
  for (const Query& q : bench.workload) {
    QueryResult r = index.Execute(q);
    // Matches can exceed scans only through exact ranges (counted, not
    // scanned); both are bounded by the table size.
    EXPECT_LE(r.scanned, bench.data.size());
    EXPECT_LE(r.matched, bench.data.size());
    EXPECT_EQ(r.matched, reference.Execute(q).matched);
    EXPECT_GE(r.cell_ranges, 1);
    // The index must scan far less than the full table on these selective
    // workloads (paper's whole premise).
    EXPECT_LT(r.scanned, bench.data.size());
  }
}

TEST(IntegrationTest, IndexIsSmallRelativeToData) {
  for (const Benchmark& bench : MakeAllBenchmarks(8000)) {
    TsunamiIndex index(bench.data, bench.workload, SmallOptions());
    int64_t data_bytes =
        bench.data.size() * bench.data.dims() * sizeof(Value);
    EXPECT_LT(index.IndexSizeBytes(), data_bytes / 4) << bench.name;
  }
}

TEST(IntegrationTest, SingleDimensionDataset) {
  Dataset data(1, {});
  Rng rng(603);
  for (int i = 0; i < 5000; ++i) data.AppendRow({rng.UniformValue(0, 9999)});
  Workload w;
  for (int i = 0; i < 20; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 9999);
    q.filters = {Predicate{0, lo, lo + 500}};
    w.push_back(q);
  }
  TsunamiIndex index(data, w, SmallOptions());
  FullScanIndex reference(data);
  for (const Query& q : w) {
    EXPECT_EQ(index.Execute(q).agg, reference.Execute(q).agg);
  }
}

TEST(IntegrationTest, AllRowsIdentical) {
  Dataset data(3, {});
  for (int i = 0; i < 2000; ++i) data.AppendRow({5, 5, 5});
  Workload w;
  Query q;
  q.filters = {Predicate{0, 0, 10}};
  w.push_back(q);
  TsunamiIndex index(data, w, SmallOptions());
  EXPECT_EQ(index.Execute(q).agg, 2000);
  q.filters = {Predicate{1, 6, 10}};
  EXPECT_EQ(index.Execute(q).agg, 0);
}

TEST(IntegrationTest, TinyDataset) {
  Dataset data(2, {});
  data.AppendRow({1, 2});
  data.AppendRow({3, 4});
  Workload w;
  Query q;
  q.filters = {Predicate{0, 0, 2}};
  w.push_back(q);
  TsunamiIndex index(data, w, SmallOptions());
  EXPECT_EQ(index.Execute(q).agg, 1);
  FloodIndex flood(data, w);
  EXPECT_EQ(flood.Execute(q).agg, 1);
}

TEST(IntegrationTest, FloodAndTsunamiAgreeEverywhere) {
  Benchmark bench = MakePerfmonBenchmark(8000, 604, 10);
  TsunamiIndex tsunami_index(bench.data, bench.workload, SmallOptions());
  FloodOptions flood_options;
  flood_options.agd = SmallOptions().agd;
  FloodIndex flood(bench.data, bench.workload, flood_options);
  for (const Query& q : bench.workload) {
    EXPECT_EQ(tsunami_index.Execute(q).agg, flood.Execute(q).agg);
  }
}

TEST(IntegrationTest, NegativeValueDomains) {
  Rng rng(605);
  Dataset data(3, {});
  for (int i = 0; i < 5000; ++i) {
    Value a = rng.UniformValue(-1000000, -1000);
    data.AppendRow({a, -a, rng.UniformValue(-50, 50)});
  }
  Workload w;
  for (int i = 0; i < 20; ++i) {
    Query q;
    Value lo = rng.UniformValue(-1000000, -1000);
    q.filters = {Predicate{0, lo, lo + 10000},
                 Predicate{2, -10, 10}};
    w.push_back(q);
  }
  TsunamiIndex index(data, w, SmallOptions());
  FullScanIndex reference(data);
  for (const Query& q : w) {
    EXPECT_EQ(index.Execute(q).agg, reference.Execute(q).agg);
  }
}

TEST(IntegrationTest, UnfilteredCountIsExactAndScansNothing) {
  // COUNT(*) with no filters: every range is exact, so nothing is scanned.
  Benchmark bench = MakeUniformBenchmark(3, 5000, 606, 5);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  Query all;
  QueryResult r = index.Execute(all);
  EXPECT_EQ(r.agg, 5000);
  EXPECT_EQ(r.scanned, 0);
}

TEST(IntegrationTest, StoreHoldsPermutedData) {
  Benchmark bench = MakeUniformBenchmark(2, 1000, 607, 5);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  // Multiset equality: per-column sums and min/max match the input.
  for (int d = 0; d < 2; ++d) {
    int64_t sum_in = 0, sum_out = 0;
    for (int64_t r = 0; r < 1000; ++r) {
      sum_in += bench.data.at(r, d);
      sum_out += index.store().Get(r, d);
    }
    EXPECT_EQ(sum_in, sum_out);
  }
}

}  // namespace
}  // namespace tsunami
