// Tests for the persistence layer: serializer primitives, framed files,
// structure round-trips, full index snapshots, and corruption injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/fault_injection.h"

#include "src/common/linear_model.h"
#include "src/common/random.h"
#include "src/core/skeleton.h"
#include "src/core/tsunami.h"
#include "src/io/serializer.h"
#include "src/storage/column_store.h"

namespace tsunami {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- Serializer primitives ---------------------------------------------------

TEST(SerializerTest, Crc32KnownVector) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(SerializerTest, VarintRoundTripExtremes) {
  BinaryWriter writer;
  const int64_t cases[] = {0,
                           1,
                           -1,
                           127,
                           -128,
                           1 << 20,
                           -(1 << 20),
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min()};
  for (int64_t v : cases) writer.PutVarI64(v);
  BinaryReader reader(writer.buffer());
  for (int64_t v : cases) EXPECT_EQ(reader.GetVarI64(), v);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializerTest, UnsignedVarintBoundaries) {
  BinaryWriter writer;
  const uint64_t cases[] = {0, 0x7F, 0x80, 0x3FFF, 0x4000,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) writer.PutVarU64(v);
  BinaryReader reader(writer.buffer());
  for (uint64_t v : cases) EXPECT_EQ(reader.GetVarU64(), v);
  EXPECT_TRUE(reader.ok());
}

TEST(SerializerTest, DoubleRoundTripIsBitExact) {
  BinaryWriter writer;
  const double cases[] = {0.0, -0.0, 1.5, -3.25e300, 5e-324,
                          std::numeric_limits<double>::infinity()};
  for (double v : cases) writer.PutDouble(v);
  BinaryReader reader(writer.buffer());
  for (double v : cases) {
    double got = reader.GetDouble();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof(v)), 0);
  }
}

TEST(SerializerTest, ReaderUnderflowLatchesNotOk) {
  BinaryWriter writer;
  writer.PutFixed32(42);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.GetFixed32(), 42u);
  EXPECT_TRUE(reader.ok());
  reader.GetFixed64();  // Underflow.
  EXPECT_FALSE(reader.ok());
  // Subsequent reads stay not-ok and return defaults.
  EXPECT_EQ(reader.GetVarI64(), 0);
  EXPECT_FALSE(reader.ok());
}

TEST(SerializerTest, MalformedVarintRejected) {
  std::string bad(11, '\x80');  // 11 continuation bytes: too long.
  BinaryReader reader(bad);
  reader.GetVarU64();
  EXPECT_FALSE(reader.ok());
}

TEST(SerializerTest, CorruptLengthPrefixDoesNotAllocate) {
  BinaryWriter writer;
  writer.PutVarU64(uint64_t{1} << 62);  // Absurd element count.
  BinaryReader reader(writer.buffer());
  std::vector<Value> out;
  EXPECT_FALSE(reader.GetValueVec(&out));
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(out.empty());
}

TEST(SerializerTest, StringRoundTripAndTruncation) {
  BinaryWriter writer;
  writer.PutString("hello");
  writer.PutString("");
  {
    BinaryReader reader(writer.buffer());
    EXPECT_EQ(reader.GetString(), "hello");
    EXPECT_EQ(reader.GetString(), "");
    EXPECT_TRUE(reader.ok());
  }
  // Truncated: length prefix says 5, only 3 bytes follow.
  std::string cut = writer.buffer().substr(0, 4);
  BinaryReader reader(cut);
  reader.GetString();
  EXPECT_FALSE(reader.ok());
}

TEST(SerializerTest, RandomBytesNeverCrashReader) {
  // Adversarial decode: feed random garbage to every reader entry point;
  // the reader must return defaults and latch !ok(), never crash or
  // over-allocate.
  Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string junk(rng.NextBelow(64), '\0');
    for (char& c : junk) c = static_cast<char>(rng.NextBelow(256));
    BinaryReader reader(junk);
    switch (trial % 6) {
      case 0:
        reader.GetVarU64();
        break;
      case 1:
        reader.GetVarI64();
        break;
      case 2:
        reader.GetString();
        break;
      case 3: {
        std::vector<Value> out;
        reader.GetValueVec(&out);
        break;
      }
      case 4: {
        std::vector<double> out;
        reader.GetDoubleVec(&out);
        break;
      }
      default:
        reader.GetDouble();
        reader.GetFixed32();
        break;
    }
    // Drain the rest; must terminate and stay consistent.
    while (reader.ok() && !reader.AtEnd()) reader.GetU8();
  }
  SUCCEED();
}

// --- Framed files ------------------------------------------------------------

class FramedFileTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = TempPath("tsunami_frame_test.bin");
};

TEST_F(FramedFileTest, RoundTrip) {
  std::string error;
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset, "payload", &error))
      << error;
  std::string payload;
  ASSERT_TRUE(ReadFramedFile(path_, FileKind::kDataset, &payload, &error))
      << error;
  EXPECT_EQ(payload, "payload");
}

TEST_F(FramedFileTest, MissingFile) {
  std::string payload, error;
  EXPECT_FALSE(ReadFramedFile(TempPath("does_not_exist.bin"),
                              FileKind::kDataset, &payload, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(FramedFileTest, KindMismatch) {
  std::string error;
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset, "p", &error));
  std::string payload;
  EXPECT_FALSE(
      ReadFramedFile(path_, FileKind::kTsunamiIndex, &payload, &error));
  EXPECT_NE(error.find("kind"), std::string::npos);
}

TEST_F(FramedFileTest, BadMagic) {
  std::ofstream(path_, std::ios::binary) << "this is not a tsunami file!!";
  std::string payload, error;
  EXPECT_FALSE(ReadFramedFile(path_, FileKind::kDataset, &payload, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST_F(FramedFileTest, TruncationDetected) {
  std::string error;
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset,
                              std::string(1000, 'x'), &error));
  std::filesystem::resize_file(path_, 500);
  std::string payload;
  EXPECT_FALSE(ReadFramedFile(path_, FileKind::kDataset, &payload, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST_F(FramedFileTest, BitFlipDetectedByChecksum) {
  std::string error;
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset,
                              std::string(1000, 'x'), &error));
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(600);
    f.put('y');
  }
  std::string payload;
  EXPECT_FALSE(ReadFramedFile(path_, FileKind::kDataset, &payload, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos);
}

TEST_F(FramedFileTest, TruncationAtEveryByteIsTypedAndLoadsNothing) {
  // A crash mid-write or a torn copy can leave the file cut at ANY byte.
  // Every prefix must produce the exact typed error — kTruncated — with no
  // crash and no partial payload escaping to the caller.
  const std::string body = "framed-truncation-sweep-payload";
  std::string error;
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset, body, &error));
  std::string whole;
  {
    std::ifstream in(path_, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    whole = ss.str();
  }
  constexpr size_t kHeaderSize = 4 + 4 + 4 + 8 + 4;
  ASSERT_EQ(whole.size(), kHeaderSize + body.size());
  for (size_t cut = 0; cut < whole.size(); ++cut) {
    std::ofstream(path_, std::ios::binary) << whole.substr(0, cut);
    std::string payload = "sentinel";
    FileError code = FileError::kNone;
    error.clear();
    EXPECT_FALSE(
        ReadFramedFile(path_, FileKind::kDataset, &payload, &error, &code))
        << "cut at " << cut;
    EXPECT_EQ(code, FileError::kTruncated) << "cut at " << cut << ": " << error;
    EXPECT_EQ(payload, "sentinel") << "partial load at cut " << cut;
  }
}

#if defined(TSUNAMI_FAULT_INJECTION)
TEST_F(FramedFileTest, ShortReadFaultSweepAcrossSectionBoundaries) {
  // Same contract, driven through the io.short_read fault site: the armed
  // spec's param is the exact byte offset to cut at, so the sweep lands on
  // every section boundary of the v3 layout — magic | version | kind |
  // payload_size | crc | payload — plus the off-by-one positions around
  // each.
  const std::string body(257, 'z');
  std::string error;
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset, body, &error));
  constexpr int64_t kHeaderSize = 4 + 4 + 4 + 8 + 4;
  const int64_t total = kHeaderSize + static_cast<int64_t>(body.size());
  std::vector<int64_t> cuts;
  for (int64_t boundary : {int64_t{0}, int64_t{4}, int64_t{8}, int64_t{12},
                           int64_t{20}, kHeaderSize, total / 2, total - 1}) {
    for (int64_t delta : {int64_t{-1}, int64_t{0}, int64_t{1}}) {
      const int64_t cut = boundary + delta;
      if (cut >= 0 && cut < total) cuts.push_back(cut);
    }
  }
  for (int64_t cut : cuts) {
    fault::FaultSpec spec;
    spec.param = cut;
    fault::Arm("io.short_read", spec);
    std::string payload = "sentinel";
    FileError code = FileError::kNone;
    error.clear();
    EXPECT_FALSE(
        ReadFramedFile(path_, FileKind::kDataset, &payload, &error, &code))
        << "cut at " << cut;
    EXPECT_EQ(code, FileError::kTruncated) << "cut at " << cut << ": " << error;
    EXPECT_EQ(payload, "sentinel") << "partial load at cut " << cut;
  }
  // The default (param unset) halves the file — still a typed truncation.
  fault::Arm("io.short_read", fault::FaultSpec{});
  std::string payload = "sentinel";
  FileError code = FileError::kNone;
  EXPECT_FALSE(
      ReadFramedFile(path_, FileKind::kDataset, &payload, &error, &code));
  EXPECT_EQ(code, FileError::kTruncated);
  EXPECT_EQ(payload, "sentinel");
  fault::DisarmAll();

  // Disarmed, the very same file loads bit-exactly.
  std::string ok_payload;
  ASSERT_TRUE(ReadFramedFile(path_, FileKind::kDataset, &ok_payload, &error));
  EXPECT_EQ(ok_payload, body);
}
#endif  // TSUNAMI_FAULT_INJECTION

TEST(SerializerTest, XxHash64KnownVectorsAndSeeding) {
  // XXH64 reference check values.
  EXPECT_EQ(XxHash64(""), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(XxHash64("abc"), 0x44BC2CF5AD770999ull);
  // Seed perturbs the hash; same input + seed replays identically.
  EXPECT_NE(XxHash64("abc", 1), XxHash64("abc", 0));
  EXPECT_EQ(XxHash64("abc", 7), XxHash64("abc", 7));
  // Exercise the >32-byte striped path too.
  std::string long_input(1000, 'q');
  EXPECT_NE(XxHash64(long_input), XxHash64(long_input.substr(0, 999)));
}

TEST_F(FramedFileTest, TypedErrorCodesReportWhy) {
  std::string payload, error;
  FileError code = FileError::kNone;

  EXPECT_FALSE(ReadFramedFile(TempPath("io_test_absent.bin"),
                              FileKind::kDataset, &payload, &error, &code));
  EXPECT_EQ(code, FileError::kIoError);

  std::ofstream(path_, std::ios::binary)
      << "garbage garbage garbage garbage!";
  EXPECT_FALSE(
      ReadFramedFile(path_, FileKind::kDataset, &payload, &error, &code));
  EXPECT_EQ(code, FileError::kBadMagic);

  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset, "p", &error));
  EXPECT_FALSE(
      ReadFramedFile(path_, FileKind::kWorkload, &payload, &error, &code));
  EXPECT_EQ(code, FileError::kBadKind);

  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset,
                              std::string(400, 'x'), &error));
  std::filesystem::resize_file(path_, 100);
  EXPECT_FALSE(
      ReadFramedFile(path_, FileKind::kDataset, &payload, &error, &code));
  EXPECT_EQ(code, FileError::kTruncated);

  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset,
                              std::string(400, 'x'), &error));
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    f.put('y');
  }
  EXPECT_FALSE(
      ReadFramedFile(path_, FileKind::kDataset, &payload, &error, &code));
  EXPECT_EQ(code, FileError::kChecksumMismatch);

  // Success resets the code and surfaces the file's version.
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset, "ok", &error));
  uint32_t version = 0;
  EXPECT_TRUE(ReadFramedFile(path_, FileKind::kDataset, &payload, &error,
                             &code, &version));
  EXPECT_EQ(code, FileError::kNone);
  EXPECT_EQ(version, kTsunamiFormatVersion);
}

// Overwrites the framed header's version field (bytes 4..7, little-endian).
// The frame CRC covers only the payload, so this forgery stays "valid" —
// exactly what the version gate must catch (or accept, for supported
// older versions).
void PatchFileVersion(const std::string& path, uint32_t version) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  for (int i = 0; i < 4; ++i) {
    f.put(static_cast<char>((version >> (8 * i)) & 0xFF));
  }
}

TEST_F(FramedFileTest, VersionOneRejectedWithTypedCode) {
  std::string error;
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset, "old", &error));
  PatchFileVersion(path_, 1);
  std::string payload;
  FileError code = FileError::kNone;
  EXPECT_FALSE(
      ReadFramedFile(path_, FileKind::kDataset, &payload, &error, &code));
  EXPECT_EQ(code, FileError::kBadVersion);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST_F(FramedFileTest, VersionTwoColumnPayloadStillReads) {
  // A genuine v2 EncodedColumn payload is a strict prefix of the v3 one:
  // v3 appends num_blocks Fixed64 checksums at the tail. Build the v2
  // bytes by stripping that tail, frame them under a patched version-2
  // header, and read the whole pipeline back.
  Rng rng(17);
  std::vector<Value> values;
  for (int i = 0; i < 3000; ++i) values.push_back(rng.UniformValue(0, 5000));
  EncodedColumn column;
  column.Encode(values, EncodingEnabledByDefault());
  BinaryWriter writer;
  column.Serialize(&writer);
  const size_t tail = static_cast<size_t>(column.num_blocks()) * 8;
  std::string v2_payload =
      writer.buffer().substr(0, writer.buffer().size() - tail);

  std::string error;
  ASSERT_TRUE(WriteFramedFile(path_, FileKind::kDataset, v2_payload, &error));
  PatchFileVersion(path_, 2);
  std::string payload;
  FileError code = FileError::kNone;
  uint32_t version = 0;
  ASSERT_TRUE(ReadFramedFile(path_, FileKind::kDataset, &payload, &error,
                             &code, &version))
      << error;
  ASSERT_EQ(version, 2u);

  BinaryReader reader(payload);
  reader.set_version(version);
  EncodedColumn loaded;
  ASSERT_TRUE(loaded.Deserialize(&reader));
  EXPECT_TRUE(reader.AtEnd());
  // Checksums were recomputed from the (CRC-validated) payload: nothing
  // quarantined, every value intact.
  EXPECT_EQ(loaded.quarantined_blocks(), 0);
  std::vector<Value> decoded = loaded.DecodeAll();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(decoded[i], values[i]) << "row " << i;
  }
}

TEST(StructureIoTest, FlippedBlockChecksumQuarantinesInsteadOfFailing) {
  // Corrupt one *stored checksum* in a serialized ColumnStore (the last 8
  // payload bytes are the final column's final block checksum; the frame
  // CRC is bypassed by deserializing the buffer directly, as a torn disk
  // sector would present). The load must succeed with the block
  // quarantined, scans over it must come back flagged degraded — and
  // queries that never touch the bad column stay exact.
  Rng rng(29);
  Dataset data(3, {});
  for (int i = 0; i < 5000; ++i) {
    data.AppendRow({rng.UniformValue(0, 100000), rng.UniformValue(0, 800),
                    rng.UniformValue(-50, 50)});
  }
  ColumnStore pristine(data);
  BinaryWriter writer;
  pristine.Serialize(&writer);
  std::string buffer = writer.Release();
  buffer[buffer.size() - 4] = static_cast<char>(buffer[buffer.size() - 4] ^ 0x5A);

  ColumnStore loaded;
  BinaryReader reader(buffer);
  ASSERT_TRUE(loaded.Deserialize(&reader));
  EXPECT_EQ(loaded.QuarantinedBlocks(), 1);
  const int last_dim = loaded.dims() - 1;
  const int64_t last_block = loaded.encoded(last_dim).num_blocks() - 1;
  EXPECT_TRUE(loaded.encoded(last_dim).IsQuarantined(last_block));

  // SUM over the quarantined column: degraded, flagged, not a crash.
  Query sum;
  sum.filters.push_back(Predicate{0, 0, 100000});
  sum.SetAggregates({{AggKind::kSum, last_dim}});
  QueryResult got = ExecuteFullScan(loaded, sum);
  EXPECT_TRUE(got.degraded);
  EXPECT_EQ(got.quarantined_blocks, 1);

  // COUNT filtered on a healthy column: exact, equal to the pristine store.
  Query count;
  count.filters.push_back(Predicate{0, 0, 50000});
  count.SetAggregates({{AggKind::kCount, 0}});
  QueryResult got_count = ExecuteFullScan(loaded, count);
  QueryResult want_count = ExecuteFullScan(pristine, count);
  EXPECT_FALSE(got_count.degraded);
  EXPECT_EQ(got_count.agg, want_count.agg);
  EXPECT_EQ(got_count.matched, want_count.matched);
}

// --- Structure round-trips ----------------------------------------------------

TEST(StructureIoTest, ColumnStoreRoundTrip) {
  Rng rng(3);
  Dataset data(3, {});
  for (int i = 0; i < 500; ++i) {
    data.AppendRow({rng.UniformValue(-1000, 1000), i, kValueMax - i});
  }
  ColumnStore store(data);
  BinaryWriter writer;
  store.Serialize(&writer);
  ColumnStore loaded;
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(loaded.Deserialize(&reader));
  ASSERT_EQ(loaded.size(), store.size());
  ASSERT_EQ(loaded.dims(), store.dims());
  for (int64_t r = 0; r < store.size(); ++r) {
    for (int d = 0; d < store.dims(); ++d) {
      ASSERT_EQ(loaded.Get(r, d), store.Get(r, d));
    }
  }
}

TEST(StructureIoTest, SkeletonRoundTripAndValidation) {
  Skeleton skel;
  skel.dims = {DimSpec{PartitionStrategy::kIndependent, -1},
               DimSpec{PartitionStrategy::kConditional, 0},
               DimSpec{PartitionStrategy::kMapped, 0}};
  ASSERT_TRUE(skel.Validate());
  BinaryWriter writer;
  skel.Serialize(&writer);
  Skeleton loaded;
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(loaded.Deserialize(&reader));
  EXPECT_EQ(loaded, skel);

  // An invalid skeleton (self-referential mapping) must be rejected even if
  // the encoding is well-formed.
  BinaryWriter bad;
  bad.PutVarU64(1);
  bad.PutU8(1);      // kMapped
  bad.PutVarI64(0);  // maps to itself
  Skeleton rejected;
  BinaryReader bad_reader(bad.buffer());
  EXPECT_FALSE(rejected.Deserialize(&bad_reader));
}

TEST(StructureIoTest, BoundedLinearModelRoundTrip) {
  std::vector<Value> ys, xs;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Value y = rng.UniformValue(0, 10000);
    ys.push_back(y);
    xs.push_back(3 * y + 17 + rng.UniformValue(-40, 40));
  }
  BoundedLinearModel model = BoundedLinearModel::Fit(ys, xs);
  BinaryWriter writer;
  model.Serialize(&writer);
  BoundedLinearModel loaded;
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(loaded.Deserialize(&reader));
  EXPECT_EQ(loaded.slope(), model.slope());
  EXPECT_EQ(loaded.intercept(), model.intercept());
  EXPECT_EQ(loaded.error_lo(), model.error_lo());
  EXPECT_EQ(loaded.error_hi(), model.error_hi());
  auto want = model.MapRange(100, 900);
  auto got = loaded.MapRange(100, 900);
  EXPECT_EQ(got, want);
}

// --- Full index snapshots -----------------------------------------------------

// Builds a Tsunami index over correlated data with a skewed two-type
// workload, snapshots it, reloads, and checks behavioural equivalence.
class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    data_ = Dataset(3, {});
    const int64_t n = 30000;
    data_.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      Value x = rng.UniformValue(0, 100000);
      data_.AppendRow(
          {x, 2 * x + rng.UniformValue(-100, 100), rng.UniformValue(0, 500)});
    }
    for (int i = 0; i < 60; ++i) {
      Query q;
      // Type 0: narrow recent-x queries; type 1: wide dim-2 queries.
      if (i % 2 == 0) {
        Value lo = rng.UniformValue(80000, 99000);
        q.filters = {Predicate{0, lo, lo + 1000}};
        q.type = 0;
      } else {
        Value lo = rng.UniformValue(0, 400);
        q.filters = {Predicate{2, lo, lo + 50},
                     Predicate{1, 0, 150000}};
        q.type = 1;
      }
      workload_.push_back(q);
    }
    TsunamiOptions options;
    options.cluster_queries = false;
    index_ = std::make_unique<TsunamiIndex>(data_, workload_, options);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_ = TempPath("tsunami_snapshot_test.bin");
  Dataset data_;
  Workload workload_;
  std::unique_ptr<TsunamiIndex> index_;
};

TEST_F(SnapshotTest, RoundTripPreservesAnswersAndStructure) {
  std::string error;
  ASSERT_TRUE(index_->SaveToFile(path_, &error)) << error;
  std::unique_ptr<TsunamiIndex> loaded =
      TsunamiIndex::LoadFromFile(path_, &error);
  ASSERT_NE(loaded, nullptr) << error;

  EXPECT_EQ(loaded->Name(), index_->Name());
  EXPECT_EQ(loaded->IndexSizeBytes(), index_->IndexSizeBytes());
  EXPECT_EQ(loaded->stats().num_regions, index_->stats().num_regions);
  EXPECT_EQ(loaded->stats().total_cells, index_->stats().total_cells);
  EXPECT_EQ(loaded->store().size(), index_->store().size());

  for (const Query& q : workload_) {
    QueryResult want = index_->Execute(q);
    QueryResult got = loaded->Execute(q);
    EXPECT_EQ(got.agg, want.agg);
    EXPECT_EQ(got.matched, want.matched);
    // Identical structure must touch identical physical ranges.
    EXPECT_EQ(got.scanned, want.scanned);
    EXPECT_EQ(got.cell_ranges, want.cell_ranges);
  }
}

TEST_F(SnapshotTest, LoadedIndexMatchesFullScanOnUnseenQueries) {
  std::string error;
  ASSERT_TRUE(index_->SaveToFile(path_, &error)) << error;
  std::unique_ptr<TsunamiIndex> loaded =
      TsunamiIndex::LoadFromFile(path_, &error);
  ASSERT_NE(loaded, nullptr) << error;
  ColumnStore reference(data_);
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    Query q;
    Value lo0 = rng.UniformValue(0, 90000);
    Value lo2 = rng.UniformValue(0, 450);
    q.filters = {Predicate{0, lo0, lo0 + rng.UniformValue(100, 20000)},
                 Predicate{2, lo2, lo2 + rng.UniformValue(1, 100)}};
    QueryResult want = ExecuteFullScan(reference, q);
    QueryResult got = loaded->Execute(q);
    EXPECT_EQ(got.agg, want.agg);
    EXPECT_EQ(got.matched, want.matched);
  }
}

TEST_F(SnapshotTest, DeltaBufferSurvivesSnapshot) {
  index_->Insert({50, 100, 250});
  index_->Insert({51, 102, 251});
  std::string error;
  ASSERT_TRUE(index_->SaveToFile(path_, &error)) << error;
  std::unique_ptr<TsunamiIndex> loaded =
      TsunamiIndex::LoadFromFile(path_, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->delta_size(), 2);
  Query q;
  q.filters = {Predicate{0, 50, 51}, Predicate{2, 250, 251}};
  EXPECT_EQ(loaded->Execute(q).agg, index_->Execute(q).agg);
}

TEST_F(SnapshotTest, CorruptPayloadRejected) {
  std::string error;
  ASSERT_TRUE(index_->SaveToFile(path_, &error)) << error;
  // Flip one byte in the middle of the payload.
  auto size = std::filesystem::file_size(path_);
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char c = static_cast<char>(f.get());
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.put(static_cast<char>(c ^ 0x40));
  }
  EXPECT_EQ(TsunamiIndex::LoadFromFile(path_, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST_F(SnapshotTest, TruncatedSnapshotRejected) {
  std::string error;
  ASSERT_TRUE(index_->SaveToFile(path_, &error)) << error;
  auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size * 3 / 4);
  EXPECT_EQ(TsunamiIndex::LoadFromFile(path_, &error), nullptr);
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST_F(SnapshotTest, WrongKindRejected) {
  std::string error;
  ASSERT_TRUE(
      WriteFramedFile(path_, FileKind::kWorkload, "not an index", &error));
  EXPECT_EQ(TsunamiIndex::LoadFromFile(path_, &error), nullptr);
  EXPECT_NE(error.find("kind"), std::string::npos);
}

TEST_F(SnapshotTest, SnapshotIsCompact) {
  std::string error;
  ASSERT_TRUE(index_->SaveToFile(path_, &error)) << error;
  // Encoded blocks should beat raw 8-byte-per-value storage on disk.
  // (DataSizeBytes now reports true encoded bytes, so compare against the
  // logical raw footprint the store would have had unencoded.)
  int64_t raw_bytes = index_->store().size() * index_->store().dims() *
                      static_cast<int64_t>(sizeof(Value));
  EXPECT_LT(static_cast<int64_t>(std::filesystem::file_size(path_)),
            raw_bytes);
  // In-memory narrowing only shrinks the store when it is enabled (the
  // TSUNAMI_DISABLE_ENCODING configuration stores raw blocks + metadata).
  if (EncodingEnabledByDefault()) {
    EXPECT_LE(index_->store().DataSizeBytes(), raw_bytes);
  }
}

}  // namespace
}  // namespace tsunami
