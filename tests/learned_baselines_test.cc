// Tests for the learned related-work baselines (§7): the ZM-index [44]
// (Z-order + RMI, learned from data only) and the greedy qd-tree [46]
// (workload-aware block partitioning). Both must agree with a full scan on
// every evaluation dataset, and their structural claims (model-sized
// overhead, query-adapted blocks) must hold.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/baselines/qd_tree.h"
#include "src/baselines/zm_index.h"
#include "src/common/random.h"
#include "src/datasets/datasets.h"

namespace tsunami {
namespace {

using BenchIndexParam = std::tuple<int, int>;

class LearnedBaselineTest : public ::testing::TestWithParam<BenchIndexParam> {
 protected:
  Benchmark MakeBench() const {
    switch (std::get<0>(GetParam())) {
      case 0:
        return MakeTpchBenchmark(30000);
      case 1:
        return MakeTaxiBenchmark(30000);
      case 2:
        return MakePerfmonBenchmark(30000);
      default:
        return MakeStocksBenchmark(30000);
    }
  }
};

TEST_P(LearnedBaselineTest, MatchesFullScan) {
  Benchmark bench = MakeBench();
  std::unique_ptr<MultiDimIndex> index;
  if (std::get<1>(GetParam()) == 0) {
    index = std::make_unique<ZmIndex>(bench.data);
  } else {
    QdTreeIndex::Options options;
    options.min_leaf_rows = 512;
    index = std::make_unique<QdTreeIndex>(bench.data, bench.workload,
                                          options);
  }
  FullScanIndex full(bench.data);
  for (size_t i = 0; i < bench.workload.size(); i += 7) {
    const Query& q = bench.workload[i];
    QueryResult got = index->Execute(q);
    QueryResult want = full.Execute(q);
    ASSERT_EQ(got.matched, want.matched)
        << bench.name << " query " << i << " on " << index->Name();
    ASSERT_EQ(got.agg, want.agg)
        << bench.name << " query " << i << " on " << index->Name();
  }
}

std::string BenchIndexName(
    const ::testing::TestParamInfo<BenchIndexParam>& info) {
  static const char* kBench[] = {"TpcH", "Taxi", "Perfmon", "Stocks"};
  static const char* kIndex[] = {"Zm", "QdTree"};
  return std::string(kIndex[std::get<1>(info.param)]) +
         kBench[std::get<0>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, LearnedBaselineTest,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 2)),
    BenchIndexName);

// --- ZM-index structure -------------------------------------------------------

TEST(ZmIndexTest, ErrorBoundIsRespectedAndOverheadIsModelSized) {
  Rng rng(5);
  Dataset data(3, {});
  for (int i = 0; i < 20000; ++i) {
    Value x = rng.UniformValue(0, 100000);
    data.AppendRow({x, x / 3 + rng.UniformValue(-50, 50),
                    rng.UniformValue(0, 999)});
  }
  ZmIndex index(data);
  // Overhead must stay model-sized: far below one value per row.
  EXPECT_LT(index.IndexSizeBytes(), data.size() * 8 / 4);
  EXPECT_GE(index.max_error(), 0);
  EXPECT_LT(index.max_error(), data.size());
}

TEST(ZmIndexTest, EmptyAndSingleRowDatasets) {
  Dataset empty(2, {});
  ZmIndex zi(empty);
  Query q;
  q.filters = {Predicate{0, 0, 10}};
  EXPECT_EQ(zi.Execute(q).matched, 0);

  Dataset one(2, {5, 7});
  ZmIndex z1(one);
  EXPECT_EQ(z1.Execute(q).matched, 1);
  Query miss;
  miss.filters = {Predicate{0, 6, 10}};
  EXPECT_EQ(z1.Execute(miss).matched, 0);
}

TEST(ZmIndexTest, FullDomainQueryScansEverything) {
  Rng rng(6);
  Dataset data(2, {});
  for (int i = 0; i < 5000; ++i) {
    data.AppendRow({rng.UniformValue(0, 999), rng.UniformValue(0, 999)});
  }
  ZmIndex index(data);
  Query q;  // No filters.
  QueryResult r = index.Execute(q);
  EXPECT_EQ(r.matched, 5000);
}

// --- Qd-tree structure --------------------------------------------------------

TEST(QdTreeTest, AdaptsBlocksToWorkloadSkew) {
  // Uniform 2-d data; every query hits the small hot corner. The greedy
  // cuts should isolate the corner so hot queries scan far fewer rows
  // than n.
  Rng rng(7);
  Dataset data(2, {});
  constexpr int64_t kRows = 40000;
  for (int64_t i = 0; i < kRows; ++i) {
    data.AppendRow({rng.UniformValue(0, 9999), rng.UniformValue(0, 9999)});
  }
  Workload workload;
  for (int i = 0; i < 50; ++i) {
    Value x = rng.UniformValue(9000, 9800);
    Value y = rng.UniformValue(9000, 9800);
    Query q;
    q.filters = {Predicate{0, x, x + 199}, Predicate{1, y, y + 199}};
    workload.push_back(q);
  }
  QdTreeIndex::Options options;
  options.min_leaf_rows = 256;
  QdTreeIndex index(data, workload, options);
  EXPECT_GT(index.num_leaves(), 1);

  int64_t scanned = 0;
  for (const Query& q : workload) scanned += index.Execute(q).scanned;
  // The hot region is ~1% of space; without adaptation each query scans
  // all 40k rows. Expect at least a 10x improvement on average.
  EXPECT_LT(scanned / static_cast<int64_t>(workload.size()), kRows / 10);
}

TEST(QdTreeTest, DegeneratesToOneLeafWithoutUsefulCuts) {
  // Queries with no filters offer no candidate cuts.
  Rng rng(8);
  Dataset data(2, {});
  for (int i = 0; i < 2000; ++i) {
    data.AppendRow({rng.UniformValue(0, 99), rng.UniformValue(0, 99)});
  }
  Workload workload(3);  // Filterless queries.
  QdTreeIndex index(data, workload);
  EXPECT_EQ(index.num_leaves(), 1);
  EXPECT_EQ(index.Execute(workload[0]).matched, 2000);
}

TEST(QdTreeTest, RespectsDepthLimit) {
  Rng rng(9);
  Dataset data(1, {});
  for (int i = 0; i < 30000; ++i) data.AppendRow({rng.UniformValue(0, 1 << 20)});
  Workload workload;
  for (int i = 0; i < 64; ++i) {
    Value lo = rng.UniformValue(0, (1 << 20) - 1000);
    Query q;
    q.filters = {Predicate{0, lo, lo + 999}};
    workload.push_back(q);
  }
  QdTreeIndex::Options options;
  options.min_leaf_rows = 16;
  options.max_depth = 5;
  QdTreeIndex index(data, workload, options);
  EXPECT_LE(index.depth(), 5);
  FullScanIndex full(data);
  for (const Query& q : workload) {
    ASSERT_EQ(index.Execute(q).matched, full.Execute(q).matched);
  }
}

TEST(QdTreeTest, AggregatesMatchFullScan) {
  Rng rng(10);
  Dataset data(3, {});
  for (int i = 0; i < 10000; ++i) {
    data.AppendRow({rng.UniformValue(0, 999), rng.UniformValue(0, 999),
                    rng.UniformValue(-100, 100)});
  }
  Workload workload;
  for (int i = 0; i < 20; ++i) {
    Value lo = rng.UniformValue(0, 800);
    Query q;
    q.filters = {Predicate{0, lo, lo + 150}};
    workload.push_back(q);
  }
  QdTreeIndex index(data, workload);
  FullScanIndex full(data);
  for (AggKind agg :
       {AggKind::kCount, AggKind::kSum, AggKind::kMin, AggKind::kMax,
        AggKind::kAvg}) {
    Query q = workload[3];
    q.agg = agg;
    q.agg_dim = 2;
    QueryResult got = index.Execute(q);
    QueryResult want = full.Execute(q);
    EXPECT_EQ(got.agg, want.agg) << static_cast<int>(agg);
    EXPECT_EQ(got.matched, want.matched);
  }
}

}  // namespace
}  // namespace tsunami
