// Network front-end suite: wire codec round trips and strict-decode
// rejections, the timer wheel, and live loopback servers — smoke
// equivalence against Execute, pipelined out-of-order completion,
// malformed/oversized/bad-version/bad-type typed errors, per-connection and
// per-client caps, queue-full retry, deadline propagation, backpressure and
// stalled-reader eviction, idle eviction, graceful drain, and (under
// -DTSUNAMI_FAULT_INJECTION=ON) the injected net.* fault sites.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/fault_injection.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/ingest/ingest_store.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/serve/query_service.h"

namespace tsunami {
namespace {

using net::ClientOptions;
using net::ClientResult;
using net::FrameHeader;
using net::FrameType;
using net::HeaderParse;
using net::ServerOptions;
using net::TimerWheel;
using net::TsunamiClient;
using net::TsunamiServer;
using net::WireError;

// ---- Codec ----------------------------------------------------------------

TEST(WireCodec, FrameHeaderRoundTrip) {
  FrameHeader in;
  in.type = FrameType::kQuery;
  in.request_id = 0x1122334455667788ULL;
  in.priority = -7;
  in.deadline_micros = 1500000;
  std::string buf;
  net::AppendFrame(in, "payload", &buf);
  ASSERT_EQ(buf.size(), net::kFrameHeaderSize + 7);

  FrameHeader out;
  ASSERT_EQ(net::ParseFrameHeader(buf, &out), HeaderParse::kOk);
  EXPECT_EQ(out.type, FrameType::kQuery);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload_len, 7u);
  EXPECT_EQ(out.priority, -7);
  EXPECT_EQ(out.deadline_micros, 1500000u);

  // Short buffers ask for more; corrupt magic / version are typed.
  FrameHeader ignored;
  EXPECT_EQ(net::ParseFrameHeader(std::string_view(buf).substr(0, 31),
                                  &ignored),
            HeaderParse::kNeedMore);
  std::string bad_magic = buf;
  bad_magic[0] = 'X';
  EXPECT_EQ(net::ParseFrameHeader(bad_magic, &ignored),
            HeaderParse::kBadMagic);
  std::string bad_version = buf;
  bad_version[4] = 99;
  EXPECT_EQ(net::ParseFrameHeader(bad_version, &ignored),
            HeaderParse::kBadVersion);
}

TEST(WireCodec, QueryPayloadRoundTrip) {
  Query q;
  q.filters.push_back(Predicate{0, -100, 100});
  q.filters.push_back(Predicate{2, 5, 5});
  q.SetAggregates({{AggKind::kSum, 1}, {AggKind::kMax, 2}});
  q.type = 3;
  const std::string payload = net::EncodeQueryPayload(q);

  Query out;
  ASSERT_TRUE(net::DecodeQueryPayload(payload, &out));
  ASSERT_EQ(out.filters.size(), 2u);
  EXPECT_EQ(out.filters[0].dim, 0);
  EXPECT_EQ(out.filters[0].lo, -100);
  EXPECT_EQ(out.filters[1].hi, 5);
  ASSERT_EQ(out.num_aggs(), 2);
  EXPECT_EQ(out.agg_spec(0).op, AggKind::kSum);
  EXPECT_EQ(out.agg_spec(1).op, AggKind::kMax);
  EXPECT_EQ(out.type, 3);
  EXPECT_TRUE(FingerprintEquivalent(q, out));
}

TEST(WireCodec, QueryPayloadStrictDecodeRejectsCorruption) {
  Query q;
  q.filters.push_back(Predicate{1, 10, 20});
  q.SetAggregates({{AggKind::kAvg, 2}});
  const std::string payload = net::EncodeQueryPayload(q);
  Query out;
  // Every truncation point fails cleanly (never crashes, never half-fills).
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(net::DecodeQueryPayload(
        std::string_view(payload).substr(0, cut), &out))
        << "cut at " << cut;
  }
  // Trailing garbage is rejected too (a frame is exactly one query).
  EXPECT_FALSE(net::DecodeQueryPayload(payload + "x", &out));
  // An out-of-range aggregate op byte is rejected.
  std::string bad_op = payload;
  // Layout: varu64 nfilters, filter triple, varu64 naggs, u8 op, ...
  // Find the op byte by re-encoding with a sentinel-free search: the op is
  // the byte right after the aggregate count for this single-agg query.
  // Encoded: [1][dim=1 zz][lo zz][hi zz][1][op][col zz][type zz]
  const size_t op_index = payload.size() - 3;
  ASSERT_EQ(static_cast<uint8_t>(bad_op[op_index]),
            static_cast<uint8_t>(AggKind::kAvg));
  bad_op[op_index] = 0x7F;
  EXPECT_FALSE(net::DecodeQueryPayload(bad_op, &out));
}

TEST(WireCodec, ResultAndErrorPayloadRoundTrip) {
  net::ResultPayload in;
  in.outcome = QueryOutcome::kShed;
  in.server_latency_seconds = 0.25;
  in.result.agg = -42;
  in.result.scanned = 1000;
  in.result.matched = 17;
  in.result.cell_ranges = 3;
  in.result.degraded = true;
  in.result.quarantined_blocks = 2;
  in.result.extra = {7, -9};
  std::string payload = net::EncodeResultPayload(in);
  net::ResultPayload out;
  ASSERT_TRUE(net::DecodeResultPayload(payload, &out));
  EXPECT_EQ(out.outcome, QueryOutcome::kShed);
  EXPECT_DOUBLE_EQ(out.server_latency_seconds, 0.25);
  EXPECT_EQ(out.result.agg, -42);
  EXPECT_EQ(out.result.matched, 17);
  EXPECT_TRUE(out.result.degraded);
  EXPECT_EQ(out.result.quarantined_blocks, 2);
  ASSERT_EQ(out.result.extra.size(), 2u);
  EXPECT_EQ(out.result.extra[1], -9);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(net::DecodeResultPayload(
        std::string_view(payload).substr(0, cut), &out));
  }

  const std::string err =
      net::EncodeErrorPayload(WireError::kQueueFull, "try later");
  WireError code = WireError::kNone;
  std::string message;
  ASSERT_TRUE(net::DecodeErrorPayload(err, &code, &message));
  EXPECT_EQ(code, WireError::kQueueFull);
  EXPECT_EQ(message, "try later");
  EXPECT_STREQ(net::ToString(WireError::kQueueFull), "queue-full");
  EXPECT_TRUE(net::IsRetryable(WireError::kQueueFull));
  EXPECT_TRUE(net::IsRetryable(WireError::kDraining));
  EXPECT_FALSE(net::IsRetryable(WireError::kMalformedFrame));
}

TEST(WireCodec, InsertPayloadRoundTripAndStrictDecode) {
  std::vector<std::vector<Value>> rows = {
      {1, -2, 300000}, {4, 5, 6}, {-7, 8, 9}};
  const std::string payload = net::EncodeInsertPayload(rows);
  std::vector<std::vector<Value>> out;
  ASSERT_TRUE(net::DecodeInsertPayload(payload, &out));
  EXPECT_EQ(out, rows);

  // Empty batch is legal; every truncation and trailing byte is rejected.
  ASSERT_TRUE(net::DecodeInsertPayload(net::EncodeInsertPayload({}), &out));
  EXPECT_TRUE(out.empty());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(net::DecodeInsertPayload(
        std::string_view(payload).substr(0, cut), &out))
        << "cut at " << cut;
  }
  EXPECT_FALSE(net::DecodeInsertPayload(payload + "x", &out));

  // Hostile counts are capped before any allocation happens.
  {
    std::string huge;
    huge.push_back(static_cast<char>(0xFF));  // varint continuation bytes
    huge.append(8, static_cast<char>(0xFF));
    huge.push_back(1);
    EXPECT_FALSE(net::DecodeInsertPayload(huge, &out));
  }

  const net::InsertAckPayload ack_in{12345, 42};
  net::InsertAckPayload ack_out;
  ASSERT_TRUE(net::DecodeInsertAckPayload(
      net::EncodeInsertAckPayload(ack_in), &ack_out));
  EXPECT_EQ(ack_out.accepted, 12345);
  EXPECT_EQ(ack_out.store_version, 42u);
  EXPECT_STREQ(net::ToString(WireError::kReadOnly), "read-only");
  EXPECT_FALSE(net::IsRetryable(WireError::kReadOnly));
}

TEST(TimerWheelTest, FiresAtDueTickAcrossLaps) {
  TimerWheel wheel(8);  // Tiny wheel: laps exercised immediately.
  std::vector<uint64_t> fired;
  wheel.Schedule(1, 3);
  wheel.Schedule(2, 11);  // Same slot as tick 3, one lap later.
  wheel.Schedule(3, 5);
  wheel.Advance(4, [&](uint64_t id) { fired.push_back(id); });
  ASSERT_EQ(fired, (std::vector<uint64_t>{1}));
  wheel.Advance(10, [&](uint64_t id) { fired.push_back(id); });
  ASSERT_EQ(fired, (std::vector<uint64_t>{1, 3}));
  wheel.Advance(12, [&](uint64_t id) { fired.push_back(id); });
  ASSERT_EQ(fired, (std::vector<uint64_t>{1, 3, 2}));
}

// ---- Live loopback servers ------------------------------------------------

/// Builds the shared synthetic table once per fixture.
class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(91);
    const int64_t n = 24000;
    data_ = Dataset(3, {});
    data_.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      Value x = rng.UniformValue(0, 40000);
      data_.AppendRow(
          {x, x + rng.UniformValue(-300, 300), rng.UniformValue(0, 1000)});
    }
    index_ = std::make_unique<FullScanIndex>(data_);
  }

  Query Needle(Rng& rng) const {
    Query q;
    Value lo = rng.UniformValue(0, 38000);
    q.filters.push_back(Predicate{0, lo, lo + 1500});
    q.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
    return q;
  }

  Query Region() const {
    Query q;
    q.filters.push_back(Predicate{0, 0, 40000});
    q.SetAggregates({{AggKind::kSum, 1}, {AggKind::kSum, 2},
                     {AggKind::kCount, 0}});
    return q;
  }

  Dataset data_;
  std::unique_ptr<FullScanIndex> index_;
};

/// Starts a server on an ephemeral loopback port and runs its event loop
/// on a background thread; stops and joins on destruction.
class ServerHarness {
 public:
  ServerHarness(QueryService* service, ServerOptions options = {}) {
    options.port = 0;
    options.tick_seconds = 0.002;  // Snappy polling for tests.
    server_ = std::make_unique<TsunamiServer>(service, options);
    std::string error;
    started_ = server_->Start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) {
      thread_ = std::thread([this] { server_->Run(); });
    }
  }

  ~ServerHarness() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_->RequestStop();
      thread_.join();
    }
  }

  /// Requests drain and joins Run() (asserting it actually exits).
  void Drain() {
    ASSERT_TRUE(thread_.joinable());
    server_->RequestDrain();
    thread_.join();
  }

  TsunamiServer& server() { return *server_; }
  int port() const { return server_->port(); }

  ClientOptions ClientFor() const {
    ClientOptions c;
    c.port = port();
    c.io_timeout_seconds = 20.0;
    return c;
  }

 private:
  std::unique_ptr<TsunamiServer> server_;
  std::thread thread_;
  bool started_ = false;
};

TEST_F(NetTest, LoopbackSmokeMatchesExecute) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  TsunamiClient client(harness.ClientFor());
  ASSERT_TRUE(client.Ping());

  Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    const Query q = i % 8 == 0 ? Region() : Needle(rng);
    const ClientResult got = client.Run(q);
    ASSERT_TRUE(got.ok()) << "query " << i << ": error="
                          << net::ToString(got.error) << " outcome="
                          << ToString(got.outcome) << " msg="
                          << got.error_message;
    const QueryResult want = index_->Execute(q);
    EXPECT_EQ(got.result.agg, want.agg) << "query " << i;
    EXPECT_EQ(got.result.scanned, want.scanned) << "query " << i;
    EXPECT_EQ(got.result.matched, want.matched) << "query " << i;
    ASSERT_EQ(got.result.extra.size(), want.extra.size());
    for (size_t e = 0; e < want.extra.size(); ++e) {
      EXPECT_EQ(got.result.extra[e], want.extra[e]);
    }
    EXPECT_GE(got.server_latency_seconds, 0.0);
  }
  harness.Stop();
  const net::ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.queries_admitted, 32);
  EXPECT_EQ(stats.results_sent, 32);
  EXPECT_EQ(stats.orphaned_awaited, 0);
  EXPECT_EQ(stats.malformed_frames, 0);
}

TEST_F(NetTest, ReadOnlyServerRejectsInsertsWithTypedError) {
  QueryService service(index_.get());
  ServerHarness harness(&service);  // No insert_sink configured.
  TsunamiClient client(harness.ClientFor());
  const ClientResult r = client.Insert({{1, 2, 3}});
  ASSERT_TRUE(r.transport_ok);
  EXPECT_EQ(r.error, WireError::kReadOnly);
  EXPECT_EQ(r.inserted, 0);
  // The connection survives the typed error: queries still work.
  Rng rng(3);
  EXPECT_TRUE(client.Run(Needle(rng)).ok());
  harness.Stop();
  EXPECT_EQ(harness.server().stats().inserts_rejected, 1);
}

TEST_F(NetTest, InsertsOverTheWireBecomeQueryableRows) {
  ingest::IngestOptions ingest_options;
  ingest_options.index.sample_rows = 20000;
  ingest_options.index.agd.max_sample_points = 512;
  ingest_options.index.agd.max_sample_queries = 32;
  ingest_options.index.agd.max_iters = 2;
  ingest_options.background_compaction = false;
  ingest_options.chunk_capacity = 256;
  ingest::IngestStore store(data_, Workload{}, ingest_options);
  QueryService service(&store);

  ServerOptions server_options;
  server_options.insert_sink =
      [&store](const std::vector<std::vector<Value>>& rows,
               uint64_t* version) -> int64_t {
    for (const auto& row : rows) {
      if (row.size() != 3u) return -1;
    }
    const int64_t accepted = store.InsertBatch(rows);
    *version = store.version();
    return accepted;
  };
  ServerHarness harness(&service, server_options);
  TsunamiClient client(harness.ClientFor());

  // Rows far outside the synthetic table's dim-0 range: countable exactly.
  std::vector<std::vector<Value>> batch;
  for (Value i = 0; i < 600; ++i) batch.push_back({900000 + i, i, i % 7});
  const ClientResult ack = client.Insert(batch);
  ASSERT_TRUE(ack.transport_ok);
  ASSERT_EQ(ack.error, WireError::kNone);
  EXPECT_EQ(ack.inserted, 600);
  // 600 rows through 256-row chunks rolled at least twice: the acked store
  // version must have advanced past the initial publish.
  EXPECT_GT(ack.store_version, 1u);

  // A mismatched-arity batch is rejected without killing the connection.
  const ClientResult bad = client.Insert({{1, 2}});
  ASSERT_TRUE(bad.transport_ok);
  EXPECT_EQ(bad.error, WireError::kMalformedFrame);

  Query over_new;
  over_new.filters.push_back(Predicate{0, 900000, 901000});
  over_new.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
  const ClientResult got = client.Run(over_new);
  ASSERT_TRUE(got.ok()) << net::ToString(got.error) << " "
                        << got.error_message;
  EXPECT_EQ(got.result.matched, 600);
  EXPECT_EQ(got.result.agg, 600);  // COUNT.
  EXPECT_EQ(got.result.extra[0], 600 * 599 / 2);  // SUM of 0..599.

  harness.Stop();
  const net::ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.inserts_accepted, 1);
  EXPECT_EQ(stats.rows_inserted, 600);
  EXPECT_EQ(stats.inserts_rejected, 1);
}

TEST_F(NetTest, PipelinedRequestsAwaitedOutOfOrder) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  TsunamiClient client(harness.ClientFor());

  Rng rng(13);
  std::vector<Query> queries;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(i == 0 ? Region() : Needle(rng));
    const uint64_t id = client.Submit(queries.back());
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  // Await in reverse submission order: the stash must hold whatever
  // completed first while we wait for the last.
  for (int i = 11; i >= 0; --i) {
    ClientResult got;
    ASSERT_TRUE(client.Await(ids[i], &got)) << "request " << i;
    ASSERT_TRUE(got.ok()) << net::ToString(got.error);
    const QueryResult want = index_->Execute(queries[i]);
    EXPECT_EQ(got.result.agg, want.agg) << "request " << i;
    EXPECT_EQ(got.result.matched, want.matched) << "request " << i;
  }
}

TEST_F(NetTest, MalformedPayloadGetsTypedErrorAndConnectionSurvives) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  TsunamiClient client(harness.ClientFor());
  ASSERT_TRUE(client.Ping());

  // Hand-roll a kQuery frame whose payload is garbage: the server must
  // answer with a typed error on the same request id and keep serving the
  // connection (the frame boundary itself was sound).
  FrameHeader h;
  h.type = FrameType::kQuery;
  h.request_id = 77;
  std::string frame;
  net::AppendFrame(h, "\xff\xff\xff\xff garbage", &frame);
  ASSERT_TRUE(client.SendRaw(frame));
  ClientResult err;
  ASSERT_TRUE(client.Await(77, &err));
  EXPECT_TRUE(err.transport_ok);
  EXPECT_EQ(err.error, WireError::kMalformedFrame)
      << net::ToString(err.error);
  // Same connection, next query still works: frame sync held.
  Rng rng(5);
  const ClientResult ok = client.Run(Needle(rng));
  EXPECT_TRUE(ok.ok()) << net::ToString(ok.error);
}

TEST_F(NetTest, OversizedFrameRejectedAndConnectionCloses) {
  QueryService service(index_.get());
  ServerOptions so;
  so.max_frame_payload = 1024;
  ServerHarness harness(&service, so);
  TsunamiClient client(harness.ClientFor());
  ASSERT_TRUE(client.Ping());

  FrameHeader h;
  h.type = FrameType::kQuery;
  h.request_id = 5;
  h.payload_len = 0;  // AppendFrame overwrites from the payload size.
  std::string frame;
  net::AppendFrame(h, std::string(4096, 'x'), &frame);
  ASSERT_TRUE(client.SendRaw(frame));
  ClientResult err;
  ASSERT_TRUE(client.Await(5, &err));
  EXPECT_EQ(err.error, WireError::kOversizedFrame);
  // The server closed the connection after the error: the next read hits
  // EOF (Ping fails over this connection).
  EXPECT_FALSE(client.Ping() && client.connected());
}

TEST_F(NetTest, BadVersionAndBadTypeAndBadMagic) {
  QueryService service(index_.get());
  ServerHarness harness(&service);

  {  // Bad version: typed error (request id 0), then close.
    TsunamiClient client(harness.ClientFor());
    ASSERT_TRUE(client.Ping());
    std::string frame;
    net::AppendFrame(FrameHeader{}, "", &frame);
    frame[4] = 42;  // Corrupt the version field.
    frame[5] = 0;
    ASSERT_TRUE(client.SendRaw(frame));
    ClientResult err;
    ASSERT_TRUE(client.Await(0, &err));
    EXPECT_EQ(err.error, WireError::kBadVersion);
  }
  {  // Bad type: typed error, connection survives.
    TsunamiClient client(harness.ClientFor());
    ASSERT_TRUE(client.Ping());
    FrameHeader h;
    h.type = static_cast<FrameType>(200);
    h.request_id = 9;
    std::string frame;
    net::AppendFrame(h, "", &frame);
    ASSERT_TRUE(client.SendRaw(frame));
    ClientResult err;
    ASSERT_TRUE(client.Await(9, &err));
    EXPECT_EQ(err.error, WireError::kBadType);
    EXPECT_TRUE(client.Ping());  // Still serving.
  }
  {  // Bad magic: silent close (stream sync is unrecoverable).
    TsunamiClient client(harness.ClientFor());
    ASSERT_TRUE(client.Ping());
    ASSERT_TRUE(client.SendRaw("this is not a tsunami frame........."));
    EXPECT_FALSE(client.Ping());
  }
  harness.Stop();
  const net::ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.bad_version_frames, 1);
  EXPECT_EQ(stats.bad_type_frames, 1);
  EXPECT_EQ(stats.bad_magic_closes, 1);
}

TEST_F(NetTest, PerConnectionInflightCapReturnsClientBusy) {
  QueryService service(index_.get());  // Unbounded service: isolate the cap.
  ServerOptions so;
  so.max_inflight_per_conn = 2;
  ServerHarness harness(&service, so);
  TsunamiClient client(harness.ClientFor());

  // Pipeline many expensive queries at once: the server reads the burst in
  // one pass, so admissions 3.. find the connection at its cap while the
  // single worker is still scanning query 1.
  const int kBurst = 16;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    const uint64_t id = client.Submit(Region());
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  int completed = 0, busy = 0;
  for (uint64_t id : ids) {
    ClientResult r;
    ASSERT_TRUE(client.Await(id, &r));
    if (r.ok()) {
      ++completed;
    } else {
      ASSERT_EQ(r.error, WireError::kClientBusy) << net::ToString(r.error);
      ++busy;
    }
  }
  EXPECT_EQ(completed + busy, kBurst);
  EXPECT_GE(completed, 1);
  EXPECT_GE(busy, 1) << "burst never hit the per-connection cap";
  // A retrying client eventually lands every query.
  const ClientResult retried = client.Run(Region());
  EXPECT_TRUE(retried.ok());
}

TEST_F(NetTest, QueueFullIsTypedAndRetryable) {
  ServiceOptions service_options;
  service_options.max_queued_queries = 1;
  service_options.low_priority_watermark = 1.0;
  QueryService service(index_.get(), service_options);
  ServerHarness harness(&service);
  TsunamiClient client(harness.ClientFor());

  const int kBurst = 16;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    const uint64_t id = client.Submit(Region());
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  int completed = 0, rejected = 0;
  for (uint64_t id : ids) {
    ClientResult r;
    ASSERT_TRUE(client.Await(id, &r));
    if (r.ok()) {
      ++completed;
    } else {
      ASSERT_EQ(r.error, WireError::kQueueFull) << net::ToString(r.error);
      EXPECT_TRUE(net::IsRetryable(r.error));
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, kBurst);
  EXPECT_GE(rejected, 1) << "burst never overflowed the admission queue";
  // Run()'s bounded backoff retries recover once the queue clears.
  const ClientResult retried = client.Run(Region());
  EXPECT_TRUE(retried.ok()) << net::ToString(retried.error);
  EXPECT_GE(retried.attempts, 1);
}

TEST_F(NetTest, DeadlinePropagatesToServerSideTimeout) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  ClientOptions copts = harness.ClientFor();
  copts.max_retries = 0;  // A timed-out query must not be retried.
  TsunamiClient client(copts);

  const ClientResult r = client.Run(Region(), /*priority=*/0,
                                    /*deadline_seconds=*/1e-6);
  ASSERT_TRUE(r.transport_ok);
  ASSERT_EQ(r.error, WireError::kNone) << net::ToString(r.error);
  EXPECT_EQ(r.outcome, QueryOutcome::kTimedOut) << ToString(r.outcome);
  // Fail-closed: the identity result, never partial aggregates.
  EXPECT_EQ(r.result.agg, 0);
  EXPECT_EQ(r.result.matched, 0);
}

TEST_F(NetTest, IdleConnectionsAreEvicted) {
  QueryService service(index_.get());
  ServerOptions so;
  so.idle_timeout_seconds = 0.05;
  ServerHarness harness(&service, so);
  TsunamiClient client(harness.ClientFor());
  ASSERT_TRUE(client.Ping());

  // Go quiet past the idle timeout; the timer wheel evicts us.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(client.Ping());
  harness.Stop();
  EXPECT_GE(harness.server().stats().evicted_idle, 1);
}

TEST_F(NetTest, StalledReaderIsEvicted) {
  QueryService service(index_.get());
  ServerOptions so;
  so.sndbuf_bytes = 4096;  // Tiny socket buffer: responses back up fast.
  so.pause_read_watermark = 16 << 10;
  so.resume_read_watermark = 4 << 10;
  so.write_stall_timeout_seconds = 0.1;
  so.idle_timeout_seconds = 30.0;  // Isolate: only the stall can evict.
  so.max_inflight_per_conn = 64;
  ServerHarness harness(&service, so);
  ClientOptions copts = harness.ClientFor();
  copts.rcvbuf_bytes = 4096;  // Shrink the reader side too.
  TsunamiClient client(copts);

  // Many multi-aggregate responses (~KBs each) against 4KB socket buffers
  // and a reader that never reads: the server's write buffer stalls, and
  // the stall timer evicts the connection instead of buffering forever.
  // The empty-range filter keeps execution cheap (no rows match); the
  // response still carries all 3000 accumulators.
  Query wide;
  wide.filters.push_back(Predicate{0, 1, 0});
  std::vector<AggregateSpec> specs;
  for (int i = 0; i < 3000; ++i) {
    specs.push_back(AggregateSpec{AggKind::kCount, 0});
  }
  wide.SetAggregates(std::move(specs));
  for (int i = 0; i < 24; ++i) {
    ASSERT_NE(client.Submit(wide), 0u);
  }
  // Never Await: just wait for the eviction.
  Timer timer;
  bool evicted = false;
  while (timer.ElapsedSeconds() < 20.0) {
    if (harness.server().stats().evicted_stalled >= 1) {
      evicted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(evicted) << "stalled reader was never evicted";
  harness.Stop();
  // No ticket leaked: whatever was in flight when the connection died was
  // still awaited and discarded.
  EXPECT_EQ(harness.server().stats().inflight, 0);
}

TEST_F(NetTest, GracefulDrainFinishesInflightAndRejectsNew) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  TsunamiClient client(harness.ClientFor());

  // Park a burst of work in flight, then drain.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const uint64_t id = client.Submit(Region());
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  harness.server().RequestDrain();
  // Wait until the drain reached the service (new submissions reject).
  Timer timer;
  while (!service.draining() && timer.ElapsedSeconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(service.draining());

  // A query submitted mid-drain gets a typed kDraining error (if the
  // connection is still up; the drain may close it once idle — transport
  // loss is the other legal answer, never a wrong result).
  const uint64_t late = client.Submit(Region());
  // Every in-flight query still gets its full answer.
  const QueryResult want = index_->Execute(Region());
  for (uint64_t id : ids) {
    ClientResult r;
    const net::ServerStats dbg = harness.server().stats();
    ASSERT_TRUE(client.Await(id, &r))
        << "in-flight answer lost in drain: admitted=" << dbg.queries_admitted
        << " results=" << dbg.results_sent << " errors=" << dbg.errors_sent;
    ASSERT_TRUE(r.ok()) << net::ToString(r.error) << " " << ToString(r.outcome);
    EXPECT_EQ(r.result.agg, want.agg);
    EXPECT_EQ(r.result.matched, want.matched);
  }
  if (late != 0) {
    ClientResult r;
    if (client.Await(late, &r)) {
      EXPECT_EQ(r.error, WireError::kDraining) << net::ToString(r.error);
    }
  }
  // Hang up. The server half-closed this connection (FIN after the last
  // result) and is now waiting on our EOF; without it the drain can only
  // finish via its 30s timeout.
  client.Close();
  // Run() returns on its own — the drain completes without RequestStop.
  harness.Drain();
  const net::ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.active_connections, 0);
  // And the drained service rejects fresh work at the admission layer.
  const QueryService::Admission post = service.Submit(Region());
  EXPECT_EQ(post.outcome, AdmissionOutcome::kDraining)
      << ToString(post.outcome);
}

#if defined(TSUNAMI_FAULT_INJECTION)

class NetFaultTest : public NetTest {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(NetFaultTest, AcceptFailureIsSurvivedByRetry) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 1;
  fault::Arm("net.accept_fail", spec);

  TsunamiClient client(harness.ClientFor());
  Rng rng(3);
  const Query q = Needle(rng);
  const ClientResult r = client.Run(q);
  ASSERT_TRUE(r.ok()) << net::ToString(r.error) << " " << r.error_message;
  EXPECT_GE(r.attempts, 2) << "first accept should have been injected away";
  EXPECT_EQ(r.result.agg, index_->Execute(q).agg);
  EXPECT_EQ(fault::FireCount("net.accept_fail"), 1);
}

TEST_F(NetFaultTest, PartialFrameIsDiscardedAndRetried) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 1;
  fault::Arm("net.partial_frame", spec);

  TsunamiClient client(harness.ClientFor());
  Rng rng(4);
  const Query q = Needle(rng);
  const ClientResult r = client.Run(q);
  ASSERT_TRUE(r.ok()) << net::ToString(r.error) << " " << r.error_message;
  EXPECT_GE(r.attempts, 2);
  EXPECT_EQ(r.result.agg, index_->Execute(q).agg);
  harness.Stop();
  const net::ServerStats stats = harness.server().stats();
  // The torn frame was discarded on EOF — never parsed as a query, never
  // "malformed" (the frame boundary itself was simply incomplete).
  EXPECT_EQ(stats.malformed_frames, 0);
  EXPECT_EQ(stats.queries_admitted, 1);
}

TEST_F(NetFaultTest, InjectedResetIsSurvivedByRetry) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 1;
  fault::Arm("net.reset", spec);

  TsunamiClient client(harness.ClientFor());
  Rng rng(6);
  const Query q = Needle(rng);
  const ClientResult r = client.Run(q);
  ASSERT_TRUE(r.ok()) << net::ToString(r.error) << " " << r.error_message;
  EXPECT_GE(r.attempts, 2);
  EXPECT_EQ(r.result.agg, index_->Execute(q).agg);
  harness.Stop();
  EXPECT_EQ(harness.server().stats().resets_injected, 1);
}

TEST_F(NetFaultTest, ShortWritesStillDeliverBitIdenticalResults) {
  QueryService service(index_.get());
  ServerHarness harness(&service);
  fault::FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 99;
  fault::Arm("net.short_write", spec);

  TsunamiClient client(harness.ClientFor());
  Rng rng(8);
  for (int i = 0; i < 16; ++i) {
    const Query q = i % 4 == 0 ? Region() : Needle(rng);
    const ClientResult r = client.Run(q);
    ASSERT_TRUE(r.ok()) << "query " << i << ": " << net::ToString(r.error);
    const QueryResult want = index_->Execute(q);
    EXPECT_EQ(r.result.agg, want.agg) << "query " << i;
    EXPECT_EQ(r.result.matched, want.matched) << "query " << i;
  }
  EXPECT_GT(fault::FireCount("net.short_write"), 0);
}

#endif  // TSUNAMI_FAULT_INJECTION

}  // namespace
}  // namespace tsunami
