// Tests for the cost model evaluator and the AGD/GD/BlackBox optimizers
// (§5.3, §6.6).
#include <numeric>

#include <gtest/gtest.h>

#include "src/core/augmented_grid.h"
#include "src/core/cost_model.h"
#include "src/core/optimizer.h"
#include "src/datasets/synthetic.h"
#include "src/datasets/tpch.h"

namespace tsunami {
namespace {

std::vector<uint32_t> AllRows(const Dataset& data) {
  std::vector<uint32_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  return rows;
}

AgdOptions FastOptions() {
  AgdOptions options;
  options.max_sample_points = 1024;
  options.max_sample_queries = 48;
  options.max_iters = 3;
  options.max_cells = 1 << 14;
  return options;
}

TEST(CostModelTest, MorePartitionsReduceScanCost) {
  Benchmark bench = MakeUniformBenchmark(3, 30000, 121, 30);
  std::vector<uint32_t> rows = AllRows(bench.data);
  GridCostEvaluator eval(bench.data, rows, bench.workload, 2048, 48, 7);
  Skeleton s = Skeleton::AllIndependent(3);
  CostWeights w;
  double coarse = eval.Cost(s, {1, 1, 1}, w);
  double fine = eval.Cost(s, {8, 8, 8}, w);
  EXPECT_LT(fine, coarse);
}

TEST(CostModelTest, TooManyPartitionsRaiseLookupCost) {
  Benchmark bench = MakeUniformBenchmark(3, 20000, 122, 30);
  std::vector<uint32_t> rows = AllRows(bench.data);
  GridCostEvaluator eval(bench.data, rows, bench.workload, 2048, 48, 7);
  Skeleton s = Skeleton::AllIndependent(3);
  CostWeights w;
  w.w0 = 100000.0;  // Make lookups dominate.
  double few = eval.Cost(s, {2, 2, 2}, w);
  double many = eval.Cost(s, {64, 64, 64}, w);
  EXPECT_LT(few, many);
}

TEST(CostModelTest, DetectsTightCorrelationForFm) {
  Benchmark bench = MakeScalingBenchmark(4, 20000, true, 123, 20);
  std::vector<uint32_t> rows = AllRows(bench.data);
  GridCostEvaluator eval(bench.data, rows, bench.workload, 2048, 48, 7);
  // dim2 = dim0 ± 1%: tight; dim3 = dim1 ± 10%: loose.
  EXPECT_LT(eval.FmErrorBandRatio(2, 0), 0.05);
  EXPECT_GT(eval.FmErrorBandRatio(3, 1), 0.15);
  EXPECT_GT(eval.FmErrorBandRatio(1, 0), 0.5);  // Uncorrelated.
  EXPECT_GT(eval.correlation(2, 0), 0.99);
}

TEST(CostModelTest, EmptyCellFractionSeesCorrelation) {
  Benchmark bench = MakeScalingBenchmark(4, 20000, true, 124, 20);
  std::vector<uint32_t> rows = AllRows(bench.data);
  GridCostEvaluator eval(bench.data, rows, bench.workload, 4096, 48, 7);
  // Correlated pair concentrates mass near the diagonal of the hyperplane.
  EXPECT_GT(eval.EmptyCellFraction(3, 1), 0.25);
  EXPECT_LT(eval.EmptyCellFraction(1, 0), 0.25);  // Independent pair.
}

TEST(CostModelTest, PredictionTracksActualCounters) {
  // The model's feature estimates (ranges, scanned) should land within a
  // small factor of the real execution counters on a built grid.
  Benchmark bench = MakeUniformBenchmark(3, 40000, 125, 40);
  std::vector<uint32_t> rows = AllRows(bench.data);
  GridCostEvaluator eval(bench.data, rows, bench.workload, 4096, 64, 7);
  Skeleton s = Skeleton::AllIndependent(3);
  std::vector<int> partitions = {8, 8, 4};
  CostWeights w;
  w.w0 = 0.0;
  w.w1 = 1.0;  // Cost == scanned * filtered_dims.

  AugmentedGrid grid;
  grid.Build(bench.data, &rows, s, partitions, {});
  ColumnStore store(bench.data, rows);
  grid.Attach(&store, 0);
  double predicted = 0.0, actual = 0.0;
  for (const Query& q : bench.workload) {
    predicted += eval.PredictQueryNanos(s, partitions, w, q);
    QueryResult result;
    grid.Execute(q, &result);
    actual += static_cast<double>(result.scanned) * q.filters.size();
  }
  ASSERT_GT(actual, 0.0);
  EXPECT_GT(predicted / actual, 0.5);
  EXPECT_LT(predicted / actual, 2.0);
}

TEST(OptimizerTest, ImprovesOverInitialCost) {
  Benchmark bench = MakeTpchBenchmark(30000, 126, 20);
  std::vector<uint32_t> rows = AllRows(bench.data);
  AgdOptions options = FastOptions();
  GridCostEvaluator eval(bench.data, rows, bench.workload,
                         options.max_sample_points,
                         options.max_sample_queries, options.seed);
  GridPlan agd = OptimizeGridWithEvaluator(eval, OptimizeMethod::kAgd, options);
  // Compare against the naive one-cell grid.
  double naive = eval.Cost(Skeleton::AllIndependent(8),
                           std::vector<int>(8, 1), options.weights);
  EXPECT_LT(agd.predicted_cost, naive);
  EXPECT_TRUE(agd.skeleton.Validate());
}

TEST(OptimizerTest, AgdFindsAugmentationOnCorrelatedData) {
  Benchmark bench = MakeScalingBenchmark(8, 30000, true, 127, 30);
  std::vector<uint32_t> rows = AllRows(bench.data);
  GridPlan plan = OptimizeGrid(bench.data, rows, bench.workload,
                               OptimizeMethod::kAgd, FastOptions());
  // Half the dimensions are (anti-)correlated copies: AGD should map or
  // condition at least one of them.
  EXPECT_GE(plan.skeleton.NumMapped() + plan.skeleton.NumConditional(), 1);
}

TEST(OptimizerTest, IndependentOnlyNeverAugments) {
  Benchmark bench = MakeScalingBenchmark(6, 20000, true, 128, 20);
  std::vector<uint32_t> rows = AllRows(bench.data);
  AgdOptions options = FastOptions();
  options.independent_only = true;
  GridPlan plan = OptimizeGrid(bench.data, rows, bench.workload,
                               OptimizeMethod::kAgd, options);
  EXPECT_EQ(plan.skeleton.NumMapped(), 0);
  EXPECT_EQ(plan.skeleton.NumConditional(), 0);
}

TEST(OptimizerTest, MethodOrderingOnCorrelatedData) {
  // §6.6 expectation: AGD <= GD (same init, strictly more moves) and AGD
  // generally beats black-box basin hopping.
  Benchmark bench = MakeScalingBenchmark(6, 30000, true, 129, 30);
  std::vector<uint32_t> rows = AllRows(bench.data);
  AgdOptions options = FastOptions();
  GridCostEvaluator eval(bench.data, rows, bench.workload,
                         options.max_sample_points,
                         options.max_sample_queries, options.seed);
  GridPlan agd = OptimizeGridWithEvaluator(eval, OptimizeMethod::kAgd, options);
  GridPlan gd = OptimizeGridWithEvaluator(eval, OptimizeMethod::kGd, options);
  GridPlan ni =
      OptimizeGridWithEvaluator(eval, OptimizeMethod::kAgdNaiveInit, options);
  EXPECT_LE(agd.predicted_cost, gd.predicted_cost + 1e-9);
  // AGD-NI must be able to escape the naive skeleton into something valid.
  EXPECT_TRUE(ni.skeleton.Validate());
}

TEST(OptimizerTest, EmptyWorkloadYieldsTrivialPlan) {
  Benchmark bench = MakeUniformBenchmark(3, 1000, 130, 5);
  std::vector<uint32_t> rows = AllRows(bench.data);
  GridPlan plan = OptimizeGrid(bench.data, rows, Workload{},
                               OptimizeMethod::kAgd, FastOptions());
  EXPECT_EQ(plan.partitions, std::vector<int>(3, 1));
}

TEST(OptimizerTest, PartitionsRespectCellCap) {
  Benchmark bench = MakeTpchBenchmark(20000, 131, 20);
  std::vector<uint32_t> rows = AllRows(bench.data);
  AgdOptions options = FastOptions();
  options.max_cells = 256;
  GridPlan plan = OptimizeGrid(bench.data, rows, bench.workload,
                               OptimizeMethod::kAgd, options);
  int64_t cells = 1;
  for (int d : plan.skeleton.GridDims()) cells *= plan.partitions[d];
  EXPECT_LE(cells, 256);
}

TEST(CalibrationTest, WeightsArePlausible) {
  CostWeights w = CalibrateCostWeights();
  EXPECT_GT(w.w0, 10.0);
  EXPECT_LT(w.w0, 100000.0);
  EXPECT_GT(w.w1, 0.1);
  EXPECT_LT(w.w1, 1000.0);
  // Per-code-width scan terms are calibrated (non-zero) when narrowing is
  // on, and stay 0 — falling back to w1 — when it is disabled, so the
  // model always prices the kernel execution actually runs.
  if (EncodingEnabledByDefault()) {
    for (double term : {w.w1_u8, w.w1_u16, w.w1_u32}) {
      EXPECT_GT(term, 0.05);
      EXPECT_LT(term, 1000.0);
    }
    EXPECT_EQ(w.ScanCostForSpan(100.0), w.w1_u8);
    EXPECT_EQ(w.ScanCostForSpan(1000.0), w.w1_u16);
    EXPECT_EQ(w.ScanCostForSpan(100000.0), w.w1_u32);
  } else {
    EXPECT_EQ(w.w1_u8, 0.0);
    EXPECT_EQ(w.ScanCostForSpan(100.0), w.w1);
  }
  EXPECT_EQ(w.ScanCostForSpan(-1.0), w.w1);   // Unknown span.
  EXPECT_EQ(w.ScanCostForSpan(1e18), w.w1);   // Raw 64-bit blocks.
  CostWeights defaults;
  EXPECT_EQ(defaults.ScanCostForSpan(100.0), defaults.w1);
}

}  // namespace
}  // namespace tsunami
