// Tests for the functional-mapping outlier buffer (§8 "Complex
// Correlations"): a handful of extreme rows must not blow up the mapping's
// error band, and buffered rows must still be found by every query shape.
#include <numeric>

#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/core/augmented_grid.h"

namespace tsunami {
namespace {

// y ~ 2x with tight noise, except `num_outliers` rows with wild y values.
Dataset MakeOutlierData(int64_t rows, int num_outliers, uint64_t seed) {
  Rng rng(seed);
  Dataset data(2, {});
  for (int64_t i = 0; i < rows; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    Value y = 2 * x + rng.UniformValue(-50, 50);
    if (i < num_outliers) y = rng.UniformValue(500000000, 600000000);
    data.AppendRow({x, y});
  }
  return data;
}

AugmentedGrid BuildMapped(const Dataset& data, std::vector<uint32_t>* rows,
                          double outlier_fraction) {
  Skeleton s = Skeleton::AllIndependent(2);
  s.dims[1] = {PartitionStrategy::kMapped, 0};  // y mapped onto x.
  AugmentedGrid grid;
  AugmentedGrid::BuildOptions options;
  options.fm_outlier_fraction = outlier_fraction;
  rows->resize(data.size());
  std::iota(rows->begin(), rows->end(), 0u);
  grid.Build(data, rows, s, {16, 1}, options);
  return grid;
}

TEST(OutlierBufferTest, BuffersOnlyTheExtremes) {
  Dataset data = MakeOutlierData(10000, 12, 301);
  std::vector<uint32_t> rows;
  AugmentedGrid grid = BuildMapped(data, &rows, 0.001);
  EXPECT_GE(grid.num_outliers(), 12);          // The wild rows...
  EXPECT_LE(grid.num_outliers(), 10000 / 50);  // ...but not much more.
}

TEST(OutlierBufferTest, CleanDataGetsNoBuffer) {
  Dataset data = MakeOutlierData(10000, 0, 302);
  std::vector<uint32_t> rows;
  AugmentedGrid grid = BuildMapped(data, &rows, 0.001);
  EXPECT_EQ(grid.num_outliers(), 0);
}

TEST(OutlierBufferTest, DisabledByZeroFraction) {
  Dataset data = MakeOutlierData(10000, 12, 303);
  std::vector<uint32_t> rows;
  AugmentedGrid grid = BuildMapped(data, &rows, 0.0);
  EXPECT_EQ(grid.num_outliers(), 0);
}

TEST(OutlierBufferTest, QueriesStillExactOnEveryShape) {
  Dataset data = MakeOutlierData(8000, 10, 304);
  std::vector<uint32_t> rows;
  AugmentedGrid grid = BuildMapped(data, &rows, 0.001);
  ColumnStore store(data, rows);
  grid.Attach(&store, 0);
  FullScanIndex reference(data);
  Rng rng(305);
  for (int trial = 0; trial < 200; ++trial) {
    Query q;
    // Mix: filters on the mapped dim (hitting outlier y values too), the
    // target dim, or both.
    if (trial % 3 != 1) {
      Value lo = rng.UniformValue(0, 600000000);
      q.filters.push_back(
          Predicate{1, lo, lo + rng.UniformValue(0, 100000000)});
    }
    if (trial % 3 != 0) {
      Value lo = rng.UniformValue(0, 1000000);
      q.filters.push_back(Predicate{0, lo, lo + rng.UniformValue(0, 300000)});
    }
    QueryResult got;
    grid.Execute(q, &got);
    ASSERT_EQ(got.agg, reference.Execute(q).agg) << "trial " << trial;
  }
}

TEST(OutlierBufferTest, OutlierOnlyQueriesAreFound) {
  // Queries selecting exclusively the outlier band: the mapped effective
  // range over x is empty, so only the buffer can answer.
  Dataset data = MakeOutlierData(8000, 10, 306);
  std::vector<uint32_t> rows;
  AugmentedGrid grid = BuildMapped(data, &rows, 0.001);
  ColumnStore store(data, rows);
  grid.Attach(&store, 0);
  FullScanIndex reference(data);
  Query q;
  q.filters = {Predicate{1, 500000000, 600000000}};
  QueryResult got;
  grid.Execute(q, &got);
  QueryResult expected = reference.Execute(q);
  EXPECT_EQ(got.agg, expected.agg);
  EXPECT_EQ(got.agg, 10);
}

TEST(OutlierBufferTest, BufferShrinksScannedPoints) {
  // With the buffer, a narrow y-filter maps to a narrow x-range; without
  // it the error band spans the outliers and forces huge scans.
  Dataset data = MakeOutlierData(20000, 10, 307);
  std::vector<uint32_t> rows_with, rows_without;
  AugmentedGrid with_buffer = BuildMapped(data, &rows_with, 0.001);
  AugmentedGrid without_buffer = BuildMapped(data, &rows_without, 0.0);
  ColumnStore store_with(data, rows_with);
  ColumnStore store_without(data, rows_without);
  with_buffer.Attach(&store_with, 0);
  without_buffer.Attach(&store_without, 0);
  Query q;
  q.filters = {Predicate{1, 1000000, 1040000}};  // Narrow y band.
  QueryResult scanned_with, scanned_without;
  with_buffer.Execute(q, &scanned_with);
  without_buffer.Execute(q, &scanned_without);
  EXPECT_EQ(scanned_with.agg, scanned_without.agg);
  EXPECT_LT(scanned_with.scanned * 4, scanned_without.scanned);
}

}  // namespace
}  // namespace tsunami
