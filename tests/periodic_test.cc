// Tests for periodic/temporal correlation support (§8 "Complex
// Correlations"): phase arithmetic, the period detector, dataset
// augmentation, phase-filter derivation, and the end-to-end benefit of a
// derived phase column through Tsunami.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/periodic.h"
#include "src/core/tsunami.h"

namespace tsunami {
namespace {

constexpr Value kDay = 1440;  // Minutes per day.

// Timestamps over `days` days; `load` follows a daily sinusoid plus noise.
Dataset MakeDailyLoadData(int days, int64_t rows, double noise,
                          uint64_t seed = 11) {
  Rng rng(seed);
  Dataset data(2, {});
  data.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    Value t = rng.UniformValue(0, static_cast<Value>(days) * kDay - 1);
    double hour_angle =
        2.0 * M_PI * static_cast<double>(PhaseOf(t, kDay)) / kDay;
    Value load = static_cast<Value>(500.0 + 400.0 * std::sin(hour_angle) +
                                    noise * rng.NextGaussian());
    data.AppendRow({t, load});
  }
  return data;
}

TEST(PhaseOfTest, BasicAndNegativeValues) {
  EXPECT_EQ(PhaseOf(0, 24), 0);
  EXPECT_EQ(PhaseOf(25, 24), 1);
  EXPECT_EQ(PhaseOf(48, 24), 0);
  EXPECT_EQ(PhaseOf(-1, 24), 23);
  EXPECT_EQ(PhaseOf(-24, 24), 0);
  EXPECT_EQ(PhaseOf(-25, 24), 23);
}

TEST(DetectPeriodTest, FindsPlantedDailyPeriod) {
  Dataset data = MakeDailyLoadData(30, 40000, 40.0);
  std::vector<Value> candidates = {60, 720, kDay, kDay * 7, 10000};
  PeriodFit fit = DetectPeriod(data, /*driver=*/0, /*dependent=*/1,
                               candidates);
  EXPECT_EQ(fit.period, kDay);
  EXPECT_GT(fit.score, 0.5);
}

TEST(DetectPeriodTest, HarmonicScoresBelowTruePeriod) {
  Dataset data = MakeDailyLoadData(30, 40000, 40.0);
  std::vector<PeriodFit> fits = ScorePeriods(
      data, 0, 1, {kDay, kDay / 2});
  ASSERT_EQ(fits.size(), 2u);
  EXPECT_EQ(fits[0].period, kDay);
  // Half the period folds morning onto evening; the sinusoid means cancel.
  EXPECT_GT(fits[0].score, fits[1].score + 0.2);
}

TEST(DetectPeriodTest, NoPeriodInNoise) {
  Rng rng(13);
  Dataset data(2, {});
  for (int i = 0; i < 20000; ++i) {
    data.AppendRow({rng.UniformValue(0, 100000),
                    rng.UniformValue(0, 1000)});
  }
  PeriodFit fit = DetectPeriod(data, 0, 1, {60, 1440, 10080});
  EXPECT_EQ(fit.period, 0) << "score " << fit.score;
}

TEST(DetectPeriodTest, RejectsNearFullRangeCandidates) {
  // A candidate spanning the whole domain would trivially "explain" any
  // monotone trend; it must be rejected as non-periodic.
  Rng rng(14);
  Dataset data(2, {});
  for (int i = 0; i < 20000; ++i) {
    Value t = rng.UniformValue(0, 9999);
    data.AppendRow({t, t * 3 + rng.UniformValue(-10, 10)});
  }
  PeriodFit fit = DetectPeriod(data, 0, 1, {9000, 20000});
  EXPECT_EQ(fit.period, 0);
}

TEST(SuggestPhaseColumnsTest, FindsDriverAndIgnoresNoise) {
  Dataset data = MakeDailyLoadData(30, 30000, 40.0);
  std::vector<PhaseColumnSpec> specs =
      SuggestPhaseColumns(data, {720, kDay, kDay * 7});
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].source_dim, 0);
  EXPECT_EQ(specs[0].period, kDay);
}

TEST(AugmentWithPhasesTest, AppendsPhaseColumnsAndPreservesRows) {
  Dataset data(2, {10, 100, kDay + 5, 200, 3 * kDay + 17, 300});
  Dataset augmented =
      AugmentWithPhases(data, {PhaseColumnSpec{0, kDay}});
  ASSERT_EQ(augmented.dims(), 3);
  ASSERT_EQ(augmented.size(), 3);
  for (int64_t r = 0; r < data.size(); ++r) {
    EXPECT_EQ(augmented.at(r, 0), data.at(r, 0));
    EXPECT_EQ(augmented.at(r, 1), data.at(r, 1));
    EXPECT_EQ(augmented.at(r, 2), PhaseOf(data.at(r, 0), kDay));
  }
  std::vector<Value> row = AugmentRow({2 * kDay + 9, 55},
                                      {PhaseColumnSpec{0, kDay}});
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2], 9);
}

TEST(PhaseAlignFilterTest, DerivesImpliedPhaseRange) {
  PhaseColumnSpec spec{0, kDay};
  Predicate out;
  // 9:00-10:00 on day 3.
  Predicate f{0, 3 * kDay + 540, 3 * kDay + 600};
  ASSERT_TRUE(PhaseAlignFilter(f, spec, /*phase_dim=*/2, &out));
  EXPECT_EQ(out.dim, 2);
  EXPECT_EQ(out.lo, 540);
  EXPECT_EQ(out.hi, 600);

  // Wrapping across midnight is not a single phase range.
  Predicate wrap{0, 3 * kDay + 1400, 4 * kDay + 100};
  EXPECT_FALSE(PhaseAlignFilter(wrap, spec, 2, &out));

  // Spans of a full period or more touch every phase.
  Predicate full{0, 0, kDay};
  EXPECT_FALSE(PhaseAlignFilter(full, spec, 2, &out));

  // Unbounded filters are rejected without overflowing.
  Predicate unbounded{0, kValueMin, 100};
  EXPECT_FALSE(PhaseAlignFilter(unbounded, spec, 2, &out));

  // Wrong dimension.
  Predicate other{1, 10, 20};
  EXPECT_FALSE(PhaseAlignFilter(other, spec, 2, &out));
}

// Every derived predicate must be implied by its source filter.
class PhaseAlignFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PhaseAlignFuzzTest, DerivedPredicateIsImplied) {
  Rng rng(300 + GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Value period = 2 + static_cast<Value>(rng.NextBelow(500));
    PhaseColumnSpec spec{0, period};
    Value lo = rng.UniformValue(-2000, 2000);
    Value hi = lo + static_cast<Value>(rng.NextBelow(700));
    Predicate f{0, lo, hi};
    Predicate derived;
    if (!PhaseAlignFilter(f, spec, 1, &derived)) continue;
    for (Value v = lo; v <= hi; ++v) {
      Value phase = PhaseOf(v, period);
      ASSERT_GE(phase, derived.lo)
          << "period " << period << " range [" << lo << "," << hi << "]";
      ASSERT_LE(phase, derived.hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseAlignFuzzTest, ::testing::Range(0, 4));

// End to end: a phase-augmented Tsunami index answers phase queries
// (e.g. "load during 2am-3am on any day") with far fewer scanned points
// than the raw index, and stays correct.
TEST(PeriodicEndToEndTest, PhaseColumnCutsScannedPoints) {
  Dataset raw = MakeDailyLoadData(60, 60000, 30.0);
  std::vector<PhaseColumnSpec> specs = {PhaseColumnSpec{0, kDay}};
  Dataset augmented = AugmentWithPhases(raw, specs);

  // Phase-expressed workload: minute-of-day band x load band. On the raw
  // schema this is inexpressible as one rectangle, so the raw index gets
  // the load filter only.
  Workload phase_queries, raw_queries;
  Rng rng(77);
  for (int i = 0; i < 60; ++i) {
    Value m = rng.UniformValue(0, kDay - 61);
    Value load_lo = rng.UniformValue(100, 800);
    Query pq;
    pq.filters = {Predicate{2, m, m + 60},
                  Predicate{1, load_lo, load_lo + 99}};
    pq.type = 0;
    phase_queries.push_back(pq);
    Query rq;
    rq.filters = {Predicate{1, load_lo, load_lo + 99}};
    rq.type = 0;
    raw_queries.push_back(rq);
  }

  TsunamiOptions opts;
  opts.sample_rows = 20000;
  TsunamiIndex raw_index(raw, raw_queries, opts);
  TsunamiIndex aug_index(augmented, phase_queries, opts);
  FullScanIndex full(augmented);

  // On the raw schema the phase filter is inexpressible, so an application
  // must fetch the full load band (`matched` rows of the raw query) and
  // post-filter by minute of day. The augmented index answers the combined
  // filter directly, touching only `scanned` rows.
  int64_t raw_fetched = 0, aug_scanned = 0;
  for (size_t i = 0; i < phase_queries.size(); ++i) {
    QueryResult want = full.Execute(phase_queries[i]);
    QueryResult got = aug_index.Execute(phase_queries[i]);
    ASSERT_EQ(got.matched, want.matched) << "query " << i;
    aug_scanned += got.scanned;
    raw_fetched += raw_index.Execute(raw_queries[i]).matched;
  }
  // The phase filter selects ~4% of each load band; require at least 3x.
  EXPECT_LT(aug_scanned * 3, raw_fetched)
      << "augmented " << aug_scanned << " vs raw " << raw_fetched;
}

}  // namespace
}  // namespace tsunami
