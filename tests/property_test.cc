// Cross-cutting property tests: every index type must agree with the
// full-scan reference on randomized box queries over randomized datasets —
// including adversarial shapes (duplicates, constant dimensions, equality
// filters, empty results, unfiltered queries).
#include <memory>

#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/baselines/kdtree.h"
#include "src/baselines/octree.h"
#include "src/baselines/single_dim.h"
#include "src/baselines/zorder.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/flood/flood.h"

namespace tsunami {
namespace {

// Datasets with awkward value distributions.
Dataset MakeAdversarialData(int kind, int dims, int64_t rows, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dims, {});
  data.Reserve(rows);
  std::vector<Value> row(dims);
  for (int64_t i = 0; i < rows; ++i) {
    for (int d = 0; d < dims; ++d) {
      switch (kind) {
        case 0:  // Uniform.
          row[d] = rng.UniformValue(0, 1000000);
          break;
        case 1:  // Heavy duplicates: few distinct values.
          row[d] = static_cast<Value>(rng.NextBelow(8));
          break;
        case 2:  // One constant dimension, others clustered.
          row[d] = d == 0 ? 42
                          : static_cast<Value>(rng.NextGaussian() * 100) +
                                (rng.NextBool(0.5) ? 0 : 100000);
          break;
        case 3:  // Correlated pair + extremes near int64 bounds.
          if (d == 0) {
            row[d] = rng.UniformValue(-1000000, 1000000);
          } else if (d == 1) {
            row[d] = row[0] * 2 + rng.UniformValue(-10, 10);
          } else {
            row[d] = rng.NextBool(0.01) ? kValueMax / 2
                                        : rng.UniformValue(0, 100);
          }
          break;
        default:  // Exponential skew.
          row[d] = static_cast<Value>(rng.NextExponential(1e-4));
          break;
      }
    }
    data.AppendRow(row);
  }
  return data;
}

Workload MakeRandomQueries(const Dataset& data, int count, uint64_t seed) {
  Rng rng(seed);
  DimBounds bounds = ComputeBounds(data);
  Workload w;
  for (int i = 0; i < count; ++i) {
    Query q;
    int nfilters = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < nfilters; ++f) {
      int dim = static_cast<int>(rng.NextBelow(data.dims()));
      Value lo = rng.UniformValue(bounds.lo[dim], bounds.hi[dim]);
      Value hi;
      switch (rng.NextBelow(4)) {
        case 0:  // Equality.
          hi = lo;
          break;
        case 1:  // Empty-ish range below lo (tests empty results).
          hi = lo;
          lo = hi - rng.UniformValue(0, 10);
          break;
        default:
          hi = rng.UniformValue(lo, bounds.hi[dim]);
          break;
      }
      q.filters.push_back(Predicate{dim, lo, hi});
    }
    if (rng.NextBool(0.2)) q.filters.clear();  // Unfiltered COUNT(*).
    if (rng.NextBool(0.3)) {
      q.agg = AggKind::kSum;
      q.agg_dim = static_cast<int>(rng.NextBelow(data.dims()));
    }
    w.push_back(q);
  }
  return w;
}

std::unique_ptr<MultiDimIndex> MakeIndex(int kind, const Dataset& data,
                                         const Workload& workload) {
  switch (kind) {
    case 0:
      return std::make_unique<SingleDimIndex>(data, workload);
    case 1: {
      ZOrderIndex::Options options;
      options.page_size = 256;
      return std::make_unique<ZOrderIndex>(data, options);
    }
    case 2: {
      HyperOctree::Options options;
      options.page_size = 256;
      return std::make_unique<HyperOctree>(data, options);
    }
    case 3: {
      KdTree::Options options;
      options.page_size = 256;
      return std::make_unique<KdTree>(data, workload, options);
    }
    case 4: {
      FloodOptions options;
      options.agd.max_sample_points = 512;
      options.agd.max_sample_queries = 16;
      options.agd.max_iters = 2;
      return std::make_unique<FloodIndex>(data, workload, options);
    }
    default: {
      TsunamiOptions options;
      options.sample_rows = 5000;
      options.agd.max_sample_points = 512;
      options.agd.max_sample_queries = 16;
      options.agd.max_iters = 2;
      options.agd.max_cells = 1 << 10;
      return std::make_unique<TsunamiIndex>(data, workload, options);
    }
  }
}

constexpr const char* kIndexNames[] = {"SingleDim", "ZOrder", "Octree",
                                       "KdTree",    "Flood",  "Tsunami"};
constexpr const char* kDataNames[] = {"Uniform", "Duplicates", "ConstDim",
                                      "CorrExtreme", "ExpSkew"};

class IndexDataSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IndexDataSweep, AgreesWithFullScanOnRandomQueries) {
  auto [index_kind, data_kind] = GetParam();
  int dims = 3 + data_kind % 3;
  Dataset data = MakeAdversarialData(data_kind, dims, 4000,
                                     1000 + data_kind);
  Workload build_workload = MakeRandomQueries(data, 30, 2000 + data_kind);
  Workload probe_workload =
      MakeRandomQueries(data, 60, 3000 + data_kind * 7 + index_kind);
  FullScanIndex reference(data);
  std::unique_ptr<MultiDimIndex> index =
      MakeIndex(index_kind, data, build_workload);
  // Both the build workload and unseen queries must be answered exactly.
  for (const Workload* w : {&build_workload, &probe_workload}) {
    for (const Query& q : *w) {
      QueryResult expected = reference.Execute(q);
      QueryResult got = index->Execute(q);
      ASSERT_EQ(got.agg, expected.agg)
          << kIndexNames[index_kind] << " on " << kDataNames[data_kind];
    }
  }
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  return std::string(kIndexNames[std::get<0>(info.param)]) + "_" +
         kDataNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(AllIndexesAllData, IndexDataSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 5)),
                         SweepName);

// Seeded repetition of the Tsunami end-to-end path, since it exercises the
// most machinery (clustering, tree, AGD, grids).
class TsunamiSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(TsunamiSeedSweep, RandomizedEndToEnd) {
  int seed = GetParam();
  Rng rng(seed);
  int dims = 2 + static_cast<int>(rng.NextBelow(6));
  int kind = static_cast<int>(rng.NextBelow(5));
  Dataset data = MakeAdversarialData(kind, dims, 3000, seed * 31);
  Workload workload = MakeRandomQueries(data, 40, seed * 37);
  FullScanIndex reference(data);
  std::unique_ptr<MultiDimIndex> index = MakeIndex(5, data, workload);
  for (const Query& q : workload) {
    ASSERT_EQ(index->Execute(q).agg, reference.Execute(q).agg)
        << "seed " << seed << " dims " << dims << " kind " << kind;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsunamiSeedSweep, ::testing::Range(1, 21));

}  // namespace
}  // namespace tsunami
