// Randomized equivalence + concurrency suite for the serving layer:
//  * QueryService Submit/Await (and Run) is bit-identical to per-query
//    Execute and to ExecuteBatch for every index — including on skewed
//    batches (one giant region query + many needles) — across service
//    thread counts and SIMD tiers;
//  * the plan cache stays correct under eviction pressure and concurrent
//    Submit from many client threads, and actually hits;
//  * cancellation and deadlines are honored mid-scan (a single giant range
//    stops inside the chunk loop, not after it);
//  * the SQL engine attached to a service returns exactly what the
//    unattached engine returns.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/fault_injection.h"
#include "src/baselines/single_dim.h"
#include "src/baselines/zorder.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/exec/thread_pool.h"
#include "src/flood/flood.h"
#include "src/query/engine.h"
#include "src/query/router.h"
#include "src/secondary/secondary_index.h"
#include "src/serve/query_service.h"

namespace tsunami {
namespace {

void ExpectBitIdentical(const QueryResult& got, const QueryResult& want,
                        const std::string& context) {
  EXPECT_EQ(got.agg, want.agg) << context;
  EXPECT_EQ(got.scanned, want.scanned) << context;
  EXPECT_EQ(got.matched, want.matched) << context;
  EXPECT_EQ(got.cell_ranges, want.cell_ranges) << context;
  ASSERT_EQ(got.extra.size(), want.extra.size()) << context;
  for (size_t i = 0; i < got.extra.size(); ++i) {
    EXPECT_EQ(got.extra[i], want.extra[i]) << context << " extra " << i;
  }
}

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(91);
    const int64_t n = 24000;
    data_ = Dataset(3, {});
    data_.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      Value x = rng.UniformValue(0, 40000);
      data_.AppendRow(
          {x, x + rng.UniformValue(-300, 300), rng.UniformValue(0, 1000)});
    }
    for (int i = 0; i < 32; ++i) {
      workload_.push_back(Needle(rng));
    }
  }

  /// A cheap, selective query (the "needle" half of a skewed batch).
  Query Needle(Rng& rng) const {
    Query q;
    Value lo = rng.UniformValue(0, 38000);
    q.filters.push_back(Predicate{0, lo, lo + 1500});
    switch (rng.NextBelow(3)) {
      case 0:
        q.SetAggregates({{AggKind::kCount, 0}});
        break;
      case 1:
        q.SetAggregates({{AggKind::kSum, 1}});
        break;
      default:
        q.SetAggregates({{AggKind::kSum, 2},
                         {AggKind::kCount, 0},
                         {AggKind::kMin, 1},
                         {AggKind::kMax, 0}});
        break;
    }
    return q;
  }

  /// The giant region query: touches nearly everything, multi-aggregate.
  Query Region() const {
    Query q;
    q.filters.push_back(Predicate{0, 100, 39900});
    q.filters.push_back(Predicate{2, 0, 990});
    q.SetAggregates(
        {{AggKind::kSum, 1}, {AggKind::kCount, 0}, {AggKind::kMax, 2}});
    return q;
  }

  /// A randomized skewed batch: one region query somewhere among needles.
  Workload SkewedBatch(Rng& rng, int needles) const {
    Workload batch;
    size_t region_at = rng.NextBelow(needles + 1);
    for (int i = 0; i < needles; ++i) {
      if (batch.size() == region_at) batch.push_back(Region());
      batch.push_back(Needle(rng));
    }
    if (batch.size() == region_at) batch.push_back(Region());
    return batch;
  }

  std::vector<std::unique_ptr<MultiDimIndex>> BuildRoster() const {
    std::vector<std::unique_ptr<MultiDimIndex>> xs;
    xs.push_back(std::make_unique<FullScanIndex>(data_));
    xs.push_back(std::make_unique<SingleDimIndex>(data_, workload_));
    xs.push_back(std::make_unique<ZOrderIndex>(data_, ZOrderIndex::Options()));
    xs.push_back(std::make_unique<FloodIndex>(data_, workload_));
    TsunamiOptions options;
    options.cluster_queries = false;
    xs.push_back(std::make_unique<TsunamiIndex>(data_, workload_, options));
    xs.push_back(std::make_unique<SortedSecondaryIndex>(data_, /*host_dim=*/0,
                                                        /*key_dim=*/2));
    xs.push_back(std::make_unique<CorrelationSecondaryIndex>(
        data_, /*host_dim=*/0, /*key_dim=*/1));
    return xs;
  }

  Dataset data_;
  Workload workload_;
};

TEST_F(QueryServiceTest, SubmitAwaitBitIdenticalToExecuteAndExecuteBatch) {
  std::vector<std::unique_ptr<MultiDimIndex>> roster = BuildRoster();
  Rng rng(92);
  for (const auto& index : roster) {
    Workload batch = SkewedBatch(rng, 24);
    for (int threads : {0, 2, 4}) {
      for (ScanMode mode : {ScanMode::kSimd, ScanMode::kScalar}) {
        ServiceOptions options;
        options.threads = threads;
        QueryService service(index.get(), options);
        SubmitOptions sub;
        sub.scan = ScanOptions{mode};
        std::vector<QueryService::Admission> tickets =
            service.SubmitBatch(std::span<const Query>(batch), sub);
        ASSERT_EQ(tickets.size(), batch.size());
        // Also the ExecuteBatch path, as the second reference.
        ThreadPool pool(threads);
        ExecContext ctx(&pool, ScanOptions{mode});
        std::vector<QueryResult> via_batch = index->ExecuteBatch(
            std::span<const Query>(batch.data(), batch.size()), ctx);
        for (size_t i = 0; i < batch.size(); ++i) {
          bool cancelled = true;
          QueryResult got = service.Await(tickets[i], &cancelled);
          EXPECT_FALSE(cancelled);
          std::string context = index->Name() + " query " +
                                std::to_string(i) + " threads " +
                                std::to_string(threads);
          ExpectBitIdentical(got, index->Execute(batch[i]), context);
          ExpectBitIdentical(got, via_batch[i], context + " (vs batch)");
        }
        ServiceStats stats = service.stats();
        EXPECT_EQ(stats.submitted, static_cast<int64_t>(batch.size()));
        EXPECT_EQ(stats.completed, static_cast<int64_t>(batch.size()));
        EXPECT_EQ(stats.cancelled, 0);
        EXPECT_EQ(stats.tickets_in_flight, 0);
      }
    }
  }
}

TEST_F(QueryServiceTest, RouterPlansExecuteAgainstRoutedStore) {
  std::vector<std::unique_ptr<MultiDimIndex>> roster = BuildRoster();
  // A router over indexes with *different* clustered stores: the service
  // must scan each plan against PlanTarget's store, not the router's.
  AccessPathRouter router(
      {roster[0].get(), roster[4].get(), roster[5].get()}, data_, workload_);
  ServiceOptions options;
  options.threads = 3;
  QueryService service(&router, options);
  Rng rng(93);
  Workload batch = SkewedBatch(rng, 16);
  std::vector<QueryService::Admission> tickets =
      service.SubmitBatch(std::span<const Query>(batch));
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectBitIdentical(service.Await(tickets[i]), router.Execute(batch[i]),
                       "router query " + std::to_string(i));
  }
}

TEST_F(QueryServiceTest, TsunamiDeltaBufferReachesServicePath) {
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data_, workload_, options);
  index.Insert({120, 160, 480});
  index.Insert({36000, 35800, 220});
  ServiceOptions service_options;
  service_options.threads = 2;
  QueryService service(&index, service_options);
  Rng rng(94);
  Workload batch = SkewedBatch(rng, 8);
  for (const Query& q : batch) {
    ExpectBitIdentical(service.Run(q), index.Execute(q), "delta query");
  }
}

TEST_F(QueryServiceTest, PlanCacheHitsRepeatEvictsAndStaysCorrect) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 2;
  options.plan_cache_capacity = 2;  // Tiny: forces eviction churn.
  QueryService service(&index, options);
  Rng rng(95);
  std::vector<Query> distinct;
  for (int i = 0; i < 5; ++i) distinct.push_back(Needle(rng));
  // Cycle the 5 queries repeatedly through a capacity-2 cache: every
  // arrival must still answer exactly, evictions notwithstanding.
  for (int round = 0; round < 6; ++round) {
    for (size_t i = 0; i < distinct.size(); ++i) {
      ExpectBitIdentical(service.Run(distinct[i]),
                         index.Execute(distinct[i]),
                         "round " + std::to_string(round) + " query " +
                             std::to_string(i));
    }
  }
  PlanCache::Stats cache = service.plan_cache().stats();
  EXPECT_GT(cache.evictions, 0);
  EXPECT_LE(cache.size, 2);
  EXPECT_EQ(cache.hits + cache.misses, 6 * 5);

  // A warm cache (capacity comfortably above the distinct count) must
  // actually hit: same traffic, ~4/5 hit rate.
  ServiceOptions warm_options;
  warm_options.threads = 2;
  warm_options.plan_cache_capacity = 64;
  QueryService warm(&index, warm_options);
  for (int round = 0; round < 6; ++round) {
    for (const Query& q : distinct) {
      ExpectBitIdentical(warm.Run(q), index.Execute(q), "warm");
    }
  }
  PlanCache::Stats warm_stats = warm.plan_cache().stats();
  EXPECT_EQ(warm_stats.misses, 5);
  EXPECT_EQ(warm_stats.hits, 6 * 5 - 5);
  EXPECT_GT(warm_stats.HitRate(), 0.8);
}

TEST_F(QueryServiceTest, FingerprintNormalizesFilterOrderAndTypeLabel) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 1;
  QueryService service(&index, options);
  Query a = Region();
  Query b = Region();
  // Same rectangle, different filter order and type label: one plan.
  std::swap(b.filters[0], b.filters[1]);
  b.type = 7;
  // The Query-level helpers agree with the cache's behavior.
  EXPECT_EQ(QueryFingerprint(a), QueryFingerprint(b));
  EXPECT_TRUE(FingerprintEquivalent(a, b));
  Query c = a;
  c.filters[0].hi += 1;
  EXPECT_FALSE(FingerprintEquivalent(a, c));
  ExpectBitIdentical(service.Run(a), index.Execute(a), "fingerprint a");
  ExpectBitIdentical(service.Run(b), index.Execute(a), "fingerprint b");
  EXPECT_EQ(service.plan_cache().stats().misses, 1);
  EXPECT_EQ(service.plan_cache().stats().hits, 1);
}

TEST_F(QueryServiceTest, ConcurrentSubmittersShareTheCacheCorrectly) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 3;
  QueryService service(&index, options);
  Rng seed_rng(96);
  std::vector<Query> mix;
  for (int i = 0; i < 8; ++i) mix.push_back(Needle(seed_rng));
  std::vector<QueryResult> want;
  for (const Query& q : mix) want.push_back(index.Execute(q));
  const int kClients = 6;
  const int kRounds = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int r = 0; r < kRounds; ++r) {
        size_t pick = rng.NextBelow(mix.size());
        QueryResult got = service.Run(mix[pick]);
        if (got.agg != want[pick].agg || got.matched != want[pick].matched ||
            got.scanned != want[pick].scanned) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  PlanCache::Stats cache = service.plan_cache().stats();
  EXPECT_EQ(cache.hits + cache.misses, kClients * kRounds);
  // 8 distinct rectangles, 72 arrivals: the cache must have absorbed the
  // repeats (racing first-arrivals may double-prepare, hence >=).
  EXPECT_GT(cache.hits, 0);
  EXPECT_GE(cache.misses, 8);
}

TEST_F(QueryServiceTest, PreCancelledQueryReturnsIdentity) {
  FullScanIndex index(data_);
  ServiceOptions options;
  options.threads = 2;
  QueryService service(&index, options);
  std::atomic<bool> cancel{true};
  SubmitOptions sub;
  sub.cancel = &cancel;
  bool cancelled = false;
  QueryResult got = service.Run(Region(), sub, &cancelled);
  EXPECT_TRUE(cancelled);
  ExpectBitIdentical(got, InitResult(Region()), "pre-cancelled");
  EXPECT_EQ(service.stats().cancelled, 1);
  EXPECT_EQ(service.stats().completed, 0);
}

// The mid-scan satellite: a single giant range scan must observe a
// mid-flight cancel between block-aligned slices — before the scan
// completes — not merely between range tasks.
TEST_F(QueryServiceTest, CancelLandsMidScanInsideOneGiantRange) {
  // One huge task, inline context, no chunking help: only the in-kernel
  // stop probe can stop this early.
  ColumnStore store(data_);
  Query q = Region();
  std::atomic<bool> cancel{false};
  ExecContext ctx;
  ctx.cancel = &cancel;
  // Trip the flag from inside the probe itself after the first slice, by
  // keying on progress: probe sees the flag unset, sets it, and the next
  // probe stops the scan. (Deterministic: no timing involved.)
  struct Trip {
    const std::atomic<bool>* read;
    std::atomic<bool>* write;
    std::atomic<int> calls{0};
  } trip{&cancel, &cancel};
  ScanOptions options = ctx.scan;
  options.stop_probe = [](const void* arg) {
    Trip* t = const_cast<Trip*>(static_cast<const Trip*>(arg));
    t->calls.fetch_add(1, std::memory_order_relaxed);
    if (t->calls.load(std::memory_order_relaxed) > 1) {
      return t->read->load(std::memory_order_relaxed);
    }
    t->write->store(true, std::memory_order_relaxed);
    return false;
  };
  options.stop_arg = &trip;
  QueryResult partial = InitResult(q);
  RangeTask whole{0, store.size(), false};
  store.ScanRanges({&whole, 1}, q, &partial, options);
  // The scan stopped after roughly one probe slice, far short of the
  // full store.
  EXPECT_LT(partial.scanned, store.size());
  EXPECT_GT(partial.scanned, 0);
  EXPECT_GE(trip.calls.load(), 2);

  // And end-to-end: a service query with an expired deadline comes back
  // cancelled with the identity result, never a partial.
  FullScanIndex index(data_);
  ServiceOptions service_options;
  service_options.threads = 2;
  QueryService service(&index, service_options);
  SubmitOptions sub;
  sub.deadline_seconds = 1e-9;
  bool cancelled = false;
  QueryResult got = service.Run(q, sub, &cancelled);
  EXPECT_TRUE(cancelled);
  ExpectBitIdentical(got, InitResult(q), "deadline");
}

TEST_F(QueryServiceTest, ProbedUncancelledScanIsBitIdentical) {
  // The probe slices the scan into sub-ranges; when the probe never fires,
  // the sliced scan must equal the unsliced one bit for bit, in every mode.
  ColumnStore store(data_);
  std::atomic<bool> cancel{false};
  ExecContext ctx;
  ctx.cancel = &cancel;  // Cancellable, never cancelled.
  Rng rng(97);
  for (int trial = 0; trial < 6; ++trial) {
    Query q = trial % 2 == 0 ? Region() : Needle(rng);
    for (ScanMode mode :
         {ScanMode::kScalar, ScanMode::kVectorized, ScanMode::kSimd}) {
      for (bool exact : {false, true}) {
        ctx.scan = ScanOptions{mode};
        RangeTask whole{0, store.size(), exact};
        QueryResult probed = InitResult(q);
        store.ScanRanges({&whole, 1}, q, &probed, ctx.CancellableScan());
        QueryResult plain = InitResult(q);
        store.ScanRanges({&whole, 1}, q, &plain, ScanOptions{mode});
        ExpectBitIdentical(probed, plain,
                           "mode " + std::to_string(static_cast<int>(mode)) +
                               " exact " + std::to_string(exact));
      }
    }
  }
}

TEST_F(QueryServiceTest, EngineAttachedToServiceMatchesUnattached) {
  FloodIndex index(data_, workload_);
  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {"a", "b", "c"};
  QueryEngine plain(&index, schema);
  QueryEngine served(&index, schema);
  ServiceOptions options;
  options.threads = 3;
  QueryService service(&index, options);
  served.AttachService(&service);

  std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM t WHERE a < 5000",
      "SELECT SUM(c), AVG(c) FROM t WHERE b > 10000",
      "SELECT COUNT(*) FROM t WHERE a < 1000 OR c > 900",
      "SELECT MIN(b) FROM t WHERE a > 20000 AND a < 1000",
      "SELECT SUM(b), COUNT(*), MAX(c) FROM t WHERE a BETWEEN 2000 AND "
      "38000",
  };
  std::vector<PreparedStatement> stmts;
  for (const std::string& sql : sqls) stmts.push_back(served.Prepare(sql));
  ExecContext ctx;
  std::vector<SqlResult> got = served.RunBatch(stmts, ctx);
  ASSERT_EQ(got.size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    SqlResult want = plain.Run(sqls[i]);
    ASSERT_EQ(got[i].ok, want.ok) << sqls[i];
    if (!want.ok) continue;
    ASSERT_EQ(got[i].values.size(), want.values.size()) << sqls[i];
    for (size_t a = 0; a < want.values.size(); ++a) {
      EXPECT_DOUBLE_EQ(got[i].values[a], want.values[a]) << sqls[i];
    }
    EXPECT_EQ(got[i].stats.matched, want.stats.matched) << sqls[i];
  }
  // Re-preparing the same statements binds through the plan cache.
  PlanCache::Stats before = service.plan_cache().stats();
  for (const std::string& sql : sqls) (void)served.Prepare(sql);
  PlanCache::Stats after = service.plan_cache().stats();
  EXPECT_GT(after.hits, before.hits);
}

TEST_F(QueryServiceTest, PriorityQueriesAreServed) {
  // Smoke: priority rides through admission (ordering itself is covered
  // deterministically in task_scheduler_test); results stay exact.
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 2;
  QueryService service(&index, options);
  Rng rng(98);
  Workload batch = SkewedBatch(rng, 12);
  std::vector<QueryService::Ticket> tickets;
  for (size_t i = 0; i < batch.size(); ++i) {
    SubmitOptions sub;
    sub.priority = static_cast<int>(i % 2);
    tickets.push_back(service.Submit(batch[i], sub));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectBitIdentical(service.Await(tickets[i]), index.Execute(batch[i]),
                       "priority query " + std::to_string(i));
  }
}

TEST_F(QueryServiceTest, AwaitInfoReportsWorkerStampedLatency) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 2;
  QueryService service(&index, options);
  Rng rng(99);

  // A completed query reports a positive latency and no cancellation, and
  // the result matches Execute regardless of which Await overload is used.
  Query needle = Needle(rng);
  AwaitInfo info;
  ExpectBitIdentical(service.Await(service.Submit(needle), &info),
                     index.Execute(needle), "await-info needle");
  EXPECT_FALSE(info.cancelled);
  EXPECT_GT(info.latency_seconds, 0.0);
  // Stamped at completion on the worker: far below any sane wall bound.
  EXPECT_LT(info.latency_seconds, 60.0);

  // A pre-cancelled query still reports its (tiny) latency and the flag.
  std::atomic<bool> cancel{true};
  SubmitOptions sub;
  sub.cancel = &cancel;
  AwaitInfo cancelled_info;
  QueryResult result =
      service.Await(service.Submit(Region(), sub), &cancelled_info);
  EXPECT_TRUE(cancelled_info.cancelled);
  EXPECT_EQ(result.matched, 0);

#ifdef NDEBUG
  // An unknown ticket is reported as cancelled/kAlreadyConsumed, not a
  // hang. (Release builds only: debug builds assert on this caller bug.)
  AwaitInfo unknown_info;
  service.Await(static_cast<QueryService::Ticket>(1u << 20), &unknown_info);
  EXPECT_TRUE(unknown_info.cancelled);
  EXPECT_EQ(unknown_info.outcome, QueryOutcome::kAlreadyConsumed);
#endif
}

TEST_F(QueryServiceTest, CompletedQueryIsNotCancelledByLateAwait) {
  // Cancellation is recorded by the workers when execution is actually cut
  // short — never re-derived from the deadline clock at Await time. A query
  // whose chunks all finished inside the deadline must be returned intact
  // even when the client picks the result up long after expiry.
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 0;  // Inline: chunks run (and finish) inside Submit.
  QueryService service(&index, options);
  Query region = Region();
  SubmitOptions sub;
  // Roomy enough for the inline execution (a ~24k-row scan), short enough
  // to expire before the late Await below.
  sub.deadline_seconds = 0.25;
  QueryService::Ticket ticket = service.Submit(region, sub);

  // Same stale-state hazard with a borrowed cancel flag: set after the
  // query completed, it must not retroactively cancel the answer.
  std::atomic<bool> late_cancel{false};
  SubmitOptions flagged;
  flagged.cancel = &late_cancel;
  QueryService::Ticket flagged_ticket = service.Submit(region, flagged);
  late_cancel.store(true);

  // Let the deadline lapse before picking up the (already complete) result.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  bool cancelled = true;
  ExpectBitIdentical(service.Await(ticket, &cancelled),
                     index.Execute(region), "late await");
  EXPECT_FALSE(cancelled);
  cancelled = true;
  ExpectBitIdentical(service.Await(flagged_ticket, &cancelled),
                     index.Execute(region), "late cancel flag");
  EXPECT_FALSE(cancelled);
}

// --- Overload robustness: bounded admission, shedding, degradation -------

/// Occupies every worker of `scheduler` until Release() — the deterministic
/// way to keep submitted queries *queued* while a test inspects admission.
class WorkerJam {
 public:
  WorkerJam(TaskScheduler* scheduler, int workers) : scheduler_(scheduler) {
    job_ = scheduler_->Submit(workers, [this](int64_t, int) {
      started_.fetch_add(1, std::memory_order_relaxed);
      while (!release_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    while (started_.load(std::memory_order_relaxed) < workers) {
      std::this_thread::yield();
    }
  }
  void Release() {
    release_.store(true, std::memory_order_release);
    scheduler_->Wait(job_);
  }

 private:
  TaskScheduler* scheduler_;
  TaskScheduler::JobRef job_;
  std::atomic<int> started_{0};
  std::atomic<bool> release_{false};
};

TEST_F(QueryServiceTest, BoundedAdmissionRejectsAndReservesHeadroom) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 1;
  options.max_queued_queries = 2;  // Low-priority watermark: floor(2*0.5)=1.
  QueryService service(&index, options);
  WorkerJam jam(&service.scheduler(), 1);

  Rng rng(200);
  Query needle = Needle(rng);
  // Low-priority traffic may only fill up to the watermark...
  QueryService::Admission low1 = service.Submit(needle);
  EXPECT_TRUE(low1.admitted());
  QueryService::Admission low2 = service.Submit(needle);
  EXPECT_FALSE(low2.admitted());
  EXPECT_EQ(low2.outcome, AdmissionOutcome::kQueueFull);
  // ...while the headroom above it stays available to high priority.
  SubmitOptions high;
  high.priority = 1;
  QueryService::Admission hi = service.Submit(needle, high);
  EXPECT_TRUE(hi.admitted());

  jam.Release();
  // Awaiting a rejection returns immediately with the rejected outcome.
  AwaitInfo rejected_info;
  QueryResult rejected = service.Await(low2, &rejected_info);
  EXPECT_TRUE(rejected_info.cancelled);
  EXPECT_EQ(rejected_info.outcome, QueryOutcome::kRejected);
  EXPECT_EQ(rejected.matched, 0);
  // Admitted queries complete exactly despite the rejection in between.
  ExpectBitIdentical(service.Await(low1), index.Execute(needle), "low1");
  ExpectBitIdentical(service.Await(hi), index.Execute(needle), "high");
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.admitted_chunks, 0);
}

TEST_F(QueryServiceTest, AdmittedChunksGaugeNeverExceedsCap) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 1;
  options.chunk_rows = kScanBlockRows;  // Region() decomposes to ~24 chunks.
  options.max_queued_chunks = 32;
  QueryService service(&index, options);
  WorkerJam jam(&service.scheduler(), 1);

  Rng rng(201);
  std::vector<QueryService::Admission> admissions;
  int64_t rejected = 0;
  for (int i = 0; i < 16; ++i) {
    QueryService::Admission a =
        service.Submit(i % 4 == 0 ? Region() : Needle(rng));
    admissions.push_back(a);
    rejected += a.admitted() ? 0 : 1;
    // The admission invariant under offered overload: the in-use chunk
    // budget never exceeds the cap, no matter how many Submits arrive.
    EXPECT_LE(service.stats().admitted_chunks, options.max_queued_chunks);
  }
  EXPECT_GT(rejected, 0);  // 16 queries cannot all fit in 32 chunks.

  jam.Release();
  for (size_t i = 0; i < admissions.size(); ++i) {
    AwaitInfo info;
    QueryResult got = service.Await(admissions[i], &info);
    if (admissions[i].admitted()) {
      EXPECT_EQ(info.outcome, QueryOutcome::kCompleted) << "query " << i;
    } else {
      EXPECT_EQ(info.outcome, QueryOutcome::kRejected) << "query " << i;
      EXPECT_EQ(got.matched, 0);
    }
  }
  EXPECT_EQ(service.stats().admitted_chunks, 0);
}

TEST_F(QueryServiceTest, HighPriorityShedsLowPriorityAtCapacity) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 1;
  options.max_queued_queries = 1;
  QueryService service(&index, options);
  WorkerJam jam(&service.scheduler(), 1);

  Query region = Region();
  QueryService::Admission victim = service.Submit(region);
  EXPECT_TRUE(victim.admitted());

  Rng rng(202);
  Query needle = Needle(rng);
  SubmitOptions high;
  high.priority = 1;
  QueryService::Admission hi = service.Submit(needle, high);
  EXPECT_TRUE(hi.admitted());  // Made room by shedding the low query.
  EXPECT_EQ(service.stats().shed, 1);

  jam.Release();
  // The shed query reports kShed with the identity result — its chunks
  // early-exited and none of their partials leak into the answer.
  AwaitInfo shed_info;
  QueryResult shed_result = service.Await(victim, &shed_info);
  EXPECT_TRUE(shed_info.cancelled);
  EXPECT_EQ(shed_info.outcome, QueryOutcome::kShed);
  ExpectBitIdentical(shed_result, InitResult(region), "shed identity");
  // The high-priority query that displaced it completes exactly.
  AwaitInfo hi_info;
  ExpectBitIdentical(service.Await(hi, &hi_info), index.Execute(needle),
                     "high-priority");
  EXPECT_EQ(hi_info.outcome, QueryOutcome::kCompleted);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.admitted_chunks, 0);
}

TEST_F(QueryServiceTest, InfeasibleDeadlineIsRejectedUpFront) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 0;
  options.reject_infeasible_deadlines = true;
  QueryService service(&index, options);

  // A 1 ns budget for a ~24k-row region scan: the cost model cannot call
  // that feasible under any calibration.
  SubmitOptions hopeless;
  hopeless.deadline_seconds = 1e-9;
  QueryService::Admission a = service.Submit(Region(), hopeless);
  EXPECT_FALSE(a.admitted());
  EXPECT_EQ(a.outcome, AdmissionOutcome::kDeadlineInfeasible);
  EXPECT_EQ(service.stats().rejected_infeasible, 1);

  // A roomy budget admits and completes as usual.
  SubmitOptions roomy;
  roomy.deadline_seconds = 100.0;
  QueryService::Admission ok = service.Submit(Region(), roomy);
  ASSERT_TRUE(ok.admitted());
  AwaitInfo info;
  ExpectBitIdentical(service.Await(ok, &info), index.Execute(Region()),
                     "feasible deadline");
  EXPECT_EQ(info.outcome, QueryOutcome::kCompleted);

  // Run() on a rejected query reports cancelled with the identity result.
  bool cancelled = false;
  QueryResult r = service.Run(Region(), hopeless, &cancelled);
  EXPECT_TRUE(cancelled);
  ExpectBitIdentical(r, InitResult(Region()), "rejected Run");
}

#ifdef NDEBUG
TEST_F(QueryServiceTest, DoubleAwaitReturnsAlreadyConsumed) {
  // Release builds only: debug builds assert on the double-Await bug.
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 0;
  QueryService service(&index, options);
  Rng rng(203);
  Query needle = Needle(rng);
  QueryService::Ticket t = service.Submit(needle);
  ExpectBitIdentical(service.Await(t), index.Execute(needle), "first await");
  AwaitInfo info;
  QueryResult second = service.Await(t, &info);
  EXPECT_TRUE(info.cancelled);
  EXPECT_EQ(info.outcome, QueryOutcome::kAlreadyConsumed);
  EXPECT_EQ(second.matched, 0);
  EXPECT_EQ(second.agg, 0);
}
#endif

TEST_F(QueryServiceTest, QuarantinedBlockDegradesInsteadOfWrongOrCrash) {
  // Two identical stores; one gets a block of the aggregated column
  // quarantined (as the checksum path would on corruption).
  FullScanIndex index(data_);
  FullScanIndex pristine(data_);
  index.store().encoded(1).Quarantine(0);

  ServiceOptions options;
  options.threads = 2;
  QueryService service(&index, options);

  // A SUM over the quarantined column: the answer is degraded — flagged,
  // not wrong-and-silent, not a crash — and identical across kernel modes.
  Query sum;
  sum.filters.push_back(Predicate{0, 0, 40000});
  sum.SetAggregates({{AggKind::kSum, 1}});
  QueryResult got_default;
  for (ScanMode mode : {ScanMode::kSimd, ScanMode::kVectorized,
                        ScanMode::kScalar}) {
    SubmitOptions sub;
    sub.scan = ScanOptions{mode};
    AwaitInfo info;
    QueryResult got = service.Await(service.Submit(sum, sub), &info);
    EXPECT_EQ(info.outcome, QueryOutcome::kCompleted);
    EXPECT_TRUE(got.degraded);
    EXPECT_GE(got.quarantined_blocks, 1);
    if (mode == ScanMode::kSimd) {
      got_default = got;
    } else {
      EXPECT_EQ(got.agg, got_default.agg) << "mode diverged";
      EXPECT_EQ(got.matched, got_default.matched) << "mode diverged";
      EXPECT_EQ(got.quarantined_blocks, got_default.quarantined_blocks);
    }
  }

  // A COUNT that never reads the quarantined column stays exact.
  Query count;
  count.filters.push_back(Predicate{0, 0, 40000});
  count.SetAggregates({{AggKind::kCount, 0}});
  AwaitInfo count_info;
  QueryResult got_count = service.Await(service.Submit(count), &count_info);
  EXPECT_EQ(count_info.outcome, QueryOutcome::kCompleted);
  EXPECT_FALSE(got_count.degraded);
  ExpectBitIdentical(got_count, pristine.Execute(count), "count unaffected");
}

TEST_F(QueryServiceTest, InjectedFaultSoakFailsClosedAndReplaysClean) {
#if !defined(TSUNAMI_FAULT_INJECTION)
  GTEST_SKIP() << "built without TSUNAMI_FAULT_INJECTION";
#else
  // Storms of injected faults under a 4-thread scheduler: chunks that
  // throw, workers that stall, and checksums that fail verification. The
  // service must fail *closed* — every Await returns either an exact
  // answer, a flagged-degraded answer, or an identity result with a
  // truthful outcome — and a quiesced replay with faults disarmed must be
  // bit-identical to per-query Execute.
  FullScanIndex index(data_);
  ServiceOptions options;
  options.threads = 4;
  QueryService service(&index, options);
  Rng rng(204);
  Workload batch = SkewedBatch(rng, 24);

  fault::FaultSpec throw_spec;
  throw_spec.probability = 0.2;
  throw_spec.seed = 41;
  fault::Arm("sched.task_throw", throw_spec);
  fault::FaultSpec stall_spec;
  stall_spec.probability = 0.1;
  stall_spec.seed = 42;
  fault::Arm("sched.stall", stall_spec);
  fault::FaultSpec checksum_spec;
  checksum_spec.probability = 0.05;
  checksum_spec.seed = 43;
  fault::Arm("storage.checksum", checksum_spec);
  index.store().encoded(0).MarkAllUnverified();
  index.store().encoded(1).MarkAllUnverified();

  for (int round = 0; round < 4; ++round) {
    std::vector<QueryService::Admission> admissions =
        service.SubmitBatch(std::span<const Query>(batch));
    for (size_t i = 0; i < batch.size(); ++i) {
      AwaitInfo info;
      QueryResult got = service.Await(admissions[i], &info);
      if (info.outcome == QueryOutcome::kFailed) {
        // Failed queries return the identity result, never partials.
        EXPECT_EQ(got.agg, InitResult(batch[i]).agg) << "query " << i;
        EXPECT_EQ(got.matched, 0) << "query " << i;
      } else {
        EXPECT_EQ(info.outcome, QueryOutcome::kCompleted) << "query " << i;
      }
    }
  }
  EXPECT_GT(fault::FireCount("sched.task_throw"), 0);
  EXPECT_GT(service.stats().failed, 0);
  fault::DisarmAll();

  // Quiesced replay: faults off, quarantine state frozen (it is sticky by
  // design). Service answers must now be bit-identical to Execute on the
  // same store — including the degraded flag and quarantine counts.
  for (size_t i = 0; i < batch.size(); ++i) {
    AwaitInfo info;
    QueryResult got = service.Await(service.Submit(batch[i]), &info);
    ASSERT_EQ(info.outcome, QueryOutcome::kCompleted) << "replay " << i;
    QueryResult want = index.Execute(batch[i]);
    ExpectBitIdentical(got, want, "replay " + std::to_string(i));
    EXPECT_EQ(got.degraded, want.degraded) << "replay " << i;
    EXPECT_EQ(got.quarantined_blocks, want.quarantined_blocks)
        << "replay " << i;
  }
#endif
}

TEST_F(QueryServiceTest, FailedChunksReturnBoundedAdmissionBudget) {
#if !defined(TSUNAMI_FAULT_INJECTION)
  GTEST_SKIP() << "built without TSUNAMI_FAULT_INJECTION";
#else
  // Regression: a chunk that fails must still return its admission-budget
  // units — whether its scan threw mid-closure (the RAII tail) or the
  // injected scheduler fault threw before the closure ever ran (the Await
  // backstop). Before the fix, every failed chunk permanently consumed
  // admitted_chunks_/active_queries_ budget, so a bounded service under
  // faults drifted into rejecting all traffic with kQueueFull.
  FullScanIndex index(data_);
  ServiceOptions options;
  options.threads = 2;
  options.chunk_rows = kScanBlockRows;
  options.max_queued_queries = 4;
  options.max_queued_chunks = 64;
  QueryService service(&index, options);

  fault::FaultSpec throw_spec;
  throw_spec.probability = 1.0;  // Deterministic: every chunk throws.
  throw_spec.seed = 7;
  fault::Arm("sched.task_throw", throw_spec);

  Rng rng(205);
  Workload batch = SkewedBatch(rng, 8);
  // Far more failed queries than the query cap: any leaked unit surfaces
  // as a kQueueFull rejection (Await on a rejected ticket reports
  // kRejected, failing the kFailed expectation below).
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < batch.size(); ++i) {
      SubmitOptions high;
      high.priority = 1;  // Full cap — no watermark scaling in the way.
      AwaitInfo info;
      QueryResult got = service.Await(service.Submit(batch[i], high), &info);
      EXPECT_EQ(info.outcome, QueryOutcome::kFailed)
          << "round " << round << " query " << i;
      EXPECT_GT(info.latency_seconds, 0.0);  // Stamped even on failure.
      EXPECT_EQ(got.matched, 0);
    }
  }
  fault::DisarmAll();

  // Every unit came back: gauges empty, nothing was ever rejected, and the
  // service still admits and answers exactly.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.admitted_chunks, 0);
  EXPECT_EQ(stats.rejected_queue_full, 0);
  EXPECT_GT(stats.failed, 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    AwaitInfo info;
    QueryResult got = service.Await(service.Submit(batch[i]), &info);
    ASSERT_EQ(info.outcome, QueryOutcome::kCompleted) << "query " << i;
    ExpectBitIdentical(got, index.Execute(batch[i]),
                       "post-fault " + std::to_string(i));
  }
#endif
}

TEST_F(QueryServiceTest, PerClientCapIsolatesGreedyClientOnly) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 1;
  options.max_inflight_per_client = 1;
  QueryService service(&index, options);
  WorkerJam jam(&service.scheduler(), 1);

  Rng rng(210);
  Query needle = Needle(rng);
  SubmitOptions greedy;
  greedy.client_id = 7;
  QueryService::Admission first = service.Submit(needle, greedy);
  ASSERT_TRUE(first.admitted()) << ToString(first.outcome);
  // The same client's second query exceeds its fairness slot...
  QueryService::Admission second = service.Submit(needle, greedy);
  EXPECT_FALSE(second.admitted());
  EXPECT_EQ(second.outcome, AdmissionOutcome::kClientBusy)
      << ToString(second.outcome);
  // ...while other clients and anonymous submissions are untouched.
  SubmitOptions other;
  other.client_id = 8;
  QueryService::Admission third = service.Submit(needle, other);
  EXPECT_TRUE(third.admitted()) << ToString(third.outcome);
  QueryService::Admission anon = service.Submit(needle);
  EXPECT_TRUE(anon.admitted()) << ToString(anon.outcome);

  jam.Release();
  ExpectBitIdentical(service.Await(first), index.Execute(needle), "first");
  ExpectBitIdentical(service.Await(third), index.Execute(needle), "third");
  ExpectBitIdentical(service.Await(anon), index.Execute(needle), "anon");
  AwaitInfo info;
  QueryResult got = service.Await(second, &info);
  EXPECT_EQ(info.outcome, QueryOutcome::kRejected) << ToString(info.outcome);
  EXPECT_EQ(got.matched, 0);

  // The slot is released with the query: the capped client admits again.
  QueryService::Admission retry = service.Submit(needle, greedy);
  EXPECT_TRUE(retry.admitted()) << ToString(retry.outcome);
  ExpectBitIdentical(service.Await(retry), index.Execute(needle), "retry");
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_client_busy, 1);
  EXPECT_EQ(stats.active_queries, 0);
}

TEST_F(QueryServiceTest, DrainRejectsNewWhileFinishingInflight) {
  FloodIndex index(data_, workload_);
  ServiceOptions options;
  options.threads = 1;
  QueryService service(&index, options);
  WorkerJam jam(&service.scheduler(), 1);

  Rng rng(211);
  std::vector<Query> queries;
  std::vector<QueryService::Admission> admitted;
  for (int i = 0; i < 3; ++i) {
    queries.push_back(Needle(rng));
    QueryService::Admission a = service.Submit(queries.back());
    ASSERT_TRUE(a.admitted()) << ToString(a.outcome);
    admitted.push_back(a);
  }

  service.BeginDrain();
  EXPECT_TRUE(service.draining());
  QueryService::Admission late = service.Submit(Needle(rng));
  EXPECT_FALSE(late.admitted());
  EXPECT_EQ(late.outcome, AdmissionOutcome::kDraining)
      << ToString(late.outcome);
  AwaitInfo late_info;
  QueryResult late_result = service.Await(late, &late_info);
  EXPECT_EQ(late_info.outcome, QueryOutcome::kRejected)
      << ToString(late_info.outcome);
  EXPECT_EQ(late_result.matched, 0);

  // Drain() blocks until the already-admitted work has executed; the
  // answers stay parked behind their tickets and come back intact.
  jam.Release();
  service.Drain();
  for (size_t i = 0; i < admitted.size(); ++i) {
    AwaitInfo info;
    QueryResult got = service.Await(admitted[i], &info);
    EXPECT_EQ(info.outcome, QueryOutcome::kCompleted) << ToString(info.outcome);
    ExpectBitIdentical(got, index.Execute(queries[i]),
                       "drained " + std::to_string(i));
  }
  ServiceStats stats = service.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.rejected_draining, 1);
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.active_queries, 0);

  // Draining is one-way: fresh work keeps bouncing after the drain ends.
  QueryService::Admission post = service.Submit(Needle(rng));
  EXPECT_EQ(post.outcome, AdmissionOutcome::kDraining)
      << ToString(post.outcome);
}

}  // namespace
}  // namespace tsunami
