// Tests for the SQL-subset parser, binding, extended aggregates, and the
// query engine end to end (over FullScan and Tsunami indexes).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/tsunami.h"
#include "src/query/engine.h"
#include "src/query/sql_parser.h"
#include "src/storage/dictionary.h"

namespace tsunami {
namespace {

// A tiny trips table: (distance, fare_cents, passengers, payment).
// fare has fixed-point scale 100; payment is dictionary encoded.
class QueryLayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    payment_ = Dictionary::Build({"cash", "credit", "mobile", "credit"});
    data_ = Dataset(4, {});
    // distance, fare(cents), passengers, payment code
    AddRow(1, 550, 1, "cash");
    AddRow(2, 880, 2, "credit");
    AddRow(3, 1275, 1, "credit");
    AddRow(5, 2050, 4, "mobile");
    AddRow(8, 3300, 1, "cash");
    AddRow(13, 5125, 2, "mobile");
    index_ = std::make_unique<FullScanIndex>(data_);
    schema_.table_name = "trips";
    schema_.columns = {"distance", "fare", "passengers", "payment"};
    schema_.scales = {1, 100, 1, 1};
    schema_.dictionaries = {nullptr, nullptr, nullptr, &payment_};
    engine_ = std::make_unique<QueryEngine>(index_.get(), schema_);
  }

  void AddRow(Value dist, Value fare, Value pax, const std::string& pay) {
    data_.AppendRow({dist, fare, pax, payment_.Encode(pay)});
  }

  Dictionary payment_;
  Dataset data_;
  TableSchema schema_;
  std::unique_ptr<FullScanIndex> index_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryLayerTest, CountStarNoWhere) {
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 6);
}

TEST_F(QueryLayerTest, CountWithRange) {
  SqlResult r =
      engine_->Run("SELECT COUNT(*) FROM trips WHERE distance <= 5");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 4);
}

TEST_F(QueryLayerTest, SumAggregate) {
  SqlResult r =
      engine_->Run("SELECT SUM(passengers) FROM trips WHERE distance >= 3");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 1 + 4 + 1 + 2);
}

TEST_F(QueryLayerTest, MinMaxAggregates) {
  SqlResult mn = engine_->Run(
      "SELECT MIN(fare) FROM trips WHERE passengers = 1");
  ASSERT_TRUE(mn.ok) << mn.error;
  EXPECT_EQ(mn.value, 550);
  SqlResult mx = engine_->Run(
      "SELECT MAX(fare) FROM trips WHERE passengers = 1");
  ASSERT_TRUE(mx.ok) << mx.error;
  EXPECT_EQ(mx.value, 3300);
}

TEST_F(QueryLayerTest, AvgAggregate) {
  SqlResult r = engine_->Run(
      "SELECT AVG(distance) FROM trips WHERE passengers <= 2");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.value, (1.0 + 2.0 + 3.0 + 8.0 + 13.0) / 5.0);
}

TEST_F(QueryLayerTest, MinMaxAvgOverNoRowsIsZero) {
  SqlResult r = engine_->Run(
      "SELECT MIN(fare) FROM trips WHERE distance > 100");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stats.matched, 0);
  EXPECT_EQ(r.value, 0.0);
}

TEST_F(QueryLayerTest, DecimalLiteralUsesColumnScale) {
  // fare has scale 100: 12.75 binds to 1275.
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips WHERE fare = 12.75");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 1);
  r = engine_->Run("SELECT COUNT(*) FROM trips WHERE fare <= 12.75");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 3);
}

TEST_F(QueryLayerTest, InexactDecimalRoundsConservatively) {
  // 8.805 scales to 880.5: `fare < 8.805` must include 880 and exclude 1275.
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips WHERE fare < 8.805");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 2);
  // Equality with a value not representable at scale 100 matches nothing.
  r = engine_->Run("SELECT COUNT(*) FROM trips WHERE fare = 8.8051");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 0);
}

TEST_F(QueryLayerTest, StringEquality) {
  SqlResult r =
      engine_->Run("SELECT COUNT(*) FROM trips WHERE payment = 'credit'");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 2);
}

TEST_F(QueryLayerTest, StringRangeIsLexicographic) {
  // Dictionary order: cash < credit < mobile.
  SqlResult r =
      engine_->Run("SELECT COUNT(*) FROM trips WHERE payment < 'mobile'");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 4);
  r = engine_->Run("SELECT COUNT(*) FROM trips WHERE payment >= 'credit'");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 4);
}

TEST_F(QueryLayerTest, UnknownStringEqualityMatchesNothing) {
  SqlResult r =
      engine_->Run("SELECT COUNT(*) FROM trips WHERE payment = 'bitcoin'");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(r.stats.scanned, 0);  // Short-circuited before the index.
}

TEST_F(QueryLayerTest, UnknownStringRangeStillBinds) {
  // 'd...' sorts between credit and mobile even though absent.
  SqlResult r =
      engine_->Run("SELECT COUNT(*) FROM trips WHERE payment > 'dollar'");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 2);  // mobile rows only.
}

TEST_F(QueryLayerTest, BetweenPredicate) {
  SqlResult r = engine_->Run(
      "SELECT COUNT(*) FROM trips WHERE distance BETWEEN 2 AND 8");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 4);
}

TEST_F(QueryLayerTest, BetweenNegativeLiterals) {
  SqlResult r = engine_->Run(
      "SELECT COUNT(*) FROM trips WHERE distance BETWEEN -5 AND -2");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 0);
  r = engine_->Run(
      "SELECT COUNT(*) FROM trips WHERE distance BETWEEN -5 AND 2");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 2);
}

TEST_F(QueryLayerTest, LiteralOnLeftMirrorsOperator) {
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips WHERE 5 <= distance");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 3);
  r = engine_->Run("SELECT COUNT(*) FROM trips WHERE 5 > distance");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 3);
}

TEST_F(QueryLayerTest, ConjunctionIntersectsSameColumn) {
  SqlResult r = engine_->Run(
      "SELECT COUNT(*) FROM trips WHERE distance >= 2 AND distance <= 5 AND "
      "distance >= 3");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 2);
}

TEST_F(QueryLayerTest, ContradictoryRangeIsEmptyWithoutExecution) {
  SqlResult r = engine_->Run(
      "SELECT COUNT(*) FROM trips WHERE distance > 5 AND distance < 3");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(r.stats.scanned, 0);
}

TEST_F(QueryLayerTest, CaseInsensitiveKeywordsAndNames) {
  SqlResult r = engine_->Run(
      "select count(*) from TRIPS where Distance <= 5 and PASSENGERS = 1");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 2);
}

TEST_F(QueryLayerTest, TrailingSemicolonAccepted) {
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips;");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 6);
}

TEST_F(QueryLayerTest, SumOverNamedColumnInAggregate) {
  SqlResult r = engine_->Run("SELECT SUM(fare) FROM trips WHERE distance = 1");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 550);
}

// --- Error paths -----------------------------------------------------------

TEST_F(QueryLayerTest, ErrorUnknownColumn) {
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips WHERE speed > 3");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("speed"), std::string::npos);
}

TEST_F(QueryLayerTest, ErrorUnknownTable) {
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM flights");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("flights"), std::string::npos);
}

TEST_F(QueryLayerTest, ErrorMissingSelect) {
  SqlResult r = engine_->Run("COUNT(*) FROM trips");
  EXPECT_FALSE(r.ok);
}

TEST_F(QueryLayerTest, ErrorBadAggregate) {
  SqlResult r = engine_->Run("SELECT MEDIAN(fare) FROM trips");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("aggregate"), std::string::npos);
}

TEST_F(QueryLayerTest, ErrorStringOnNumericColumn) {
  SqlResult r =
      engine_->Run("SELECT COUNT(*) FROM trips WHERE distance = 'far'");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("numeric"), std::string::npos);
}

TEST_F(QueryLayerTest, ErrorUnterminatedString) {
  SqlResult r =
      engine_->Run("SELECT COUNT(*) FROM trips WHERE payment = 'cash");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unterminated"), std::string::npos);
}

TEST_F(QueryLayerTest, ErrorTrailingGarbage) {
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips 42");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("trailing"), std::string::npos);
}

TEST_F(QueryLayerTest, ErrorUnexpectedCharacter) {
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips WHERE a @ 3");
  EXPECT_FALSE(r.ok);
}

TEST_F(QueryLayerTest, ErrorDanglingOperator) {
  SqlResult r = engine_->Run("SELECT COUNT(*) FROM trips WHERE distance <=");
  EXPECT_FALSE(r.ok);
}

TEST_F(QueryLayerTest, ErrorNegatedString) {
  SqlResult r =
      engine_->Run("SELECT COUNT(*) FROM trips WHERE payment = -'cash'");
  EXPECT_FALSE(r.ok);
}

// --- Aggregate accumulator helpers ------------------------------------------

TEST(AggregateTest, IdentityElements) {
  EXPECT_EQ(AggIdentity(AggKind::kCount), 0);
  EXPECT_EQ(AggIdentity(AggKind::kSum), 0);
  EXPECT_EQ(AggIdentity(AggKind::kAvg), 0);
  EXPECT_EQ(AggIdentity(AggKind::kMin), kValueMax);
  EXPECT_EQ(AggIdentity(AggKind::kMax), kValueMin);
}

TEST(AggregateTest, AccumulateMatchesSemantics) {
  int64_t count = AggIdentity(AggKind::kCount);
  int64_t sum = AggIdentity(AggKind::kSum);
  int64_t mn = AggIdentity(AggKind::kMin);
  int64_t mx = AggIdentity(AggKind::kMax);
  for (Value v : {5, -2, 9, 0}) {
    AccumulateAgg(AggKind::kCount, v, &count);
    AccumulateAgg(AggKind::kSum, v, &sum);
    AccumulateAgg(AggKind::kMin, v, &mn);
    AccumulateAgg(AggKind::kMax, v, &mx);
  }
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sum, 12);
  EXPECT_EQ(mn, -2);
  EXPECT_EQ(mx, 9);
}

TEST(AggregateTest, FinalAvgDividesByMatched) {
  Query q;
  q.agg = AggKind::kAvg;
  QueryResult r;
  r.agg = 10;
  r.matched = 4;
  EXPECT_DOUBLE_EQ(FinalAggValue(q, r), 2.5);
}

// --- Aggregates through real indexes ----------------------------------------

// Every aggregate kind must produce identical answers through Tsunami (cell
// scans, exact-range skips, region aggregation) and a full scan.
class AggThroughIndexTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(AggThroughIndexTest, TsunamiMatchesFullScan) {
  Rng rng(7);
  const int64_t n = 20000;
  Dataset data(3, {});
  data.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Value x = rng.UniformValue(0, 1000);
    data.AppendRow({x, x * 2 + rng.UniformValue(-50, 50), rng.UniformValue(0, 100)});
  }
  Workload workload;
  for (int i = 0; i < 40; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900);
    q.filters = {Predicate{0, lo, lo + 100},
                 Predicate{2, rng.UniformValue(0, 50), 100}};
    q.type = i % 2;
    workload.push_back(q);
  }
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data, workload, options);
  ColumnStore reference(data);

  for (Query q : workload) {
    q.agg = GetParam();
    q.agg_dim = 1;
    QueryResult got = index.Execute(q);
    QueryResult want = ExecuteFullScan(reference, q);
    EXPECT_EQ(got.matched, want.matched);
    EXPECT_EQ(got.agg, want.agg)
        << "agg kind " << static_cast<int>(GetParam());
    EXPECT_DOUBLE_EQ(FinalAggValue(q, got), FinalAggValue(q, want));
  }
}

INSTANTIATE_TEST_SUITE_P(AllAggKinds, AggThroughIndexTest,
                         ::testing::Values(AggKind::kCount, AggKind::kSum,
                                           AggKind::kMin, AggKind::kMax,
                                           AggKind::kAvg));

}  // namespace
}  // namespace tsunami
