// Tests for the related-work baselines the paper cites but excludes from
// its evaluation (§6.1): R-tree [3], Grid File [31], and UB-tree [36] —
// including a brute-force property check of the Tropf-Herzog BIGMIN
// Z-address jump used by the UB-tree.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/baselines/grid_file.h"
#include "src/baselines/rtree.h"
#include "src/baselines/ub_tree.h"
#include "src/baselines/zorder.h"
#include "src/common/random.h"
#include "src/datasets/datasets.h"
#include "src/storage/column_store.h"

namespace tsunami {
namespace {

// --- BIGMIN ------------------------------------------------------------------

// Smallest Z-address > z inside the box, by exhaustive enumeration.
bool BruteForceBigMin(uint64_t z, const std::vector<uint32_t>& lo,
                      const std::vector<uint32_t>& hi, int bits_per_dim,
                      uint64_t* out) {
  int dims = static_cast<int>(lo.size());
  uint64_t total = uint64_t{1} << (dims * bits_per_dim);
  for (uint64_t cand = z + 1; cand < total; ++cand) {
    std::vector<uint32_t> coords = MortonDecode(cand, dims, bits_per_dim);
    bool inside = true;
    for (int d = 0; d < dims; ++d) {
      if (coords[d] < lo[d] || coords[d] > hi[d]) {
        inside = false;
        break;
      }
    }
    if (inside) {
      *out = cand;
      return true;
    }
  }
  return false;
}

class BigMinTest : public ::testing::TestWithParam<int> {};

TEST_P(BigMinTest, MatchesBruteForceOnRandomBoxes) {
  const int dims = GetParam();
  const int bits = dims == 2 ? 4 : 3;
  Rng rng(17 + dims);
  const uint32_t coord_max = (uint32_t{1} << bits) - 1;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> lo(dims), hi(dims);
    for (int d = 0; d < dims; ++d) {
      uint32_t a = static_cast<uint32_t>(rng.NextBelow(coord_max + 1));
      uint32_t b = static_cast<uint32_t>(rng.NextBelow(coord_max + 1));
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    uint64_t minz = MortonEncode(lo, bits);
    uint64_t maxz = MortonEncode(hi, bits);
    uint64_t total = uint64_t{1} << (dims * bits);
    uint64_t z = rng.NextBelow(total);
    uint64_t want = 0, got = 0;
    bool want_found = BruteForceBigMin(z, lo, hi, bits, &want);
    bool got_found = ZBigMin(z, minz, maxz, dims, bits, &got);
    ASSERT_EQ(got_found, want_found)
        << "dims=" << dims << " z=" << z << " trial=" << trial;
    if (want_found) {
      ASSERT_EQ(got, want)
          << "dims=" << dims << " z=" << z << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BigMinTest, ::testing::Values(2, 3));

TEST(BigMinTest, FullBoxSuccessorIsIncrement) {
  // Box covering the whole space: successor of z is z + 1.
  std::vector<uint32_t> lo = {0, 0}, hi = {15, 15};
  uint64_t minz = MortonEncode(lo, 4), maxz = MortonEncode(hi, 4);
  uint64_t out = 0;
  ASSERT_TRUE(ZBigMin(100, minz, maxz, 2, 4, &out));
  EXPECT_EQ(out, 101u);
  // The last address has no successor.
  EXPECT_FALSE(ZBigMin(maxz, minz, maxz, 2, 4, &out));
}

// --- Correctness vs full scan over the evaluation datasets --------------------

struct BaselineCase {
  const char* name;
  int benchmark;  // 0 = TPC-H, 1 = Taxi.
  int index;      // 0 = RTree, 1 = GridFile, 2 = UBTree.
};

class RelatedBaselineTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RelatedBaselineTest, MatchesFullScan) {
  const int which_bench = std::get<0>(GetParam());
  const int which_index = std::get<1>(GetParam());
  Benchmark bench = which_bench == 0 ? MakeTpchBenchmark(30000)
                                     : MakeTaxiBenchmark(30000);
  std::unique_ptr<MultiDimIndex> index;
  switch (which_index) {
    case 0: {
      RTreeIndex::Options options;
      options.page_size = 512;
      index = std::make_unique<RTreeIndex>(bench.data, options);
      break;
    }
    case 1: {
      GridFileIndex::Options options;
      options.target_cell_rows = 512;
      index = std::make_unique<GridFileIndex>(bench.data, options);
      break;
    }
    default: {
      UbTreeIndex::Options options;
      options.page_size = 512;
      index = std::make_unique<UbTreeIndex>(bench.data, options);
      break;
    }
  }
  ColumnStore reference(bench.data);
  for (const Query& q : bench.workload) {
    QueryResult want = ExecuteFullScan(reference, q);
    QueryResult got = index->Execute(q);
    EXPECT_EQ(got.agg, want.agg) << index->Name();
    EXPECT_EQ(got.matched, want.matched) << index->Name();
    // An index may never scan fewer rows than it matches.
    EXPECT_GE(got.scanned, got.matched) << index->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RelatedBaselineTest,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1, 2)));

// --- Structural sanity ---------------------------------------------------------

Dataset RandomDataset(int dims, int64_t rows, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dims, {});
  data.Reserve(rows);
  std::vector<Value> row(dims);
  for (int64_t r = 0; r < rows; ++r) {
    for (int d = 0; d < dims; ++d) row[d] = rng.UniformValue(0, 100000);
    data.AppendRow(row);
  }
  return data;
}

TEST(RTreeTest, PackedStructure) {
  Dataset data = RandomDataset(3, 10000, 5);
  RTreeIndex::Options options;
  options.page_size = 256;
  options.fanout = 8;
  RTreeIndex index(data, options);
  EXPECT_EQ(index.num_leaves(), (10000 + 255) / 256);
  // height = ceil(log_8(leaves)) + 1 levels.
  EXPECT_GE(index.height(), 2);
  EXPECT_LE(index.height(), 4);
  EXPECT_GT(index.IndexSizeBytes(), 0);
}

TEST(RTreeTest, EmptyAndTinyDatasets) {
  Dataset empty(2, {});
  RTreeIndex index(empty);
  Query q;
  q.filters = {Predicate{0, 0, 10}};
  EXPECT_EQ(index.Execute(q).agg, 0);

  Dataset one(2, {5, 7});
  RTreeIndex single(one);
  q.filters = {Predicate{0, 5, 5}, Predicate{1, 7, 7}};
  EXPECT_EQ(single.Execute(q).agg, 1);
}

TEST(RTreeTest, ExactLeavesSkipPerRowChecks) {
  // A query covering everything turns every leaf scan into an exact range:
  // COUNT touches no data, so scanned == 0.
  Dataset data = RandomDataset(2, 5000, 6);
  RTreeIndex index(data);
  Query q;  // No filters.
  QueryResult r = index.Execute(q);
  EXPECT_EQ(r.agg, 5000);
  EXPECT_EQ(r.scanned, 0);
}

TEST(GridFileTest, SymmetricPartitions) {
  Dataset data = RandomDataset(3, 40000, 7);
  GridFileIndex::Options options;
  options.target_cell_rows = 512;
  GridFileIndex index(data, options);
  const std::vector<int>& parts = index.partitions();
  ASSERT_EQ(parts.size(), 3u);
  // All dimensions get the same partition count (no workload tuning).
  EXPECT_EQ(parts[0], parts[1]);
  EXPECT_EQ(parts[1], parts[2]);
  EXPECT_EQ(index.num_cells(),
            int64_t{parts[0]} * parts[1] * parts[2]);
}

TEST(GridFileTest, EmptyDatasetAndUnfilteredQuery) {
  Dataset empty(2, {});
  GridFileIndex index(empty);
  Query q;
  EXPECT_EQ(index.Execute(q).agg, 0);

  Dataset data = RandomDataset(2, 3000, 8);
  GridFileIndex full(data);
  EXPECT_EQ(full.Execute(q).agg, 3000);
}

TEST(GridFileTest, AllEqualValuesInOneDimension) {
  Dataset data(2, {});
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    data.AppendRow({42, rng.UniformValue(0, 1000)});
  }
  GridFileIndex index(data);
  Query q;
  q.filters = {Predicate{0, 42, 42}, Predicate{1, 100, 200}};
  ColumnStore reference(data);
  EXPECT_EQ(index.Execute(q).agg, ExecuteFullScan(reference, q).agg);
  q.filters = {Predicate{0, 0, 41}};
  EXPECT_EQ(index.Execute(q).agg, 0);
}

TEST(UbTreeTest, PageCountMatchesPageSize) {
  Dataset data = RandomDataset(2, 10000, 10);
  UbTreeIndex::Options options;
  options.page_size = 1000;
  UbTreeIndex index(data, options);
  EXPECT_EQ(index.num_pages(), 10);
}

TEST(UbTreeTest, SkipsPagesOutsideNarrowBox) {
  // Strongly clustered box query: BIGMIN jumps must avoid scanning the
  // whole table.
  Dataset data = RandomDataset(2, 100000, 11);
  UbTreeIndex::Options options;
  options.page_size = 256;
  UbTreeIndex index(data, options);
  Query q;
  q.filters = {Predicate{0, 1000, 3000}, Predicate{1, 1000, 3000}};
  QueryResult r = index.Execute(q);
  ColumnStore reference(data);
  EXPECT_EQ(r.agg, ExecuteFullScan(reference, q).agg);
  EXPECT_LT(r.scanned, data.size() / 4);
}

TEST(UbTreeTest, RandomQueriesFuzzAgainstFullScan) {
  Dataset data = RandomDataset(3, 20000, 12);
  UbTreeIndex index(data);
  ColumnStore reference(data);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    Query q;
    int nf = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < nf; ++f) {
      Value lo = rng.UniformValue(-5000, 100000);
      q.filters.push_back(
          Predicate{static_cast<int>(rng.NextBelow(3)), lo,
                    lo + rng.UniformValue(0, 30000)});
    }
    EXPECT_EQ(index.Execute(q).agg, ExecuteFullScan(reference, q).agg)
        << "query " << i;
  }
}

}  // namespace
}  // namespace tsunami
