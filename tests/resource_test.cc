// Resource-governance suite (PR 10): ResourceGovernor accounting and
// budgets, ingest backpressure determinism under concurrent writers,
// byte-bounded plan caching, WAL segment-size rotation with forward-scan
// recovery, and group-commit latency shaping. Fault-injection builds
// additionally sweep `fs.enospc` across every filesystem call site (WAL
// write, WAL fsync, checkpoint rename, manifest write) — reads must keep
// serving, acks must fail closed, and the store must re-arm and recover
// bit-identically once space frees — plus `gov.mem_pressure` (injected
// budget rejection) and `scrub.corrupt_block` (the scrubber finds a rotted
// block before any query touches it and repairs it through quarantine).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/fault_injection.h"
#include "src/common/random.h"
#include "src/common/resource_governor.h"
#include "src/durability/durable_store.h"
#include "src/durability/wal.h"
#include "src/ingest/ingest_store.h"
#include "src/ingest/scrubber.h"
#include "src/serve/plan_cache.h"
#include "src/storage/scan_kernel.h"

namespace tsunami {
namespace {

using durability::DurabilityOptions;
using durability::DurableIngestStore;
using durability::InsertResult;
using ingest::IngestOptions;
using ingest::IngestStore;
using ingest::InsertAdmit;
using ingest::Scrubber;
using ingest::ScrubberOptions;

IngestOptions SmallIngestOptions() {
  IngestOptions options;
  options.index.sample_rows = 20000;
  options.index.agd.max_sample_points = 512;
  options.index.agd.max_sample_queries = 32;
  options.index.agd.max_iters = 2;
  options.index.agd.max_cells = 1 << 12;
  options.background_compaction = false;
  return options;
}

Query RangeCount(int dim, Value lo, Value hi) {
  Query q;
  q.filters.push_back(Predicate{dim, lo, hi});
  q.SetAggregates({{AggKind::kCount, 0}});
  return q;
}

/// Fresh per-test scratch directory under the system temp root.
std::string TestDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tsunami_resource_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Small 2-dim base table + workload, same shape as the wal suite's.
struct Fixture {
  Dataset data{2, {}};
  Workload workload;
  Rng rng{29};

  explicit Fixture(int64_t base_rows = 4000) {
    for (int64_t i = 0; i < base_rows; ++i) {
      Value x = rng.UniformValue(0, 100000);
      data.AppendRow({x, rng.UniformValue(0, 1000)});
    }
    for (int i = 0; i < 12; ++i) {
      Query q;
      Value lo = rng.UniformValue(0, 90000);
      q.filters.push_back(Predicate{0, lo, lo + 8000});
      workload.push_back(q);
    }
  }

  std::vector<std::vector<Value>> RandomBatch(int n) {
    std::vector<std::vector<Value>> rows;
    rows.reserve(n);
    for (int i = 0; i < n; ++i) {
      rows.push_back({rng.UniformValue(0, 100000), rng.UniformValue(0, 1000)});
    }
    return rows;
  }

  std::vector<Query> CheckQueries() {
    std::vector<Query> queries;
    for (int i = 0; i < 16; ++i) {
      Query q;
      Value lo = rng.UniformValue(0, 80000);
      q.filters.push_back(Predicate{0, lo, lo + 15000});
      q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
      queries.push_back(q);
    }
    queries.push_back(RangeCount(0, 0, 200000));
    return queries;
  }
};

void ExpectMatchesReference(const IngestStore& store, const Dataset& expect,
                            const std::vector<Query>& queries) {
  FullScanIndex reference(expect);
  for (const Query& q : queries) {
    const QueryResult got = store.Execute(q);
    const QueryResult want = reference.Execute(q);
    EXPECT_EQ(got.agg, want.agg);
    EXPECT_EQ(got.matched, want.matched);
    EXPECT_EQ(got.extra, want.extra);
  }
}

// ---- ResourceGovernor unit coverage ---------------------------------------

TEST(ResourceGovernorTest, ChargeReleaseBudgetAndPeak) {
  ResourceGovernor gov;
  gov.SetBudget(ResourcePool::kDeltaBacklog, 100);
  EXPECT_EQ(gov.budget(ResourcePool::kDeltaBacklog), 100);
  EXPECT_EQ(gov.used(ResourcePool::kDeltaBacklog), 0);

  EXPECT_TRUE(gov.TryCharge(ResourcePool::kDeltaBacklog, 60));
  EXPECT_EQ(gov.used(ResourcePool::kDeltaBacklog), 60);
  EXPECT_TRUE(gov.TryCharge(ResourcePool::kDeltaBacklog, 40));  // Exactly full.
  EXPECT_EQ(gov.used(ResourcePool::kDeltaBacklog), 100);

  // Over budget: refused and backed out — usage unchanged.
  EXPECT_FALSE(gov.TryCharge(ResourcePool::kDeltaBacklog, 1));
  EXPECT_EQ(gov.used(ResourcePool::kDeltaBacklog), 100);

  gov.Release(ResourcePool::kDeltaBacklog, 30);
  EXPECT_EQ(gov.used(ResourcePool::kDeltaBacklog), 70);
  EXPECT_TRUE(gov.TryCharge(ResourcePool::kDeltaBacklog, 30));

  // Releasing more than charged clamps at zero, never goes negative.
  gov.Release(ResourcePool::kDeltaBacklog, 1 << 20);
  EXPECT_EQ(gov.used(ResourcePool::kDeltaBacklog), 0);

  const ResourceGovernor::Stats stats = gov.stats();
  const auto& pool =
      stats.pools[static_cast<int>(ResourcePool::kDeltaBacklog)];
  EXPECT_EQ(pool.peak, 100);
  EXPECT_EQ(pool.budget, 100);
  EXPECT_EQ(pool.rejections, 1);
  EXPECT_GE(pool.charges, 3);
}

TEST(ResourceGovernorTest, ZeroBudgetIsUnlimitedAndWouldExceedPeeks) {
  ResourceGovernor gov;
  // Unlimited pool: any charge succeeds, WouldExceed never trips.
  EXPECT_TRUE(gov.TryCharge(ResourcePool::kWalDisk, int64_t{1} << 40));
  EXPECT_FALSE(gov.WouldExceed(ResourcePool::kWalDisk, int64_t{1} << 40));

  gov.SetBudget(ResourcePool::kWalDisk, (int64_t{1} << 40) + 10);
  EXPECT_FALSE(gov.WouldExceed(ResourcePool::kWalDisk, 10));
  EXPECT_TRUE(gov.WouldExceed(ResourcePool::kWalDisk, 11));
  // WouldExceed is a peek: it charges nothing.
  EXPECT_EQ(gov.used(ResourcePool::kWalDisk), int64_t{1} << 40);

  // Non-positive charges always succeed.
  EXPECT_TRUE(gov.TryCharge(ResourcePool::kWalDisk, 0));
  EXPECT_TRUE(gov.TryCharge(ResourcePool::kWalDisk, -5));
}

TEST(ResourceGovernorTest, SetUsedGaugeAndRaiiCharge) {
  ResourceGovernor gov;
  gov.SetUsed(ResourcePool::kNetBuffers, 12345);
  EXPECT_EQ(gov.used(ResourcePool::kNetBuffers), 12345);
  gov.SetUsed(ResourcePool::kNetBuffers, 7);
  EXPECT_EQ(gov.used(ResourcePool::kNetBuffers), 7);

  {
    ResourceCharge charge(&gov, ResourcePool::kSealedChunks, 500);
    EXPECT_EQ(gov.used(ResourcePool::kSealedChunks), 500);
    ResourceCharge moved = std::move(charge);
    EXPECT_EQ(moved.bytes(), 500);
    EXPECT_EQ(gov.used(ResourcePool::kSealedChunks), 500);
  }
  EXPECT_EQ(gov.used(ResourcePool::kSealedChunks), 0);
}

TEST(ResourceGovernorTest, PoolAndInsertResultNames) {
  EXPECT_STREQ(ToString(ResourcePool::kDeltaBacklog), "delta_backlog");
  EXPECT_STREQ(ToString(ResourcePool::kSealedChunks), "sealed_chunks");
  EXPECT_STREQ(ToString(ResourcePool::kWalDisk), "wal_disk");
  EXPECT_STREQ(ToString(ResourcePool::kNetBuffers), "net_buffers");
  EXPECT_STREQ(ToString(ResourcePool::kPlanCache), "plan_cache");
  EXPECT_STREQ(durability::ToString(InsertResult::kOk), "ok");
  EXPECT_STREQ(durability::ToString(InsertResult::kResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(durability::ToString(InsertResult::kNotDurable),
               "not-durable");
  EXPECT_STREQ(durability::ToString(InsertResult::kRejected), "rejected");
}

// ---- Ingest backpressure --------------------------------------------------

// Tentpole: bounded backlog under concurrent writers. Four threads hammer
// TryInsert against a tiny delta budget; admitted bytes never exceed the
// budget (beyond the bounded optimistic-charge overshoot a concurrent
// sampler can observe), refusals are typed and retryable, and every row
// eventually lands — with nothing lost or duplicated — once folds drain the
// backlog.
TEST(IngestBackpressureTest, BoundedBacklogUnderConcurrentWriters) {
  Fixture fx(2000);
  ResourceGovernor gov;
  const int64_t row_bytes = 2 * static_cast<int64_t>(sizeof(Value));
  const int64_t budget = 64 * row_bytes;
  gov.SetBudget(ResourcePool::kDeltaBacklog, budget);

  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 16;
  options.governor = &gov;
  IngestStore store(fx.data, fx.workload, options);

  constexpr int kThreads = 4;
  constexpr int kRowsPerThread = 200;
  Dataset expect = fx.data;  // Reference: base + every admitted row.
  std::vector<std::vector<std::vector<Value>>> rows(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kRowsPerThread; ++i) {
      rows[t].push_back(fx.RandomBatch(1)[0]);
      expect.AppendRow(rows[t].back());
    }
  }

  std::atomic<int64_t> rejections{0};
  std::atomic<int64_t> overshoot{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (const auto& row : rows[t]) {
        while (store.TryInsert(row) == InsertAdmit::kResourceExhausted) {
          rejections.fetch_add(1, std::memory_order_relaxed);
          // A sampler may catch other writers' optimistic charges before
          // they back out: the observable bound is budget plus one
          // in-flight row per other thread.
          if (gov.used(ResourcePool::kDeltaBacklog) >
              budget + (kThreads - 1) * row_bytes) {
            overshoot.fetch_add(1, std::memory_order_relaxed);
          }
          // Drain: fold the backlog below budget, then retry.
          store.ForceRoll();
          store.CompactNow();
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();

  // Quiesced: no in-flight charges, so the committed gauge obeys the
  // budget exactly.
  EXPECT_LE(gov.used(ResourcePool::kDeltaBacklog), budget);
  EXPECT_EQ(overshoot.load(), 0);
  // The budget (64 rows) is far below the total (800 rows): backpressure
  // must actually have engaged.
  EXPECT_GT(rejections.load(), 0);
  EXPECT_GT(gov.stats()
                .pools[static_cast<int>(ResourcePool::kDeltaBacklog)]
                .rejections,
            0);

  // Every admitted row is present exactly once.
  store.ForceRoll();
  store.CompactNow();
  EXPECT_EQ(gov.used(ResourcePool::kDeltaBacklog), 0);
  ExpectMatchesReference(store, expect, fx.CheckQueries());
}

// ---- Plan cache byte bounding ---------------------------------------------

TEST(PlanCacheBytesTest, EvictsByBytesAndMirrorsGovernor) {
  Fixture fx(3000);
  FullScanIndex index(fx.data);

  // Size one entry empirically, then budget for about three.
  Query probe = RangeCount(0, 0, 1000);
  PlanCache sizer(/*capacity=*/8);
  ASSERT_NE(sizer.GetOrPrepare(index, probe), nullptr);
  const int64_t one_entry = sizer.stats().bytes;
  ASSERT_GT(one_entry, 0);

  ResourceGovernor gov;
  const int64_t max_bytes = 3 * one_entry + one_entry / 2;
  PlanCache cache(/*capacity=*/64, max_bytes, &gov);
  for (int i = 0; i < 10; ++i) {
    Query q = RangeCount(0, i * 500, i * 500 + 400);
    ASSERT_NE(cache.GetOrPrepare(index, q), nullptr);
    // The byte bound holds after every insert, and the governor's pool
    // gauge tracks the cache's own accounting exactly.
    const PlanCache::Stats stats = cache.stats();
    EXPECT_LE(stats.bytes, max_bytes) << "insert " << i;
    EXPECT_EQ(gov.used(ResourcePool::kPlanCache), stats.bytes);
  }
  const PlanCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);       // Bytes forced eviction...
  EXPECT_LT(stats.size, 10);           // ...well under the entry capacity.
  EXPECT_GE(stats.size, 1);

  // A budget below a single entry still caches exactly the MRU plan
  // (degenerate but never empty, and never over by more than that entry).
  PlanCache tiny(/*capacity=*/64, one_entry / 2, &gov);
  for (int i = 0; i < 4; ++i) {
    Query q = RangeCount(0, i * 500, i * 500 + 400);
    ASSERT_NE(tiny.GetOrPrepare(index, q), nullptr);
    EXPECT_EQ(tiny.stats().size, 1);
  }

  cache.Clear();
  EXPECT_EQ(cache.stats().bytes, 0);
  // After both caches drop their entries the governor pool drains to the
  // tiny cache's single resident plan, then zero on its destruction.
  const int64_t resident = tiny.stats().bytes;
  EXPECT_EQ(gov.used(ResourcePool::kPlanCache), resident);
}

TEST(PlanCacheBytesTest, EstimateScalesWithPlanSize) {
  Fixture fx(3000);
  FullScanIndex index(fx.data);
  const QueryPlan narrow = index.Prepare(RangeCount(0, 0, 10));
  QueryPlan wide = narrow;
  wide.tasks.resize(wide.tasks.size() + 512);
  EXPECT_GT(PlanCache::EstimatePlanBytes(wide),
            PlanCache::EstimatePlanBytes(narrow) +
                static_cast<int64_t>(512 * sizeof(RangeTask)) - 1);
}

// ---- WAL segment-size rotation --------------------------------------------

// Durability follow-on (b): the active segment rotates once it exceeds
// max_segment_bytes — without a manifest write per rotation — and recovery
// forward-scans past the manifest's active_segment to replay them all.
TEST(SegmentRotationTest, SizeRotationThenForwardScanRecovery) {
  const std::string dir = TestDir("size_rotation");
  Fixture fx(1500);
  Dataset expect = fx.data;

  DurabilityOptions options;
  options.dir = dir;
  options.ingest = SmallIngestOptions();
  options.max_segment_bytes = 512;    // A few batches per segment.
  options.checkpoint_on_fold = false;  // No checkpoints: rotation only.
  int64_t inserted = 0;
  {
    std::unique_ptr<DurableIngestStore> store =
        DurableIngestStore::Open(fx.data, fx.workload, options);
    ASSERT_NE(store, nullptr);
    for (int i = 0; i < 40; ++i) {
      const auto batch = fx.RandomBatch(8);
      for (const auto& row : batch) expect.AppendRow(row);
      ASSERT_EQ(store->TryInsertBatch(batch), InsertResult::kOk);
      inserted += static_cast<int64_t>(batch.size());
    }
    const DurableIngestStore::Stats stats = store->stats();
    EXPECT_GT(stats.size_rotations, 2);
    EXPECT_EQ(stats.rows_logged, inserted);

    // Rotation left multiple live segments on disk...
    int segments = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().filename().string().rfind("wal-", 0) == 0) {
        ++segments;
      }
    }
    EXPECT_GE(segments, 3);
  }

  // ...and recovery replays every one of them, past the stale manifest.
  std::unique_ptr<DurableIngestStore> reopened =
      DurableIngestStore::Open(fx.data, fx.workload, options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_TRUE(reopened->recovery().recovered);
  EXPECT_EQ(reopened->recovery().replayed_rows, inserted);
  EXPECT_GT(reopened->recovery().segments_read, 2);
  ExpectMatchesReference(reopened->store(), expect, fx.CheckQueries());
}

// Governed WAL-disk budget: once segment bytes exceed the budget, inserts
// are refused pre-admission (typed, nothing applied) and admission resumes
// after a checkpoint deletes covered segments.
TEST(SegmentRotationTest, WalDiskBudgetRefusesThenCheckpointFrees) {
  const std::string dir = TestDir("wal_budget");
  Fixture fx(1500);
  Dataset expect = fx.data;

  ResourceGovernor gov;
  gov.SetBudget(ResourcePool::kWalDisk, 4096);
  DurabilityOptions options;
  options.dir = dir;
  options.ingest = SmallIngestOptions();
  options.ingest.governor = &gov;
  options.max_segment_bytes = 1024;
  std::unique_ptr<DurableIngestStore> store =
      DurableIngestStore::Open(fx.data, fx.workload, options);
  ASSERT_NE(store, nullptr);

  // Fill until the budget refuses.
  int64_t refusals = 0;
  for (int i = 0; i < 200 && refusals == 0; ++i) {
    const auto batch = fx.RandomBatch(8);
    const InsertResult r = store->TryInsertBatch(batch);
    if (r == InsertResult::kOk) {
      for (const auto& row : batch) expect.AppendRow(row);
    } else {
      ASSERT_EQ(r, InsertResult::kResourceExhausted);
      ++refusals;
    }
  }
  ASSERT_GT(refusals, 0);
  EXPECT_GT(store->stats().resource_rejections, 0);
  EXPECT_LE(gov.used(ResourcePool::kWalDisk), 4096);

  // A checkpoint covers the logged rows, deletes their segments, and
  // releases the budget: the same insert now succeeds.
  ASSERT_TRUE(store->CheckpointNow());
  const auto batch = fx.RandomBatch(8);
  ASSERT_EQ(store->TryInsertBatch(batch), InsertResult::kOk);
  for (const auto& row : batch) expect.AppendRow(row);
  ExpectMatchesReference(store->store(), expect, fx.CheckQueries());
}

// ---- Group-commit latency shaping -----------------------------------------

// Durability follow-on (d): max_commit_delay_micros holds the committer
// back so concurrent acks coalesce into fewer fsyncs. Correctness is
// unchanged — every ack still means fsync'd.
TEST(CommitDelayTest, DelayCoalescesGroupsAndStillAcks) {
  const std::string dir = TestDir("commit_delay");
  Fixture fx(1000);
  Dataset expect = fx.data;

  DurabilityOptions options;
  options.dir = dir;
  options.ingest = SmallIngestOptions();
  options.wal_commit_delay_micros = 2000;
  std::unique_ptr<DurableIngestStore> store =
      DurableIngestStore::Open(fx.data, fx.workload, options);
  ASSERT_NE(store, nullptr);

  constexpr int kThreads = 4;
  constexpr int kBatches = 25;
  std::vector<std::vector<std::vector<std::vector<Value>>>> rows(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kBatches; ++i) {
      rows[t].push_back(fx.RandomBatch(4));
      for (const auto& row : rows[t].back()) expect.AppendRow(row);
    }
  }
  std::atomic<int64_t> acked{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (const auto& batch : rows[t]) {
        if (store->TryInsertBatch(batch) == InsertResult::kOk) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  ASSERT_EQ(acked.load(), kThreads * kBatches);

  const DurableIngestStore::Stats stats = store->stats();
  // The committer waited at least once, and the shaped groups kept every
  // ack truthful.
  EXPECT_GT(stats.wal.delayed_commits, 0);
  EXPECT_EQ(stats.durable_acks, kThreads * kBatches);
  EXPECT_LE(stats.wal.group_commits, stats.wal.appends);
  ExpectMatchesReference(store->store(), expect, fx.CheckQueries());
}

#if defined(TSUNAMI_FAULT_INJECTION)

// ---- Injected budget pressure ---------------------------------------------

TEST(ResourceGovernorFaultTest, MemPressureInjectsRejection) {
  fault::DisarmAll();
  ResourceGovernor gov;
  gov.SetBudget(ResourcePool::kDeltaBacklog, 1 << 20);

  fault::FaultSpec spec;
  spec.match_arg = static_cast<int64_t>(ResourcePool::kDeltaBacklog);
  fault::Arm("gov.mem_pressure", spec);
  // Far under budget, but the armed site rejects — and backs the charge
  // out, so usage stays zero.
  EXPECT_FALSE(gov.TryCharge(ResourcePool::kDeltaBacklog, 8));
  EXPECT_EQ(gov.used(ResourcePool::kDeltaBacklog), 0);
  // Other pools are unaffected (match_arg filters by pool index).
  EXPECT_TRUE(gov.TryCharge(ResourcePool::kSealedChunks, 8));
  fault::DisarmAll();
  EXPECT_TRUE(gov.TryCharge(ResourcePool::kDeltaBacklog, 8));
  EXPECT_EQ(
      gov.stats().pools[static_cast<int>(ResourcePool::kDeltaBacklog)]
          .rejections,
      1);
}

// ---- The ENOSPC sweep ------------------------------------------------------

// fs.enospc armed at the WAL write / WAL fsync call sites: the ack fails
// closed (never a lying ack), the store latches the *recoverable* disk-full
// state, reads keep serving, and the next insert re-arms through a
// checkpoint drain and succeeds. After a restart the recovered store is
// bit-identical to a reference holding every applied row.
TEST(EnospcSweepTest, WalWriteAndFsyncLatchThenRearm) {
  for (const int64_t site :
       {durability::kEnospcWalWrite, durability::kEnospcWalFsync}) {
    SCOPED_TRACE(site == durability::kEnospcWalWrite ? "wal.write"
                                                     : "wal.fsync");
    fault::DisarmAll();
    const std::string dir =
        TestDir("enospc_wal_" + std::to_string(site));
    Fixture fx(1200);
    Dataset expect = fx.data;

    DurabilityOptions options;
    options.dir = dir;
    options.ingest = SmallIngestOptions();
    options.rearm_backoff_millis = 0;  // Deterministic single-call re-arm.
    {
      std::unique_ptr<DurableIngestStore> store =
          DurableIngestStore::Open(fx.data, fx.workload, options);
      ASSERT_NE(store, nullptr);

      const auto batch_a = fx.RandomBatch(6);
      for (const auto& row : batch_a) expect.AppendRow(row);
      ASSERT_EQ(store->TryInsertBatch(batch_a), InsertResult::kOk);

      // One injected ENOSPC at this site; the disk then "frees".
      fault::FaultSpec spec;
      spec.match_arg = site;
      spec.max_fires = 1;
      fault::Arm("fs.enospc", spec);

      // The hit batch is applied in memory but its ack fails closed.
      const auto batch_b = fx.RandomBatch(6);
      for (const auto& row : batch_b) expect.AppendRow(row);
      ASSERT_EQ(store->TryInsertBatch(batch_b), InsertResult::kNotDurable);
      EXPECT_TRUE(store->enospc_latched());
      EXPECT_EQ(store->stats().enospc_latches, 1);
      EXPECT_EQ(store->stats().failed_acks, 1);

      // Reads keep serving the full in-memory state while latched.
      ExpectMatchesReference(store->store(), expect, fx.CheckQueries());

      // The next insert drives the re-arm: checkpoint drain covers every
      // assigned ordinal, a fresh segment opens, and the batch lands
      // durably.
      const auto batch_c = fx.RandomBatch(6);
      for (const auto& row : batch_c) expect.AppendRow(row);
      ASSERT_EQ(store->TryInsertBatch(batch_c), InsertResult::kOk);
      EXPECT_FALSE(store->enospc_latched());
      EXPECT_EQ(store->stats().rearms, 1);
      ExpectMatchesReference(store->store(), expect, fx.CheckQueries());
    }

    // Restart: everything applied before the crash — including the
    // never-acked batch the drain checkpointed — recovers bit-identically.
    fault::DisarmAll();
    std::unique_ptr<DurableIngestStore> reopened =
        DurableIngestStore::Open(fx.data, fx.workload, options);
    ASSERT_NE(reopened, nullptr);
    EXPECT_TRUE(reopened->recovery().recovered);
    ExpectMatchesReference(reopened->store(), expect, fx.CheckQueries());
  }
}

// fs.enospc at the checkpoint-rename site, firing once: the RESERVE file
// is dropped and the rename retried, so the checkpoint completes even on a
// "full" disk.
TEST(EnospcSweepTest, CheckpointRenameSpendsReserveAndCompletes) {
  fault::DisarmAll();
  const std::string dir = TestDir("enospc_rename_reserve");
  Fixture fx(1200);
  Dataset expect = fx.data;

  DurabilityOptions options;
  options.dir = dir;
  options.ingest = SmallIngestOptions();
  std::unique_ptr<DurableIngestStore> store =
      DurableIngestStore::Open(fx.data, fx.workload, options);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(std::filesystem::exists(dir + "/RESERVE"));

  const auto batch = fx.RandomBatch(10);
  for (const auto& row : batch) expect.AppendRow(row);
  ASSERT_EQ(store->TryInsertBatch(batch), InsertResult::kOk);

  fault::FaultSpec spec;
  spec.match_arg = durability::kEnospcCheckpointRename;
  spec.max_fires = 1;
  fault::Arm("fs.enospc", spec);
  EXPECT_TRUE(store->CheckpointNow());
  fault::DisarmAll();

  const DurableIngestStore::Stats stats = store->stats();
  EXPECT_GE(stats.checkpoints, 1);
  EXPECT_GE(stats.reserve_drops, 1);
  EXPECT_EQ(stats.checkpoint_failures, 0);
  // The reserve is re-created once the checkpoint lands.
  EXPECT_TRUE(std::filesystem::exists(dir + "/RESERVE"));
  ExpectMatchesReference(store->store(), expect, fx.CheckQueries());
}

// fs.enospc held armed at the checkpoint-rename and manifest-write sites:
// checkpoints fail (and are swallowed — the WAL retains everything), reads
// and durable inserts keep working, and once space frees the next
// checkpoint lands and a restart recovers bit-identically.
TEST(EnospcSweepTest, CheckpointAndManifestSitesFailOpenThenRecover) {
  for (const int64_t site : {durability::kEnospcCheckpointRename,
                             durability::kEnospcManifestWrite}) {
    SCOPED_TRACE(site == durability::kEnospcCheckpointRename
                     ? "checkpoint.rename"
                     : "manifest.write");
    fault::DisarmAll();
    const std::string dir =
        TestDir("enospc_ckpt_" + std::to_string(site));
    Fixture fx(1200);
    Dataset expect = fx.data;

    DurabilityOptions options;
    options.dir = dir;
    options.ingest = SmallIngestOptions();
    {
      std::unique_ptr<DurableIngestStore> store =
          DurableIngestStore::Open(fx.data, fx.workload, options);
      ASSERT_NE(store, nullptr);

      const auto batch_a = fx.RandomBatch(8);
      for (const auto& row : batch_a) expect.AppendRow(row);
      ASSERT_EQ(store->TryInsertBatch(batch_a), InsertResult::kOk);

      fault::FaultSpec spec;
      spec.match_arg = site;
      fault::Arm("fs.enospc", spec);  // Unlimited: retries fail too.

      EXPECT_FALSE(store->CheckpointNow());
      EXPECT_GE(store->stats().checkpoint_failures, 1);

      // The WAL is untouched by checkpoint failures: durable inserts and
      // reads both keep working.
      const auto batch_b = fx.RandomBatch(8);
      for (const auto& row : batch_b) expect.AppendRow(row);
      ASSERT_EQ(store->TryInsertBatch(batch_b), InsertResult::kOk);
      ExpectMatchesReference(store->store(), expect, fx.CheckQueries());

      // Space frees: the next checkpoint completes.
      fault::DisarmAll();
      EXPECT_TRUE(store->CheckpointNow());
    }

    std::unique_ptr<DurableIngestStore> reopened =
        DurableIngestStore::Open(fx.data, fx.workload, options);
    ASSERT_NE(reopened, nullptr);
    EXPECT_TRUE(reopened->recovery().recovered);
    ExpectMatchesReference(reopened->store(), expect, fx.CheckQueries());
  }
}

// ---- Scrubber --------------------------------------------------------------

// The scrubber finds a rotted block *before any query touches it* and
// feeds it through quarantine-and-repair: after the sweep the store serves
// full-fidelity answers from a healed published copy.
TEST(ScrubberTest, FindsRotBeforeFirstTouchAndRepairs) {
  fault::DisarmAll();
  // Base rows entirely below dim0 <= 10000 and inserts far above, so the
  // folded store's tail blocks are wholly insert-origin — the blocks
  // RepairQuarantined can re-materialize from the fold backup.
  Rng rng(61);
  Dataset data(2, {});
  for (int i = 0; i < 5000; ++i) {
    data.AppendRow({rng.UniformValue(0, 10000), rng.UniformValue(0, 500)});
  }
  Workload workload;
  for (int i = 0; i < 12; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 9000);
    q.filters.push_back(Predicate{0, lo, lo + 800});
    workload.push_back(q);
  }
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 512;
  IngestStore store(data, workload, options);
  std::vector<std::vector<Value>> inserts;
  for (int i = 0; i < 2500; ++i) {
    inserts.push_back(
        {rng.UniformValue(100000, 110000), rng.UniformValue(0, 500)});
  }
  store.InsertBatch(inserts);
  store.ForceRoll();
  ASSERT_GT(store.CompactNow(), 1u);

  // Pick a wholly-insert-origin block to "rot".
  const ColumnStore& cur = store.store();
  int64_t rot_block = -1;
  for (int64_t b = 0; b * kScanBlockRows < cur.size(); ++b) {
    const int64_t lo = b * kScanBlockRows;
    const int64_t hi = std::min(cur.size(), lo + kScanBlockRows);
    bool all_delta = true;
    for (int64_t r = lo; r < hi && all_delta; ++r) {
      all_delta = cur.Get(r, 0) >= 100000;
    }
    if (all_delta) {
      rot_block = b;
      break;
    }
  }
  ASSERT_GE(rot_block, 0);

  Query over_new;
  over_new.filters.push_back(Predicate{0, 100000, 110000});
  over_new.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
  const QueryResult want = store.Execute(over_new);
  ASSERT_EQ(want.matched, 2500);
  ASSERT_FALSE(want.degraded);

  fault::FaultSpec spec;
  spec.match_arg = rot_block;
  spec.max_fires = 1;
  fault::Arm("scrub.corrupt_block", spec);

  // Sweep synchronously (no thread, no queries in between): the scrubber
  // must be the first thing to touch the rotted block.
  Scrubber::Stats found;
  {
    ScrubberOptions sopts;
    sopts.blocks_per_slice = int64_t{1} << 30;  // Whole store per slice.
    Scrubber scrubber(&store, sopts);
    while (scrubber.stats().sweeps == 0) {
      ASSERT_GT(scrubber.ScrubSlice(), 0);
    }
    found = scrubber.stats();
  }
  fault::DisarmAll();
  EXPECT_EQ(found.corruptions_found, 1);
  EXPECT_GE(found.blocks_repaired, 1);
  EXPECT_GE(store.stats().repairs_published, 1);

  // The healed published copy serves full-fidelity answers — no degraded
  // flag, nothing quarantined, bit-identical to the pre-rot result.
  const QueryResult healed = store.Execute(over_new);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.agg, want.agg);
  EXPECT_EQ(healed.matched, want.matched);
  EXPECT_EQ(store.store().QuarantinedBlocks(), 0);
}

// With repair disabled the scrubber still quarantines — scans skip the
// block and flag results degraded, exactly as if a query had tripped the
// checksum — and a manual RepairQuarantined heals it.
TEST(ScrubberTest, QuarantineOnlyModeFlagsDegradedUntilRepaired) {
  fault::DisarmAll();
  Rng rng(67);
  Dataset data(2, {});
  for (int i = 0; i < 4000; ++i) {
    data.AppendRow({rng.UniformValue(0, 10000), rng.UniformValue(0, 500)});
  }
  Workload workload;
  for (int i = 0; i < 8; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 9000);
    q.filters.push_back(Predicate{0, lo, lo + 800});
    workload.push_back(q);
  }
  IngestOptions options = SmallIngestOptions();
  options.chunk_capacity = 512;
  IngestStore store(data, workload, options);
  std::vector<std::vector<Value>> inserts;
  for (int i = 0; i < 2000; ++i) {
    inserts.push_back(
        {rng.UniformValue(100000, 110000), rng.UniformValue(0, 500)});
  }
  store.InsertBatch(inserts);
  store.ForceRoll();
  ASSERT_GT(store.CompactNow(), 1u);

  const ColumnStore& cur = store.store();
  int64_t rot_block = -1;
  for (int64_t b = 0; b * kScanBlockRows < cur.size(); ++b) {
    const int64_t lo = b * kScanBlockRows;
    const int64_t hi = std::min(cur.size(), lo + kScanBlockRows);
    bool all_delta = true;
    for (int64_t r = lo; r < hi && all_delta; ++r) {
      all_delta = cur.Get(r, 0) >= 100000;
    }
    if (all_delta) {
      rot_block = b;
      break;
    }
  }
  ASSERT_GE(rot_block, 0);

  Query over_new;
  over_new.filters.push_back(Predicate{0, 100000, 110000});
  over_new.SetAggregates({{AggKind::kCount, 0}});
  const QueryResult want = store.Execute(over_new);
  ASSERT_EQ(want.matched, 2000);

  fault::FaultSpec spec;
  spec.match_arg = rot_block;
  spec.max_fires = 1;
  fault::Arm("scrub.corrupt_block", spec);
  ScrubberOptions sopts;
  sopts.blocks_per_slice = int64_t{1} << 30;
  sopts.repair = false;
  Scrubber scrubber(&store, sopts);
  while (scrubber.stats().sweeps == 0) {
    ASSERT_GT(scrubber.ScrubSlice(), 0);
  }
  fault::DisarmAll();

  EXPECT_EQ(scrubber.stats().corruptions_found, 1);
  EXPECT_EQ(scrubber.stats().blocks_repaired, 0);
  EXPECT_GE(store.store().QuarantinedBlocks(), 1);
  const QueryResult degraded = store.Execute(over_new);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_LT(degraded.matched, want.matched);

  EXPECT_GE(store.RepairQuarantined(), 1);
  const QueryResult healed = store.Execute(over_new);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.matched, want.matched);
}

#endif  // TSUNAMI_FAULT_INJECTION

}  // namespace
}  // namespace tsunami
