// Tests for access-path routing (src/query/router.*): calibration must
// learn that needle lookups belong on the secondary index and wide range
// scans on the clustered index, routing must stay correct, and degenerate
// inputs must not crash.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/baselines/single_dim.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/query/engine.h"
#include "src/query/router.h"
#include "src/secondary/secondary_index.h"

namespace tsunami {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2020);
    data_ = Dataset(3, {});
    constexpr int64_t kRows = 120000;
    data_.Reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      Value order = i;  // Densely increasing order key.
      Value date = i / 40 + rng.UniformValue(-3, 3);
      data_.AppendRow({date, order, rng.UniformValue(0, 999)});
    }
    // Two query types: point lookups on the order key (secondary-index
    // territory: ~1 row out of 120k) and wide date-range scans (clustered
    // territory).
    for (int i = 0; i < 60; ++i) {
      Query needle;
      Value k = rng.UniformValue(0, kRows - 1);
      needle.filters = {Predicate{1, k, k}};
      calibration_.push_back(needle);

      Query range;
      Value lo = rng.UniformValue(0, 2400);
      range.filters = {Predicate{0, lo, lo + 500}};
      calibration_.push_back(range);
    }
    clustered_ = std::make_unique<SingleDimIndex>(data_, calibration_,
                                                  /*forced_sort_dim=*/0);
    secondary_ = std::make_unique<SortedSecondaryIndex>(data_, /*host_dim=*/0,
                                                        /*key_dim=*/1);
  }

  Dataset data_;
  Workload calibration_;
  std::unique_ptr<SingleDimIndex> clustered_;
  std::unique_ptr<SortedSecondaryIndex> secondary_;
};

TEST_F(RouterTest, RoutesNeedlesToSecondaryAndRangesToClustered) {
  AccessPathRouter router({clustered_.get(), secondary_.get()}, data_,
                          calibration_);
  EXPECT_GE(router.num_types(), 2);

  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    Query needle;
    Value k = rng.UniformValue(0, data_.size() - 1);
    needle.filters = {Predicate{1, k, k}};
    EXPECT_EQ(router.Route(needle).Name(), secondary_->Name()) << i;

    Query range;
    Value lo = rng.UniformValue(0, 2400);
    range.filters = {Predicate{0, lo, lo + 500}};
    EXPECT_EQ(router.Route(range).Name(), clustered_->Name()) << i;
  }
}

TEST_F(RouterTest, ExecuteMatchesFullScan) {
  AccessPathRouter router({clustered_.get(), secondary_.get()}, data_,
                          calibration_);
  FullScanIndex full(data_);
  for (size_t i = 0; i < calibration_.size(); i += 9) {
    QueryResult got = router.Execute(calibration_[i]);
    QueryResult want = full.Execute(calibration_[i]);
    ASSERT_EQ(got.matched, want.matched) << i;
    ASSERT_EQ(got.agg, want.agg) << i;
  }
}

TEST_F(RouterTest, UnseenSignatureFallsBack) {
  AccessPathRouter router({clustered_.get(), secondary_.get()}, data_,
                          calibration_);
  // Dimension 2 never appears in calibration.
  Query unseen;
  unseen.filters = {Predicate{2, 100, 200}};
  const MultiDimIndex& choice = router.Route(unseen);
  FullScanIndex full(data_);
  EXPECT_EQ(choice.Execute(unseen).matched, full.Execute(unseen).matched);
}

TEST_F(RouterTest, DescribeListsTypesAndWinners) {
  AccessPathRouter router({clustered_.get(), secondary_.get()}, data_,
                          calibration_);
  std::string table = router.Describe();
  EXPECT_NE(table.find(clustered_->Name()), std::string::npos);
  EXPECT_NE(table.find(secondary_->Name()), std::string::npos);
  EXPECT_NE(table.find("fallback"), std::string::npos);
}

TEST_F(RouterTest, EmptyCalibrationRoutesToFirstIndex) {
  AccessPathRouter router({clustered_.get(), secondary_.get()}, data_, {});
  Query q;
  q.filters = {Predicate{0, 0, 100}};
  EXPECT_EQ(router.Route(q).Name(), clustered_->Name());
  EXPECT_EQ(router.num_types(), 0);
}

TEST_F(RouterTest, SingleIndexAlwaysWins) {
  AccessPathRouter router({clustered_.get()}, data_, calibration_);
  for (const Query& q : calibration_) {
    EXPECT_EQ(&router.Route(q), clustered_.get());
  }
}

TEST_F(RouterTest, ComposesAsMultiDimIndexBehindSqlEngine) {
  AccessPathRouter router({clustered_.get(), secondary_.get()}, data_,
                          calibration_);
  TableSchema schema;
  schema.table_name = "orders";
  schema.columns = {"order_date", "order_id", "amount"};
  QueryEngine engine(&router, schema);
  SqlResult point =
      engine.Run("SELECT COUNT(*) FROM orders WHERE order_id = 777");
  ASSERT_TRUE(point.ok) << point.error;
  EXPECT_EQ(point.value, 1);
  // Disjunctive statements route each disjoint box independently.
  SqlResult either = engine.Run(
      "SELECT COUNT(*) FROM orders WHERE order_id = 777 OR order_id = 778");
  ASSERT_TRUE(either.ok) << either.error;
  EXPECT_EQ(either.value, 2);
  EXPECT_GT(router.IndexSizeBytes(), 0);
}

}  // namespace
}  // namespace tsunami
