// Cross-checks for the vectorized block-based scan kernel: the vectorized,
// SIMD (every compiled tier), and scalar paths must agree bit-for-bit on
// every QueryResult field, for every aggregate, range shape (empty / exact
// / ragged block edges / sub-SIMD-width tails), filter count, and through
// the batched multi-range executor and the grid's outlier buffer.
#include <numeric>

#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/core/augmented_grid.h"
#include "src/exec/runner.h"
#include "src/exec/thread_pool.h"
#include "src/storage/column_store.h"
#include "src/storage/scan_kernel.h"
#include "src/storage/scan_kernel_simd.h"
#include "src/storage/simd_dispatch.h"

namespace tsunami {
namespace {

constexpr AggKind kAggs[] = {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                             AggKind::kMax, AggKind::kAvg};

// Random multi-dimensional data; `clustered` sorts by dim 0 so zone maps
// actually prune (the layout every clustering index produces).
Dataset MakeData(int64_t rows, int dims, bool clustered, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dims, {});
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row(dims);
    for (int d = 0; d < dims; ++d) row[d] = rng.UniformValue(-5000, 5000);
    data.AppendRow(row);
  }
  if (clustered) {
    std::vector<Value>& raw = data.raw();
    std::vector<int64_t> order(rows);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return raw[a * dims] < raw[b * dims];
    });
    Dataset sorted(dims, {});
    for (int64_t i : order) {
      std::vector<Value> row(dims);
      for (int d = 0; d < dims; ++d) row[d] = data.at(i, d);
      sorted.AppendRow(row);
    }
    return sorted;
  }
  return data;
}

Query RandomQuery(Rng* rng, int dims, int num_filters, AggKind agg) {
  Query q;
  q.agg = agg;
  q.agg_dim = static_cast<int>(rng->NextBelow(dims));
  for (int f = 0; f < num_filters; ++f) {
    int dim = static_cast<int>(rng->NextBelow(dims));
    Value lo = rng->UniformValue(-6000, 6000);
    // Mix narrow, wide, and occasionally empty/equality ranges.
    Value width = rng->NextBelow(4) == 0 ? rng->UniformValue(0, 100)
                                         : rng->UniformValue(0, 8000);
    q.filters.push_back(Predicate{dim, lo, lo + width});
  }
  return q;
}

void ExpectSameResult(const QueryResult& vec, const QueryResult& scalar,
                      const char* what) {
  EXPECT_EQ(vec.agg, scalar.agg) << what;
  EXPECT_EQ(vec.scanned, scalar.scanned) << what;
  EXPECT_EQ(vec.matched, scalar.matched) << what;
  EXPECT_EQ(vec.cell_ranges, scalar.cell_ranges) << what;
}

TEST(ScanKernelTest, RandomizedCrossCheckAgainstScalar) {
  for (ScanMode mode : {ScanMode::kVectorized, ScanMode::kSimd}) {
    for (bool clustered : {false, true}) {
      Dataset data = MakeData(20000, 4, clustered, 901);
      ColumnStore store(data);
      Rng rng(902);
      for (int trial = 0; trial < 400; ++trial) {
        AggKind agg = kAggs[trial % 5];
        int num_filters = 1 + static_cast<int>(rng.NextBelow(8));
        Query q = RandomQuery(&rng, 4, num_filters, agg);
        // Ranges with ragged block edges, empty ranges, and full scans.
        int64_t begin = rng.UniformValue(0, store.size());
        int64_t end = rng.UniformValue(begin, store.size());
        if (trial % 17 == 0) end = begin;       // Empty.
        if (trial % 23 == 0) {                  // Full store.
          begin = 0;
          end = store.size();
        }
        QueryResult vec = InitResult(q), scalar = InitResult(q);
        store.ScanRange(begin, end, q, /*exact=*/false, &vec,
                        ScanOptions{mode});
        store.ScanRange(begin, end, q, /*exact=*/false, &scalar,
                        ScanOptions{ScanOptions::kScalar});
        ExpectSameResult(vec, scalar, clustered ? "clustered" : "random");
      }
    }
  }
}

// Every SIMD tier (including forced-but-unsupported ones, which must fall
// back to the scalar ops) agrees bit-for-bit with the scalar kernel on
// adversarial range shapes: begin/end straddling block boundaries, tails
// shorter than one SIMD width, empty-filter queries, no-match filters, and
// all-match blocks.
TEST(ScanKernelTest, SimdTiersBitForBitOnUnalignedRanges) {
  const SimdTier kTiers[] = {SimdTier::kAuto, SimdTier::kNone,
                             SimdTier::kNeon, SimdTier::kAvx2,
                             SimdTier::kAvx512};
  for (bool clustered : {false, true}) {
    Dataset data = MakeData(3 * kScanBlockRows + 117, 3, clustered, 921);
    ColumnStore store(data);
    // Hand-picked range shapes around the block/SIMD seams.
    std::vector<std::pair<int64_t, int64_t>> ranges;
    for (int64_t edge : {kScanBlockRows, 2 * kScanBlockRows}) {
      for (int64_t d : {1, 2, 3, 5, 7, 9, 15, 17}) {
        ranges.push_back({edge - d, edge + d});  // Straddles the boundary.
        ranges.push_back({edge, edge + d});      // Tail shorter than SIMD.
        ranges.push_back({edge - d, edge});
      }
    }
    ranges.push_back({0, store.size()});
    ranges.push_back({3, 4});
    // Filter shapes: normal, no-match, all-match, and no filters at all.
    std::vector<std::vector<Predicate>> filter_sets = {
        {Predicate{0, -2000, 2000}, Predicate{1, 0, 5000}},
        {Predicate{2, 99999, 99999}},                       // Matches nothing.
        {Predicate{0, -5000, 5000}, Predicate{1, -5000, 5000}},  // All match.
        {},                                                 // No filters.
    };
    for (SimdTier tier : kTiers) {
      ScanOptions options;
      options.mode = ScanMode::kSimd;
      options.tier = tier;
      for (const auto& filters : filter_sets) {
        for (const auto& [begin, end] : ranges) {
          for (AggKind agg : kAggs) {
            Query q;
            q.agg = agg;
            q.agg_dim = 2;
            q.filters = filters;
            QueryResult simd = InitResult(q), scalar = InitResult(q);
            store.ScanRange(begin, end, q, /*exact=*/false, &simd, options);
            store.ScanRange(begin, end, q, /*exact=*/false, &scalar,
                            ScanOptions{ScanOptions::kScalar});
            ExpectSameResult(simd, scalar, SimdTierName(tier));
          }
        }
      }
    }
  }
}

// Ops-table-level cross-check: every available tier's inner loops agree
// with the scalar table on random inputs at every length around the SIMD
// widths (0/1/.../17, 63, 64, 100, 1024), including empty and all-match
// selections.
TEST(ScanKernelTest, SimdOpsMatchScalarOpsAtEveryLength) {
  const SimdOps& ref = ScalarSimdOps();
  Rng rng(922);
  for (SimdTier tier :
       {SimdTier::kNeon, SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (!SimdTierSupported(tier)) continue;
    const SimdOps& ops = OpsForTier(tier);
    for (int n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 100, 1024}) {
      std::vector<Value> col(n);
      for (Value& v : col) v = rng.UniformValue(-1000, 1000);
      for (auto [lo, hi] : std::initializer_list<std::pair<Value, Value>>{
               {-300, 300}, {2000, 3000}, {-1000, 1000}, {5, 5}}) {
        std::vector<uint32_t> got(n);
        std::vector<uint32_t> want(n);
        int got_n = ops.first_pass(col.data(), n, lo, hi, got.data());
        int want_n = ref.first_pass(col.data(), n, lo, hi, want.data());
        ASSERT_EQ(got_n, want_n) << ops.name << " n=" << n;
        for (int i = 0; i < got_n; ++i) {
          EXPECT_EQ(got[i], want[i]) << ops.name << " n=" << n;
        }
        // Refine the survivors by a second predicate over the same column.
        std::vector<uint32_t> got2(got.begin(), got.end());
        std::vector<uint32_t> want2(want.begin(), want.end());
        int got2_n = ops.refine_pass(col.data(), got2.data(), got_n, -100, 150);
        int want2_n =
            ref.refine_pass(col.data(), want2.data(), want_n, -100, 150);
        ASSERT_EQ(got2_n, want2_n) << ops.name << " n=" << n;
        for (int i = 0; i < got2_n; ++i) {
          EXPECT_EQ(got2[i], want2[i]) << ops.name << " n=" << n;
        }
        EXPECT_EQ(ops.sum_gather(col.data(), got.data(), got_n),
                  ref.sum_gather(col.data(), want.data(), want_n));
        if (got_n > 0) {
          EXPECT_EQ(ops.min_gather(col.data(), got.data(), got_n),
                    ref.min_gather(col.data(), want.data(), want_n));
          EXPECT_EQ(ops.max_gather(col.data(), got.data(), got_n),
                    ref.max_gather(col.data(), want.data(), want_n));
        }
      }
      EXPECT_EQ(ops.sum_range(col.data(), n), ref.sum_range(col.data(), n))
          << ops.name << " n=" << n;
      if (n > 0) {
        EXPECT_EQ(ops.min_range(col.data(), n), ref.min_range(col.data(), n));
        EXPECT_EQ(ops.max_range(col.data(), n), ref.max_range(col.data(), n));
        Value mn_got, mx_got, mn_want, mx_want;
        int64_t s_got, s_want;
        ops.block_stats(col.data(), n, &mn_got, &mx_got, &s_got);
        ref.block_stats(col.data(), n, &mn_want, &mx_want, &s_want);
        EXPECT_EQ(mn_got, mn_want) << ops.name << " n=" << n;
        EXPECT_EQ(mx_got, mx_want) << ops.name << " n=" << n;
        EXPECT_EQ(s_got, s_want) << ops.name << " n=" << n;
      }
    }
  }
}

TEST(ScanKernelTest, DispatchResolvesToSupportedTier) {
  SimdTier best = DetectSimdTier();
  EXPECT_TRUE(SimdTierSupported(best)) << SimdTierName(best);
  EXPECT_EQ(&OpsForTier(SimdTier::kAuto), &OpsForTier(best));
  EXPECT_EQ(&OpsForTier(SimdTier::kNone), &ScalarSimdOps());
#if defined(TSUNAMI_DISABLE_SIMD)
  // The portable configuration must never dispatch off the scalar table.
  EXPECT_EQ(best, SimdTier::kNone);
#endif
}

TEST(ScanKernelTest, ExactRangesCrossCheck) {
  Dataset data = MakeData(10000, 3, /*clustered=*/true, 903);
  ColumnStore store(data);
  Rng rng(904);
  for (int trial = 0; trial < 200; ++trial) {
    Query q;
    q.agg = kAggs[trial % 5];
    q.agg_dim = static_cast<int>(rng.NextBelow(3));
    int64_t begin = rng.UniformValue(0, store.size());
    int64_t end = rng.UniformValue(begin, store.size());
    QueryResult vec = InitResult(q), scalar = InitResult(q);
    store.ScanRange(begin, end, q, /*exact=*/true, &vec,
                    ScanOptions{ScanOptions::kVectorized});
    store.ScanRange(begin, end, q, /*exact=*/true, &scalar,
                    ScanOptions{ScanOptions::kScalar});
    ExpectSameResult(vec, scalar, "exact");
  }
}

TEST(ScanKernelTest, ExactSumUsesZoneMapSums) {
  // Beyond agreeing with the scalar path, the exact-range SUM must equal a
  // directly computed sum — block sums included.
  Dataset data = MakeData(5000, 2, /*clustered=*/false, 905);
  ColumnStore store(data);
  Rng rng(906);
  for (int trial = 0; trial < 50; ++trial) {
    int64_t begin = rng.UniformValue(0, store.size());
    int64_t end = rng.UniformValue(begin, store.size());
    Query q;
    q.agg = AggKind::kSum;
    q.agg_dim = 1;
    int64_t expected = 0;
    for (int64_t r = begin; r < end; ++r) expected += data.at(r, 1);
    QueryResult vec;
    store.ScanRange(begin, end, q, /*exact=*/true, &vec);
    EXPECT_EQ(vec.agg, expected);
    EXPECT_EQ(vec.matched, end - begin);
  }
}

TEST(ScanKernelTest, BatchMatchesSequentialScans) {
  Dataset data = MakeData(30000, 3, /*clustered=*/true, 907);
  ColumnStore store(data);
  Rng rng(908);
  for (int trial = 0; trial < 60; ++trial) {
    Query q = RandomQuery(&rng, 3, 2, kAggs[trial % 5]);
    std::vector<RangeTask> tasks;
    int64_t cursor = 0;
    while (cursor < store.size()) {
      int64_t len = rng.UniformValue(0, 3000);
      int64_t end = std::min(store.size(), cursor + len);
      if (rng.NextBelow(3) != 0) {  // Leave gaps between tasks.
        tasks.push_back(
            RangeTask{cursor, end, /*exact=*/rng.NextBelow(5) == 0});
      }
      cursor = end + rng.UniformValue(0, 500);
    }
    QueryResult batched = InitResult(q), sequential = InitResult(q);
    store.ScanRanges(tasks, q, &batched);
    for (const RangeTask& t : tasks) {
      store.ScanRange(t.begin, t.end, q, t.exact, &sequential,
                      ScanOptions{ScanOptions::kScalar});
    }
    ExpectSameResult(batched, sequential, "batch");
  }
}

TEST(ScanKernelTest, ParallelRangeTasksMatchSerial) {
  Dataset data = MakeData(50000, 3, /*clustered=*/true, 909);
  ColumnStore store(data);
  ThreadPool pool(4);
  Rng rng(910);
  for (int trial = 0; trial < 40; ++trial) {
    Query q = RandomQuery(&rng, 3, 1 + trial % 3, kAggs[trial % 5]);
    std::vector<RangeTask> tasks;
    // One oversized task plus several small ones exercises the splitter.
    tasks.push_back(RangeTask{0, store.size() / 2, /*exact=*/false});
    for (int t = 0; t < 8; ++t) {
      int64_t begin = rng.UniformValue(store.size() / 2, store.size());
      int64_t end = std::min(store.size(), begin + rng.UniformValue(0, 2000));
      tasks.push_back(RangeTask{begin, end, /*exact=*/t % 4 == 0});
    }
    QueryResult parallel = ExecuteRangeTasks(store, tasks, q, &pool);
    QueryResult serial = ExecuteRangeTasks(store, tasks, q, nullptr);
    ExpectSameResult(parallel, serial, "parallel");
  }
}

TEST(ScanKernelTest, GridWithOutlierBufferCrossChecksAllAggregates) {
  // y ~ 2x with a few wild rows: the grid moves them to the outlier
  // buffer, which every query scans as a trailing (non-exact) task.
  Rng rng(911);
  Dataset data(2, {});
  for (int64_t i = 0; i < 8000; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    Value y = 2 * x + rng.UniformValue(-50, 50);
    if (i < 10) y = rng.UniformValue(500000000, 600000000);
    data.AppendRow({x, y});
  }
  Skeleton s = Skeleton::AllIndependent(2);
  s.dims[1] = {PartitionStrategy::kMapped, 0};
  AugmentedGrid grid;
  AugmentedGrid::BuildOptions options;
  options.fm_outlier_fraction = 0.001;
  std::vector<uint32_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  grid.Build(data, &rows, s, {16, 1}, options);
  ColumnStore store(data, rows);
  grid.Attach(&store, 0);
  ASSERT_GT(grid.num_outliers(), 0);
  FullScanIndex reference(data);
  for (int trial = 0; trial < 100; ++trial) {
    Query q;
    q.agg = kAggs[trial % 5];
    q.agg_dim = trial % 2;
    Value lo = rng.UniformValue(0, 600000000);
    q.filters.push_back(Predicate{1, lo, lo + rng.UniformValue(0, 100000000)});
    if (trial % 2 == 0) {
      Value xlo = rng.UniformValue(0, 1000000);
      q.filters.push_back(Predicate{0, xlo, xlo + rng.UniformValue(0, 300000)});
    }
    QueryResult got = InitResult(q);
    grid.Execute(q, &got);
    QueryResult expected = reference.Execute(q);
    EXPECT_EQ(got.agg, expected.agg) << "trial " << trial;
    EXPECT_EQ(got.matched, expected.matched) << "trial " << trial;
  }
}

TEST(ScanKernelTest, PlanRangesMatchesExecute) {
  Dataset data = MakeData(20000, 3, /*clustered=*/false, 912);
  Skeleton s = Skeleton::AllIndependent(3);
  AugmentedGrid grid;
  std::vector<uint32_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  grid.Build(data, &rows, s, {8, 8, 8}, {});
  ColumnStore store(data, rows);
  grid.Attach(&store, 0);
  Rng rng(913);
  for (int trial = 0; trial < 100; ++trial) {
    Query q = RandomQuery(&rng, 3, 1 + trial % 3, kAggs[trial % 5]);
    QueryResult direct = InitResult(q);
    grid.Execute(q, &direct);
    QueryResult planned = InitResult(q);
    std::vector<RangeTask> tasks;
    grid.PlanRanges(q, &tasks, &planned);
    store.ScanRanges(tasks, q, &planned);
    ExpectSameResult(planned, direct, "plan+scan");
  }
}

TEST(ScanKernelTest, ZoneMapsCoverEveryBlock) {
  Dataset data = MakeData(kScanBlockRows * 3 + 37, 2, false, 914);
  ColumnStore store(data);
  const ZoneMaps& zones = store.zone_maps();
  ASSERT_EQ(zones.num_blocks(), 4);
  for (int d = 0; d < 2; ++d) {
    int64_t total = 0;
    for (int64_t b = 0; b < zones.num_blocks(); ++b) {
      total += zones.Sum(d, b);
      EXPECT_LE(zones.Min(d, b), zones.Max(d, b));
    }
    int64_t expected = 0;
    for (int64_t r = 0; r < data.size(); ++r) expected += data.at(r, d);
    EXPECT_EQ(total, expected);
  }
}

}  // namespace
}  // namespace tsunami
