// Tests for the secondary-index module (§1 motivation, §7 Correlation
// Map / Hermit): the conventional sorted row-id index and the learned
// correlation index must agree with a full scan, the learned index must
// stay model-sized, and its outlier buffer must absorb rows that break
// the correlation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/secondary/secondary_index.h"

namespace tsunami {
namespace {

// (ship_date, receipt_date, quantity): receipt trails ship by 1-30 days —
// the tight monotone correlation Hermit exploits.
Dataset MakeShippingData(int64_t rows, double outlier_rate, uint64_t seed) {
  Rng rng(seed);
  Dataset data(3, {});
  data.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    Value ship = rng.UniformValue(0, 3650);
    Value receipt = ship + rng.UniformValue(1, 30);
    if (rng.NextBool(outlier_rate)) {
      receipt = ship + rng.UniformValue(200, 2000);  // Lost in transit.
    }
    data.AppendRow({ship, receipt, rng.UniformValue(1, 50)});
  }
  return data;
}

Workload MakeKeyQueries(int count, uint64_t seed) {
  Rng rng(seed);
  Workload queries;
  for (int i = 0; i < count; ++i) {
    Value lo = rng.UniformValue(0, 3500);
    Query q;
    q.filters = {Predicate{1, lo, lo + static_cast<Value>(rng.NextBelow(120))}};
    if (rng.NextBool(0.3)) {
      q.filters.push_back(Predicate{2, 1, 25});
    }
    queries.push_back(q);
  }
  return queries;
}

class SecondaryKindTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<MultiDimIndex> Make(const Dataset& data) const {
    if (GetParam() == 0) {
      return std::make_unique<SortedSecondaryIndex>(data, /*host_dim=*/0,
                                                    /*key_dim=*/1);
    }
    return std::make_unique<CorrelationSecondaryIndex>(data, /*host_dim=*/0,
                                                       /*key_dim=*/1);
  }
};

TEST_P(SecondaryKindTest, MatchesFullScanOnKeyQueries) {
  Dataset data = MakeShippingData(20000, 0.01, 42);
  std::unique_ptr<MultiDimIndex> index = Make(data);
  FullScanIndex full(data);
  for (const Query& q : MakeKeyQueries(60, 7)) {
    QueryResult got = index->Execute(q);
    QueryResult want = full.Execute(q);
    ASSERT_EQ(got.matched, want.matched);
    ASSERT_EQ(got.agg, want.agg);
  }
}

TEST_P(SecondaryKindTest, HostAndFilterlessQueriesFallBack) {
  Dataset data = MakeShippingData(5000, 0.0, 43);
  std::unique_ptr<MultiDimIndex> index = Make(data);
  FullScanIndex full(data);

  Query host_only;
  host_only.filters = {Predicate{0, 1000, 1999}};
  EXPECT_EQ(index->Execute(host_only).matched,
            full.Execute(host_only).matched);

  Query no_filter;
  EXPECT_EQ(index->Execute(no_filter).matched, 5000);

  Query other_dim;
  other_dim.filters = {Predicate{2, 10, 20}};
  EXPECT_EQ(index->Execute(other_dim).matched,
            full.Execute(other_dim).matched);
}

TEST_P(SecondaryKindTest, AllAggregateKinds) {
  Dataset data = MakeShippingData(8000, 0.01, 44);
  std::unique_ptr<MultiDimIndex> index = Make(data);
  FullScanIndex full(data);
  for (AggKind agg : {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                      AggKind::kMax, AggKind::kAvg}) {
    Query q;
    q.filters = {Predicate{1, 500, 700}};
    q.agg = agg;
    q.agg_dim = 2;
    QueryResult got = index->Execute(q);
    QueryResult want = full.Execute(q);
    EXPECT_EQ(got.agg, want.agg) << static_cast<int>(agg);
    EXPECT_EQ(got.matched, want.matched);
  }
}

TEST_P(SecondaryKindTest, EmptyAndTinyDatasets) {
  Dataset empty(3, {});
  std::unique_ptr<MultiDimIndex> e = Make(empty);
  Query q;
  q.filters = {Predicate{1, 0, 100}};
  EXPECT_EQ(e->Execute(q).matched, 0);

  Dataset one(3, {5, 9, 2});
  std::unique_ptr<MultiDimIndex> o = Make(one);
  EXPECT_EQ(o->Execute(q).matched, 1);
  Query miss;
  miss.filters = {Predicate{1, 100, 200}};
  EXPECT_EQ(o->Execute(miss).matched, 0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SecondaryKindTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("BTree")
                                                  : std::string("Hermit");
                         });

TEST(CorrelationSecondaryTest, ModelSizedVersusRowSized) {
  Dataset data = MakeShippingData(50000, 0.005, 45);
  SortedSecondaryIndex btree(data, 0, 1);
  CorrelationSecondaryIndex hermit(data, 0, 1);
  // The paper's Hermit claim: orders of magnitude smaller than a row-id
  // secondary index on correlated columns.
  EXPECT_LT(hermit.IndexSizeBytes() * 20, btree.IndexSizeBytes());
}

TEST(CorrelationSecondaryTest, OutlierBufferAbsorbsBrokenRows) {
  Dataset clean = MakeShippingData(20000, 0.0, 46);
  Dataset dirty = MakeShippingData(20000, 0.02, 46);
  CorrelationSecondaryIndex clean_index(clean, 0, 1);
  CorrelationSecondaryIndex dirty_index(dirty, 0, 1);
  EXPECT_GT(dirty_index.num_outliers(), clean_index.num_outliers());

  // Outliers must still be findable.
  FullScanIndex full(dirty);
  Query wide;
  wide.filters = {Predicate{1, 2000, 5000}};
  EXPECT_EQ(dirty_index.Execute(wide).matched, full.Execute(wide).matched);
}

TEST(CorrelationSecondaryTest, TightCorrelationScansNarrowHostBand) {
  Dataset data = MakeShippingData(40000, 0.0, 47);
  CorrelationSecondaryIndex hermit(data, 0, 1);
  Query q;
  q.filters = {Predicate{1, 1000, 1059}};
  QueryResult r = hermit.Execute(q);
  FullScanIndex full(data);
  ASSERT_EQ(r.matched, full.Execute(q).matched);
  // Receipt spans 60 days and the error band adds ~30: the host scan
  // should touch a small multiple of the matches, not the whole table.
  EXPECT_LT(r.scanned, data.size() / 10);
  EXPECT_GT(r.matched, 0);
}

TEST(CorrelationSecondaryTest, NegativeCorrelationWorks) {
  Rng rng(48);
  Dataset data(2, {});
  for (int i = 0; i < 20000; ++i) {
    Value x = rng.UniformValue(0, 9999);
    data.AppendRow({x, 20000 - 2 * x + rng.UniformValue(-25, 25)});
  }
  CorrelationSecondaryIndex hermit(data, 0, 1);
  FullScanIndex full(data);
  Rng qrng(49);
  for (int i = 0; i < 30; ++i) {
    Value lo = qrng.UniformValue(0, 19000);
    Query q;
    q.filters = {Predicate{1, lo, lo + 500}};
    ASSERT_EQ(hermit.Execute(q).matched, full.Execute(q).matched)
        << "query " << i;
  }
}

TEST(SortedSecondaryTest, ProbeCountTracksCandidates) {
  Dataset data = MakeShippingData(10000, 0.0, 50);
  SortedSecondaryIndex btree(data, 0, 1);
  Query narrow;
  narrow.filters = {Predicate{1, 100, 104}};
  Query wide;
  wide.filters = {Predicate{1, 100, 1099}};
  QueryResult rn = btree.Execute(narrow);
  QueryResult rw = btree.Execute(wide);
  // Every candidate is one probe (one random access).
  EXPECT_EQ(rn.scanned, rn.cell_ranges);
  EXPECT_EQ(rw.scanned, rw.cell_ranges);
  EXPECT_GT(rw.scanned, rn.scanned);
}

}  // namespace
}  // namespace tsunami
