// Tests for the skew tree (§4.3.2) and query-type clustering (§4.3.1).
#include <gtest/gtest.h>

#include "src/core/query_clustering.h"
#include "src/core/skew.h"
#include "src/datasets/synthetic.h"
#include "src/datasets/taxi.h"

namespace tsunami {
namespace {

Workload MakeRangeQueries(int dim, std::vector<std::pair<Value, Value>> ranges,
                          int type) {
  Workload w;
  for (auto [lo, hi] : ranges) {
    Query q;
    q.type = type;
    q.filters = {Predicate{dim, lo, hi}};
    w.push_back(q);
  }
  return w;
}

TEST(TypeHistogramTest, QueriesWithoutFilterSpreadUniformly) {
  Workload w(3);  // Three unfiltered queries of type 0.
  for (Query& q : w) q.type = 0;
  auto hists = BuildTypeHistograms(w, 1, 0, 0, 999, 10);
  ASSERT_EQ(hists.size(), 1u);
  for (double m : hists[0].mass()) EXPECT_NEAR(m, 0.3, 1e-12);
}

TEST(TypeHistogramTest, TypesAreSeparated) {
  Workload w = MakeRangeQueries(0, {{0, 99}, {0, 99}}, 0);
  Workload w2 = MakeRangeQueries(0, {{900, 999}}, 1);
  w.insert(w.end(), w2.begin(), w2.end());
  auto hists = BuildTypeHistograms(w, 2, 0, 0, 999, 10);
  ASSERT_EQ(hists.size(), 2u);
  EXPECT_DOUBLE_EQ(hists[0].total_mass(), 2.0);
  EXPECT_DOUBLE_EQ(hists[1].total_mass(), 1.0);
  EXPECT_GT(hists[0].mass()[0], 0.0);
  EXPECT_DOUBLE_EQ(hists[0].mass()[9], 0.0);
  EXPECT_GT(hists[1].mass()[9], 0.0);
}

TEST(SkewTreeTest, UniformWorkloadNeedsNoSplit) {
  // Queries evenly spread over the domain: no split should be proposed.
  std::vector<std::pair<Value, Value>> ranges;
  for (Value v = 0; v < 1000; v += 50) ranges.push_back({v, v + 49});
  auto hists =
      BuildTypeHistograms(MakeRangeQueries(0, ranges, 0), 1, 0, 0, 999, 128);
  SplitChoice choice = FindBestSplit(hists);
  EXPECT_LT(choice.reduction, 0.05 * 20);
}

TEST(SkewTreeTest, FindsTheSkewBoundary) {
  // The Fig. 2 scenario in one dimension: many narrow queries over the last
  // fifth of the domain, a few wide queries everywhere.
  std::vector<std::pair<Value, Value>> narrow, wide;
  for (int i = 0; i < 40; ++i) {
    Value start = 800 + (i * 5) % 195;
    narrow.push_back({start, start + 4});
  }
  for (int i = 0; i < 5; ++i) narrow.push_back({0, 999});
  Workload w = MakeRangeQueries(0, narrow, 0);
  auto hists = BuildTypeHistograms(w, 1, 0, 0, 999, 128);
  SplitChoice choice = FindBestSplit(hists);
  ASSERT_FALSE(choice.split_values.empty());
  EXPECT_GT(choice.reduction, 0.05 * w.size());
  // The main boundary should sit near 800.
  bool near_800 = false;
  for (Value v : choice.split_values) near_800 |= v >= 700 && v <= 900;
  EXPECT_TRUE(near_800);
}

TEST(SkewTreeTest, CancellingTypesRequireSeparation) {
  // Two mirrored skewed types: together they look uniform, so skew is only
  // visible per type (the motivation for clustering, §4.3.1).
  std::vector<std::pair<Value, Value>> low, high;
  for (int i = 0; i < 20; ++i) {
    low.push_back({0, 99});
    high.push_back({900, 999});
  }
  Workload merged_one_type = MakeRangeQueries(0, low, 0);
  for (Query& q : MakeRangeQueries(0, high, 0)) merged_one_type.push_back(q);
  Workload split_types = MakeRangeQueries(0, low, 0);
  for (Query& q : MakeRangeQueries(0, high, 1)) split_types.push_back(q);

  auto hists_merged = BuildTypeHistograms(merged_one_type, 1, 0, 0, 999, 128);
  auto hists_split = BuildTypeHistograms(split_types, 2, 0, 0, 999, 128);
  // Both workloads want splitting here (mass is at the extremes), but the
  // per-type skew is strictly larger than the merged skew.
  EXPECT_GT(CombinedSkew(hists_split, 0, 128),
            CombinedSkew(hists_merged, 0, 128) - 1e-9);
}

TEST(SkewTreeTest, MergeRegularizerRemovesSuperfluousSplits) {
  // A workload with a single hot region: a high merge factor collapses to
  // fewer split values than a zero merge factor.
  std::vector<std::pair<Value, Value>> ranges;
  for (int i = 0; i < 30; ++i) ranges.push_back({500, 549});
  for (int i = 0; i < 5; ++i) ranges.push_back({0, 999});
  auto hists =
      BuildTypeHistograms(MakeRangeQueries(0, ranges, 0), 1, 0, 0, 999, 128);
  SplitChoice strict = FindBestSplit(hists, /*merge_factor=*/1.0);
  SplitChoice merged = FindBestSplit(hists, /*merge_factor=*/1.5);
  EXPECT_LE(merged.split_values.size(), strict.split_values.size());
}

TEST(SkewTreeTest, PerUniqueValueBinsGiveExactBoundaries) {
  // Only 4 unique values: bins per value, skew boundaries on exact values.
  std::vector<Value> unique = {10, 20, 30, 40};
  Workload w = MakeRangeQueries(0, {{40, 40}, {40, 40}, {40, 40}, {40, 40},
                                    {10, 40}},
                                0);
  auto hists = BuildTypeHistograms(w, 1, 0, 10, 40, 128, &unique);
  EXPECT_EQ(hists[0].bins(), 4);
  SplitChoice choice = FindBestSplit(hists);
  if (!choice.split_values.empty()) {
    for (Value v : choice.split_values) {
      EXPECT_TRUE(v == 20 || v == 30 || v == 40);
    }
  }
}

TEST(DbscanTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) points.push_back({0.01 * i, 0.0});
  for (int i = 0; i < 10; ++i) points.push_back({0.9 + 0.01 * i, 0.9});
  int clusters = 0;
  std::vector<int> labels = Dbscan(points, 0.2, 4, &clusters);
  EXPECT_EQ(clusters, 2);
  for (int i = 1; i < 10; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(labels[i], labels[10]);
  EXPECT_NE(labels[0], labels[10]);
}

TEST(DbscanTest, NoisePointsGetACatchAllCluster) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 8; ++i) points.push_back({0.0});
  points.push_back({10.0});  // Lone outlier.
  int clusters = 0;
  std::vector<int> labels = Dbscan(points, 0.1, 4, &clusters);
  EXPECT_EQ(clusters, 2);
  EXPECT_NE(labels[8], labels[0]);
}

TEST(QueryClusteringTest, DifferentDimSetsAreDifferentTypes) {
  Benchmark bench = MakeUniformBenchmark(4, 2000, 101, 5);
  Workload w;
  for (int i = 0; i < 10; ++i) {
    Query a;
    a.filters = {Predicate{0, 0, 100}};
    w.push_back(a);
    Query b;
    b.filters = {Predicate{1, 0, 100}};
    w.push_back(b);
  }
  int num_types = 0;
  std::vector<int> types =
      ClusterQueryTypes(bench.data, w, ClusteringOptions{}, &num_types);
  EXPECT_EQ(num_types, 2);
  EXPECT_NE(types[0], types[1]);
  EXPECT_EQ(types[0], types[2]);
}

TEST(QueryClusteringTest, SelectivitySeparatesTypesWithinDimSet) {
  Benchmark bench = MakeUniformBenchmark(2, 20000, 102, 5);
  constexpr Value kDomain = 1'000'000'000;
  Workload w;
  for (int i = 0; i < 20; ++i) {
    Query narrow;  // ~1% selective on dim 0.
    narrow.filters = {Predicate{0, 0, kDomain / 100}};
    w.push_back(narrow);
    Query wide;  // ~80% selective on dim 0.
    wide.filters = {Predicate{0, 0, kDomain * 4 / 5}};
    w.push_back(wide);
  }
  int num_types = 0;
  std::vector<int> types =
      ClusterQueryTypes(bench.data, w, ClusteringOptions{}, &num_types);
  EXPECT_EQ(num_types, 2);
  EXPECT_NE(types[0], types[1]);
}

TEST(QueryClusteringTest, GeneratorLabelsRecovered) {
  // The taxi workload's six generator types filter distinct dimension sets
  // or clearly different selectivities; clustering should find >= 4 types.
  Benchmark bench = MakeTaxiBenchmark(20000, 103, 20);
  int num_types = 0;
  LabelQueryTypes(bench.data, bench.workload, ClusteringOptions{}, &num_types);
  EXPECT_GE(num_types, 4);
  EXPECT_LE(num_types, 12);
}

}  // namespace
}  // namespace tsunami
