// Tests for the column-store substrate and dictionary encoding.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/storage/column_store.h"
#include "src/storage/dictionary.h"

namespace tsunami {
namespace {

Dataset SmallDataset() {
  Dataset data(2, {});
  data.AppendRow({1, 10});
  data.AppendRow({2, 20});
  data.AppendRow({3, 30});
  data.AppendRow({4, 40});
  return data;
}

TEST(ColumnStoreTest, PermutationReordersRows) {
  Dataset data = SmallDataset();
  ColumnStore store(data, {3, 2, 1, 0});
  EXPECT_EQ(store.Get(0, 0), 4);
  EXPECT_EQ(store.Get(3, 1), 10);
  EXPECT_EQ(store.size(), 4);
  EXPECT_EQ(store.dims(), 2);
}

TEST(ColumnStoreTest, ScanCountsMatches) {
  Dataset data = SmallDataset();
  ColumnStore store(data);
  Query q;
  q.filters = {Predicate{0, 2, 3}};
  QueryResult r;
  store.ScanRange(0, store.size(), q, false, &r);
  EXPECT_EQ(r.agg, 2);
  EXPECT_EQ(r.scanned, 4);
  EXPECT_EQ(r.matched, 2);
}

TEST(ColumnStoreTest, ExactScanSkipsChecksForCount) {
  Dataset data = SmallDataset();
  ColumnStore store(data);
  Query q;
  q.filters = {Predicate{0, 100, 200}};  // Matches nothing...
  QueryResult r;
  store.ScanRange(0, 4, q, /*exact=*/true, &r);  // ...but exact says all do.
  EXPECT_EQ(r.agg, 4);
  EXPECT_EQ(r.scanned, 0);  // COUNT over an exact range touches no data.
}

TEST(ColumnStoreTest, SumAggregationOverExactRange) {
  Dataset data = SmallDataset();
  ColumnStore store(data);
  Query q;
  q.agg = AggKind::kSum;
  q.agg_dim = 1;
  QueryResult r;
  store.ScanRange(1, 3, q, /*exact=*/true, &r);
  EXPECT_EQ(r.agg, 50);  // 20 + 30.
}

TEST(ColumnStoreTest, SumWithFilters) {
  Dataset data = SmallDataset();
  ColumnStore store(data);
  Query q;
  q.agg = AggKind::kSum;
  q.agg_dim = 1;
  q.filters = {Predicate{0, 2, 4}};
  QueryResult r;
  store.ScanRange(0, 4, q, false, &r);
  EXPECT_EQ(r.agg, 90);
}

TEST(ColumnStoreTest, BoundsOnSortedRange) {
  Dataset data(1, {});
  for (Value v : {1, 3, 3, 3, 7, 9}) data.AppendRow({v});
  ColumnStore store(data);
  EXPECT_EQ(store.LowerBound(0, 0, 6, 3), 1);
  EXPECT_EQ(store.UpperBound(0, 0, 6, 3), 4);
  EXPECT_EQ(store.LowerBound(0, 0, 6, 100), 6);
}

TEST(ColumnStoreTest, FullScanAgainstNaive) {
  Rng rng(81);
  Dataset data(3, {});
  for (int i = 0; i < 5000; ++i) {
    data.AppendRow({rng.UniformValue(0, 99), rng.UniformValue(0, 99),
                    rng.UniformValue(0, 99)});
  }
  ColumnStore store(data);
  for (int trial = 0; trial < 50; ++trial) {
    Query q;
    for (int d = 0; d < 3; ++d) {
      Value lo = rng.UniformValue(0, 99);
      Value hi = rng.UniformValue(lo, 99);
      q.filters.push_back(Predicate{d, lo, hi});
    }
    int64_t expected = 0;
    for (int64_t r = 0; r < data.size(); ++r) {
      bool ok = true;
      for (const Predicate& p : q.filters) ok &= p.Matches(data.at(r, p.dim));
      expected += ok;
    }
    EXPECT_EQ(ExecuteFullScan(store, q).agg, expected);
  }
}

TEST(DictionaryTest, OrderPreservingCodes) {
  Dictionary dict = Dictionary::Build({"MAIL", "AIR", "SHIP", "AIR", "RAIL"});
  EXPECT_EQ(dict.size(), 4);  // Deduplicated.
  EXPECT_EQ(dict.Encode("AIR"), 0);
  EXPECT_EQ(dict.Encode("SHIP"), 3);
  EXPECT_EQ(dict.Encode("TRUCK"), -1);
  EXPECT_LT(dict.Encode("MAIL"), dict.Encode("RAIL"));
  EXPECT_EQ(dict.Decode(dict.Encode("RAIL")), "RAIL");
}

TEST(DictionaryTest, RangeEndpointsForAbsentStrings) {
  Dictionary dict = Dictionary::Build({"b", "d", "f"});
  // Range ["a", "e"] should cover codes of "b" and "d".
  EXPECT_EQ(dict.EncodeLowerBound("a"), 0);
  EXPECT_EQ(dict.EncodeUpperBound("e"), 1);
  EXPECT_EQ(dict.EncodeUpperBound("a"), -1);   // Nothing <= "a".
  EXPECT_EQ(dict.EncodeLowerBound("z"), 3);    // Nothing >= "z".
  EXPECT_GT(dict.SizeBytes(), 0);
}

}  // namespace
}  // namespace tsunami
