// Tests for the work-stealing task scheduler: every chunk runs exactly
// once (any thread count, concurrent submitters), Wait/Finished semantics,
// inline determinism, priority jumping the queue, and stealing actually
// firing on a skewed job mix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "src/exec/task_scheduler.h"

namespace tsunami {
namespace {

TEST(TaskSchedulerTest, InlineSchedulerRunsChunksInOrderOnCaller) {
  TaskScheduler scheduler(0);
  EXPECT_EQ(scheduler.num_threads(), 0);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<int64_t> order;
  TaskScheduler::JobRef job = scheduler.Submit(8, [&](int64_t c, int worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0);
    order.push_back(c);
  });
  // Inline submission completes before returning.
  EXPECT_TRUE(TaskScheduler::Finished(job));
  ASSERT_EQ(order.size(), 8u);
  for (int64_t c = 0; c < 8; ++c) EXPECT_EQ(order[c], c);
  scheduler.Wait(job);  // Must not hang on a finished job.
}

TEST(TaskSchedulerTest, EveryChunkRunsExactlyOnce) {
  TaskScheduler scheduler(4);
  const int kJobs = 16;
  const int64_t kChunks = 257;  // Not a multiple of the worker count.
  std::vector<std::vector<std::atomic<int>>> hits(kJobs);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kChunks);
  }
  std::vector<TaskScheduler::JobRef> jobs;
  for (int j = 0; j < kJobs; ++j) {
    jobs.push_back(scheduler.Submit(kChunks, [&hits, j](int64_t c, int) {
      hits[j][c].fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (const auto& job : jobs) scheduler.Wait(job);
  for (int j = 0; j < kJobs; ++j) {
    for (int64_t c = 0; c < kChunks; ++c) {
      EXPECT_EQ(hits[j][c].load(), 1) << "job " << j << " chunk " << c;
    }
  }
  TaskScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.jobs, kJobs);
  EXPECT_EQ(stats.chunks, kJobs * kChunks);
  EXPECT_EQ(scheduler.queue_depth(), 0);
}

TEST(TaskSchedulerTest, ConcurrentSubmittersAllComplete) {
  TaskScheduler scheduler(3);
  const int kClients = 6;
  const int kJobsPerClient = 20;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        TaskScheduler::JobRef job = scheduler.Submit(
            5, [&](int64_t, int) {
              total.fetch_add(1, std::memory_order_relaxed);
            });
        scheduler.Wait(job);
        EXPECT_TRUE(TaskScheduler::Finished(job));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(total.load(), kClients * kJobsPerClient * 5);
}

TEST(TaskSchedulerTest, EmptyJobIsImmediatelyFinished) {
  TaskScheduler scheduler(2);
  TaskScheduler::JobRef job = scheduler.Submit(0, [](int64_t, int) {
    FAIL() << "no chunks should run";
  });
  EXPECT_TRUE(TaskScheduler::Finished(job));
  scheduler.Wait(job);
}

// One chunk blocks its worker while the rest of the job's chunks sit in
// that worker's deque: the other workers must drain their own deques and
// then steal the blocked worker's queued chunks, so the job finishes long
// before the blocker releases — and the steal counter moves.
TEST(TaskSchedulerTest, IdleWorkersStealFromBusyWorkersDeque) {
  TaskScheduler scheduler(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> fast_done{0};
  const int64_t kChunks = 64;
  TaskScheduler::JobRef job =
      scheduler.Submit(kChunks, [&](int64_t c, int) {
        if (c == 0) {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return release; });
          return;
        }
        fast_done.fetch_add(1, std::memory_order_relaxed);
      });
  // All non-blocking chunks finish while chunk 0 still holds its worker —
  // half of them lived in the blocked worker's deque and must be stolen.
  while (fast_done.load(std::memory_order_relaxed) < kChunks - 1) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(TaskScheduler::Finished(job));
  EXPECT_GE(scheduler.stats().steals, 1);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Wait(job);
  EXPECT_TRUE(TaskScheduler::Finished(job));
}

// With a single worker pinned by a blocker, later high-priority chunks
// must run before earlier normal-priority backlog.
TEST(TaskSchedulerTest, PriorityChunksJumpTheQueue) {
  TaskScheduler scheduler(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> started{false};
  TaskScheduler::JobRef blocker =
      scheduler.Submit(1, [&](int64_t, int) {
        started.store(true, std::memory_order_release);
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
      });
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Worker is pinned: everything below queues in its deque.
  std::mutex order_mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(tag);
  };
  TaskScheduler::JobRef low = scheduler.Submit(
      3, [&](int64_t, int) { record(0); }, /*priority=*/0);
  TaskScheduler::JobRef high = scheduler.Submit(
      3, [&](int64_t, int) { record(1); }, /*priority=*/1);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Wait(low);
  scheduler.Wait(high);
  scheduler.Wait(blocker);
  ASSERT_EQ(order.size(), 6u);
  // All high-priority chunks ran before every normal-priority one.
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(order[i], 1) << i;
  for (size_t i = 3; i < 6; ++i) EXPECT_EQ(order[i], 0) << i;
}

// A chunk that throws must not take the worker down or hang Wait: the job
// completes, is marked failed, and the failure counter moves. (No fault
// injection needed — the chunk function throws directly.)
TEST(TaskSchedulerTest, ThrowingChunkFailsJobWithoutHangingWait) {
  TaskScheduler scheduler(2);
  std::atomic<int64_t> ran{0};
  TaskScheduler::JobRef job = scheduler.Submit(16, [&](int64_t c, int) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (c == 5 || c == 11) throw std::runtime_error("injected chunk fault");
  });
  scheduler.Wait(job);  // Must return despite the throws.
  EXPECT_TRUE(TaskScheduler::Finished(job));
  EXPECT_TRUE(job->failed());
  EXPECT_EQ(ran.load(), 16);  // Sibling chunks still ran.
  EXPECT_GE(scheduler.stats().task_failures, 2);

  // A healthy job on the same scheduler afterwards is unaffected.
  std::atomic<int64_t> healthy{0};
  TaskScheduler::JobRef ok = scheduler.Submit(8, [&](int64_t, int) {
    healthy.fetch_add(1, std::memory_order_relaxed);
  });
  scheduler.Wait(ok);
  EXPECT_FALSE(ok->failed());
  EXPECT_EQ(healthy.load(), 8);
}

// Boost() moves a job's still-queued chunks to the deque front: with one
// pinned worker, a later-submitted boosted job runs entirely before the
// earlier backlog, in its original chunk order.
TEST(TaskSchedulerTest, BoostMovesQueuedChunksAheadOfBacklog) {
  TaskScheduler scheduler(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> started{false};
  TaskScheduler::JobRef blocker =
      scheduler.Submit(1, [&](int64_t, int) {
        started.store(true, std::memory_order_release);
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
      });
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::mutex order_mu;
  std::vector<std::pair<int, int64_t>> order;
  auto record = [&](int tag, int64_t c) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.emplace_back(tag, c);
  };
  TaskScheduler::JobRef job_a = scheduler.Submit(
      2, [&](int64_t c, int) { record(0, c); });
  TaskScheduler::JobRef job_b = scheduler.Submit(
      2, [&](int64_t c, int) { record(1, c); });
  scheduler.Boost(job_b);
  EXPECT_GE(scheduler.stats().boosts, 1);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Wait(job_a);
  scheduler.Wait(job_b);
  scheduler.Wait(blocker);
  ASSERT_EQ(order.size(), 4u);
  // B's chunks first (relative order preserved), then A's.
  EXPECT_EQ(order[0], (std::pair<int, int64_t>{1, 0}));
  EXPECT_EQ(order[1], (std::pair<int, int64_t>{1, 1}));
  EXPECT_EQ(order[2], (std::pair<int, int64_t>{0, 0}));
  EXPECT_EQ(order[3], (std::pair<int, int64_t>{0, 1}));

  // Boosting null / finished jobs is a harmless no-op.
  scheduler.Boost(nullptr);
  scheduler.Boost(job_b);
}

TEST(TaskSchedulerTest, DestructorDrainsQueuedChunks) {
  std::atomic<int64_t> ran{0};
  {
    TaskScheduler scheduler(2);
    for (int j = 0; j < 32; ++j) {
      scheduler.Submit(16, [&](int64_t, int) {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait: destruction must drain everything.
  }
  EXPECT_EQ(ran.load(), 32 * 16);
}

}  // namespace
}  // namespace tsunami
