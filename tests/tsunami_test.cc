// End-to-end tests for TsunamiIndex and FloodIndex: correctness against a
// full scan across all four dataset emulators and all drill-down variants,
// structural sanity of the optimized index, and workload-shift rebuilds.
#include <gtest/gtest.h>

#include "src/baselines/full_scan.h"
#include "src/core/tsunami.h"
#include "src/datasets/datasets.h"
#include "src/flood/flood.h"

namespace tsunami {
namespace {

TsunamiOptions SmallOptions() {
  TsunamiOptions options;
  options.sample_rows = 20000;
  options.agd.max_sample_points = 512;
  options.agd.max_sample_queries = 32;
  options.agd.max_iters = 2;
  options.agd.max_cells = 1 << 12;
  return options;
}

void CheckMatchesFullScan(const MultiDimIndex& index, const Benchmark& bench,
                          const FullScanIndex& reference) {
  for (const Query& q : bench.workload) {
    QueryResult expected = reference.Execute(q);
    QueryResult got = index.Execute(q);
    ASSERT_EQ(got.agg, expected.agg)
        << index.Name() << " on " << bench.name;
    ASSERT_EQ(got.matched, expected.matched);
  }
}

class TsunamiDatasetTest : public ::testing::TestWithParam<int> {
 protected:
  Benchmark MakeBench() const {
    switch (GetParam()) {
      case 0:
        return MakeTpchBenchmark(8000, 41, 12);
      case 1:
        return MakeTaxiBenchmark(8000, 42, 12);
      case 2:
        return MakePerfmonBenchmark(8000, 43, 12);
      default:
        return MakeStocksBenchmark(8000, 44, 12);
    }
  }
};

TEST_P(TsunamiDatasetTest, TsunamiMatchesFullScan) {
  Benchmark bench = MakeBench();
  FullScanIndex reference(bench.data);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  CheckMatchesFullScan(index, bench, reference);
}

TEST_P(TsunamiDatasetTest, FloodMatchesFullScan) {
  Benchmark bench = MakeBench();
  FullScanIndex reference(bench.data);
  FloodOptions options;
  options.agd.max_sample_points = 512;
  options.agd.max_sample_queries = 32;
  options.agd.max_iters = 2;
  FloodIndex index(bench.data, bench.workload, options);
  CheckMatchesFullScan(index, bench, reference);
}

TEST_P(TsunamiDatasetTest, GridTreeOnlyVariantMatchesFullScan) {
  Benchmark bench = MakeBench();
  FullScanIndex reference(bench.data);
  TsunamiOptions options = SmallOptions();
  options.use_augmentation = false;
  options.name = "GridTreeOnly";
  TsunamiIndex index(bench.data, bench.workload, options);
  EXPECT_EQ(index.Name(), "GridTreeOnly");
  CheckMatchesFullScan(index, bench, reference);
}

TEST_P(TsunamiDatasetTest, AugmentedGridOnlyVariantMatchesFullScan) {
  Benchmark bench = MakeBench();
  FullScanIndex reference(bench.data);
  TsunamiOptions options = SmallOptions();
  options.use_grid_tree = false;
  TsunamiIndex index(bench.data, bench.workload, options);
  EXPECT_EQ(index.stats().num_regions, 1);
  CheckMatchesFullScan(index, bench, reference);
}

std::string DatasetName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"TpcH", "Taxi", "Perfmon", "Stocks"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Datasets, TsunamiDatasetTest,
                         ::testing::Values(0, 1, 2, 3), DatasetName);

TEST(TsunamiIndexTest, StatsAreConsistent) {
  Benchmark bench = MakeTpchBenchmark(8000, 45, 12);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  const TsunamiIndex::Stats& stats = index.stats();
  EXPECT_GE(stats.num_query_types, 1);
  EXPECT_GE(stats.num_regions, 1);
  EXPECT_GE(stats.tree_nodes, stats.num_regions);
  EXPECT_LE(stats.num_indexed_regions, stats.num_regions);
  EXPECT_GE(stats.total_cells, stats.num_indexed_regions);
  EXPECT_LE(stats.min_region_points, stats.median_region_points);
  EXPECT_LE(stats.median_region_points, stats.max_region_points);
  EXPECT_GT(index.IndexSizeBytes(), 0);
}

TEST(TsunamiIndexTest, RegionsPartitionAllRows) {
  Benchmark bench = MakeStocksBenchmark(6000, 46, 10);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  // An unfiltered COUNT(*) query must touch every row exactly once.
  Query all;
  QueryResult result = index.Execute(all);
  EXPECT_EQ(result.agg, bench.data.size());
}

TEST(TsunamiIndexTest, RebuildForShiftedWorkloadStaysCorrect) {
  Benchmark bench = MakeTpchBenchmark(8000, 47, 12);
  Workload shifted = MakeTpchShiftedWorkload(bench.data, 48, 12);
  FullScanIndex reference(bench.data);
  TsunamiIndex rebuilt(bench.data, shifted, SmallOptions());
  for (const Query& q : shifted) {
    QueryResult expected = reference.Execute(q);
    ASSERT_EQ(rebuilt.Execute(q).agg, expected.agg);
  }
  // The old workload still answers correctly (performance may differ).
  CheckMatchesFullScan(rebuilt, bench, reference);
}

TEST(TsunamiIndexTest, PreLabeledTypesAreRespected) {
  Benchmark bench = MakeTaxiBenchmark(6000, 49, 10);
  TsunamiOptions options = SmallOptions();
  options.cluster_queries = false;  // Use generator labels (6 types).
  TsunamiIndex index(bench.data, bench.workload, options);
  EXPECT_EQ(index.stats().num_query_types, 6);
  FullScanIndex reference(bench.data);
  CheckMatchesFullScan(index, bench, reference);
}

TEST(TsunamiIndexTest, EmptyWorkloadBuildsUnindexedRegions) {
  Benchmark bench = MakeUniformBenchmark(3, 2000, 50, 5);
  TsunamiIndex index(bench.data, Workload{}, SmallOptions());
  FullScanIndex reference(bench.data);
  CheckMatchesFullScan(index, bench, reference);
}

TEST(FloodIndexTest, ReportsCellsAndTimings) {
  Benchmark bench = MakeTpchBenchmark(6000, 51, 10);
  FloodOptions options;
  options.agd.max_sample_points = 512;
  options.agd.max_sample_queries = 32;
  FloodIndex index(bench.data, bench.workload, options);
  EXPECT_GE(index.num_cells(), 1);
  EXPECT_GE(index.optimize_seconds(), 0.0);
  EXPECT_GE(index.sort_seconds(), 0.0);
  // Flood never uses augmentation.
  EXPECT_EQ(index.grid().skeleton().NumMapped(), 0);
  EXPECT_EQ(index.grid().skeleton().NumConditional(), 0);
}

}  // namespace
}  // namespace tsunami
