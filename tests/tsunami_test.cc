// End-to-end tests for TsunamiIndex and FloodIndex: correctness against a
// full scan across all four dataset emulators and all drill-down variants,
// structural sanity of the optimized index, and workload-shift rebuilds.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/datasets/datasets.h"
#include "src/flood/flood.h"

namespace tsunami {
namespace {

TsunamiOptions SmallOptions() {
  TsunamiOptions options;
  options.sample_rows = 20000;
  options.agd.max_sample_points = 512;
  options.agd.max_sample_queries = 32;
  options.agd.max_iters = 2;
  options.agd.max_cells = 1 << 12;
  return options;
}

void CheckMatchesFullScan(const MultiDimIndex& index, const Benchmark& bench,
                          const FullScanIndex& reference) {
  for (const Query& q : bench.workload) {
    QueryResult expected = reference.Execute(q);
    QueryResult got = index.Execute(q);
    ASSERT_EQ(got.agg, expected.agg)
        << index.Name() << " on " << bench.name;
    ASSERT_EQ(got.matched, expected.matched);
  }
}

class TsunamiDatasetTest : public ::testing::TestWithParam<int> {
 protected:
  Benchmark MakeBench() const {
    switch (GetParam()) {
      case 0:
        return MakeTpchBenchmark(8000, 41, 12);
      case 1:
        return MakeTaxiBenchmark(8000, 42, 12);
      case 2:
        return MakePerfmonBenchmark(8000, 43, 12);
      default:
        return MakeStocksBenchmark(8000, 44, 12);
    }
  }
};

TEST_P(TsunamiDatasetTest, TsunamiMatchesFullScan) {
  Benchmark bench = MakeBench();
  FullScanIndex reference(bench.data);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  CheckMatchesFullScan(index, bench, reference);
}

TEST_P(TsunamiDatasetTest, FloodMatchesFullScan) {
  Benchmark bench = MakeBench();
  FullScanIndex reference(bench.data);
  FloodOptions options;
  options.agd.max_sample_points = 512;
  options.agd.max_sample_queries = 32;
  options.agd.max_iters = 2;
  FloodIndex index(bench.data, bench.workload, options);
  CheckMatchesFullScan(index, bench, reference);
}

TEST_P(TsunamiDatasetTest, GridTreeOnlyVariantMatchesFullScan) {
  Benchmark bench = MakeBench();
  FullScanIndex reference(bench.data);
  TsunamiOptions options = SmallOptions();
  options.use_augmentation = false;
  options.name = "GridTreeOnly";
  TsunamiIndex index(bench.data, bench.workload, options);
  EXPECT_EQ(index.Name(), "GridTreeOnly");
  CheckMatchesFullScan(index, bench, reference);
}

TEST_P(TsunamiDatasetTest, AugmentedGridOnlyVariantMatchesFullScan) {
  Benchmark bench = MakeBench();
  FullScanIndex reference(bench.data);
  TsunamiOptions options = SmallOptions();
  options.use_grid_tree = false;
  TsunamiIndex index(bench.data, bench.workload, options);
  EXPECT_EQ(index.stats().num_regions, 1);
  CheckMatchesFullScan(index, bench, reference);
}

std::string DatasetName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"TpcH", "Taxi", "Perfmon", "Stocks"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Datasets, TsunamiDatasetTest,
                         ::testing::Values(0, 1, 2, 3), DatasetName);

TEST(TsunamiIndexTest, StatsAreConsistent) {
  Benchmark bench = MakeTpchBenchmark(8000, 45, 12);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  const TsunamiIndex::Stats& stats = index.stats();
  EXPECT_GE(stats.num_query_types, 1);
  EXPECT_GE(stats.num_regions, 1);
  EXPECT_GE(stats.tree_nodes, stats.num_regions);
  EXPECT_LE(stats.num_indexed_regions, stats.num_regions);
  EXPECT_GE(stats.total_cells, stats.num_indexed_regions);
  EXPECT_LE(stats.min_region_points, stats.median_region_points);
  EXPECT_LE(stats.median_region_points, stats.max_region_points);
  EXPECT_GT(index.IndexSizeBytes(), 0);
}

TEST(TsunamiIndexTest, RegionsPartitionAllRows) {
  Benchmark bench = MakeStocksBenchmark(6000, 46, 10);
  TsunamiIndex index(bench.data, bench.workload, SmallOptions());
  // An unfiltered COUNT(*) query must touch every row exactly once.
  Query all;
  QueryResult result = index.Execute(all);
  EXPECT_EQ(result.agg, bench.data.size());
}

TEST(TsunamiIndexTest, RebuildForShiftedWorkloadStaysCorrect) {
  Benchmark bench = MakeTpchBenchmark(8000, 47, 12);
  Workload shifted = MakeTpchShiftedWorkload(bench.data, 48, 12);
  FullScanIndex reference(bench.data);
  TsunamiIndex rebuilt(bench.data, shifted, SmallOptions());
  for (const Query& q : shifted) {
    QueryResult expected = reference.Execute(q);
    ASSERT_EQ(rebuilt.Execute(q).agg, expected.agg);
  }
  // The old workload still answers correctly (performance may differ).
  CheckMatchesFullScan(rebuilt, bench, reference);
}

TEST(TsunamiIndexTest, PreLabeledTypesAreRespected) {
  Benchmark bench = MakeTaxiBenchmark(6000, 49, 10);
  TsunamiOptions options = SmallOptions();
  options.cluster_queries = false;  // Use generator labels (6 types).
  TsunamiIndex index(bench.data, bench.workload, options);
  EXPECT_EQ(index.stats().num_query_types, 6);
  FullScanIndex reference(bench.data);
  CheckMatchesFullScan(index, bench, reference);
}

TEST(TsunamiIndexTest, EmptyWorkloadBuildsUnindexedRegions) {
  Benchmark bench = MakeUniformBenchmark(3, 2000, 50, 5);
  TsunamiIndex index(bench.data, Workload{}, SmallOptions());
  FullScanIndex reference(bench.data);
  CheckMatchesFullScan(index, bench, reference);
}

TEST(TsunamiIndexTest, RepairsQuarantinedBlocksFromDeltaFold) {
  // Initial table lives entirely in dim0 <= 10000; the inserted delta rows
  // live far above, so after the incremental rebuild folds them in, the
  // clustered store's tail blocks hold *only* delta-origin rows — exactly
  // the blocks the fold backup can re-materialize if they go corrupt.
  Rng rng(53);
  Dataset data(2, {});
  for (int i = 0; i < 6000; ++i) {
    Value x = rng.UniformValue(0, 10000);
    data.AppendRow({x, rng.UniformValue(0, 500)});
  }
  Workload workload;
  for (int i = 0; i < 12; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 9000);
    q.filters.push_back(Predicate{0, lo, lo + 800});
    workload.push_back(q);
  }
  TsunamiIndex initial(data, workload, SmallOptions());
  for (int i = 0; i < 3000; ++i) {
    initial.Insert(
        {rng.UniformValue(100000, 110000), rng.UniformValue(0, 500)});
  }
  TsunamiIndex rebuilt(initial, workload, SmallOptions());
  ASSERT_EQ(rebuilt.delta_size(), 0);  // Fold consumed the buffer.

  Query over_new;
  over_new.filters.push_back(Predicate{0, 100000, 110000});
  over_new.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
  QueryResult want = rebuilt.Execute(over_new);
  EXPECT_EQ(want.matched, 3000);
  EXPECT_FALSE(want.degraded);

  // Find the wholly-delta blocks (every row's dim0 is in the insert
  // range — only delta rows live there) and quarantine them in both dims.
  const ColumnStore& store = rebuilt.store();
  std::vector<int64_t> delta_blocks;
  for (int64_t b = 0; b * kScanBlockRows < store.size(); ++b) {
    const int64_t lo = b * kScanBlockRows;
    const int64_t hi = std::min(store.size(), lo + kScanBlockRows);
    bool all_delta = true;
    for (int64_t r = lo; r < hi && all_delta; ++r) {
      all_delta = store.Get(r, 0) >= 100000;
    }
    if (all_delta) delta_blocks.push_back(b);
  }
  ASSERT_GE(delta_blocks.size(), 1u);  // 3000 tail rows span >= 1 block.
  for (int64_t b : delta_blocks) {
    store.encoded(0).Quarantine(b);
    store.encoded(1).Quarantine(b);
  }
  const int64_t quarantined = static_cast<int64_t>(delta_blocks.size()) * 2;
  EXPECT_EQ(store.QuarantinedBlocks(), quarantined);
  QueryResult degraded = rebuilt.Execute(over_new);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_LT(degraded.matched, want.matched);

  // Repair from the fold backup: every quarantined block was wholly
  // delta-origin, so every one heals — and the query is exact again.
  EXPECT_EQ(rebuilt.RepairQuarantinedFromDelta(), quarantined);
  EXPECT_EQ(store.QuarantinedBlocks(), 0);
  QueryResult healed = rebuilt.Execute(over_new);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.agg, want.agg);
  EXPECT_EQ(healed.matched, want.matched);
}

TEST(FloodIndexTest, ReportsCellsAndTimings) {
  Benchmark bench = MakeTpchBenchmark(6000, 51, 10);
  FloodOptions options;
  options.agd.max_sample_points = 512;
  options.agd.max_sample_queries = 32;
  FloodIndex index(bench.data, bench.workload, options);
  EXPECT_GE(index.num_cells(), 1);
  EXPECT_GE(index.optimize_seconds(), 0.0);
  EXPECT_GE(index.sort_seconds(), 0.0);
  // Flood never uses augmentation.
  EXPECT_EQ(index.grid().skeleton().NumMapped(), 0);
  EXPECT_EQ(index.grid().skeleton().NumConditional(), 0);
}

}  // namespace
}  // namespace tsunami
