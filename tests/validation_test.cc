// Cross-cutting validation tests: the analytic cost model's features must
// track the counters real query execution reports (§5.3.1; the paper's
// Fig. 12b puts the model's average error at 15%), the Earth Mover's
// Distance must behave like a metric (§4.2.1 relies on it as a statistical
// distance), and Skeleton::Validate must agree with a reference checker on
// random skeletons (§5.2's structural restrictions).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/emd.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/augmented_grid.h"
#include "src/core/cost_model.h"
#include "src/core/optimizer.h"
#include "src/core/skeleton.h"
#include "src/storage/column_store.h"

namespace tsunami {
namespace {

// --- Cost model vs execution counters -----------------------------------------

class CostModelCounterTest : public ::testing::TestWithParam<int> {};

// Builds a real Augmented Grid from an optimizer plan and checks that the
// cost model's two features — cell ranges and scanned points — match the
// counters execution reports, in aggregate over a workload.
TEST_P(CostModelCounterTest, FeaturesTrackExecutionCounters) {
  const uint64_t seed = 400 + GetParam();
  Rng rng(seed);
  const int dims = 3;
  const int64_t n = 20000;
  Dataset data(dims, {});
  for (int64_t i = 0; i < n; ++i) {
    Value x = rng.UniformValue(0, 99999);
    // One correlated dimension so non-trivial skeletons appear too.
    data.AppendRow({x, x / 2 + rng.UniformValue(-300, 300),
                    rng.UniformValue(0, 9999)});
  }
  Workload workload;
  for (int i = 0; i < 32; ++i) {
    Query q;
    Value lo0 = rng.UniformValue(0, 90000);
    Value lo2 = rng.UniformValue(0, 9000);
    q.filters = {Predicate{0, lo0, lo0 + 8000}, Predicate{2, lo2, lo2 + 800}};
    workload.push_back(q);
  }

  std::vector<uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  AgdOptions agd;
  agd.max_sample_points = 8192;
  agd.max_sample_queries = 32;
  agd.seed = seed;
  GridPlan plan = OptimizeGrid(data, rows, workload, OptimizeMethod::kAgd,
                               agd);

  AugmentedGrid::BuildOptions build_options;
  build_options.sort_dim = plan.sort_dim;
  AugmentedGrid grid;
  grid.Build(data, &rows, plan.skeleton, plan.partitions, build_options);
  ColumnStore store(data, rows);
  grid.Attach(&store, 0);

  // A full-sample evaluator: feature estimates, not sampling noise.
  GridCostEvaluator evaluator(data, rows, workload,
                              /*max_sample_points=*/20000,
                              /*max_sample_queries=*/32, seed);
  // Weights (1, 0) predict pure range counts; (0, 1) predicts pure
  // scanned-points * filtered-dims cost.
  CostWeights ranges_only{1.0, 0.0};
  CostWeights scan_only{0.0, 1.0};

  double predicted_ranges = 0, actual_ranges = 0;
  double predicted_scan = 0, actual_scan = 0;
  for (const Query& q : workload) {
    predicted_ranges += evaluator.PredictQueryNanos(
        plan.skeleton, plan.partitions, ranges_only, q, plan.sort_dim);
    predicted_scan += evaluator.PredictQueryNanos(
        plan.skeleton, plan.partitions, scan_only, q, plan.sort_dim);
    QueryResult r = InitResult(q);
    grid.Execute(q, &r);
    actual_ranges += static_cast<double>(r.cell_ranges);
    actual_scan += static_cast<double>(r.scanned) *
                   static_cast<double>(q.filters.size());
  }
  ASSERT_GT(actual_ranges, 0);
  ASSERT_GT(actual_scan, 0);
  // Aggregate relative error. The paper reports 15% average error for the
  // full model; individual features get headroom for estimation effects
  // (binary-search refinement, partition rounding).
  EXPECT_LT(std::abs(predicted_ranges - actual_ranges) / actual_ranges, 0.5)
      << "predicted " << predicted_ranges << " actual " << actual_ranges;
  EXPECT_LT(std::abs(predicted_scan - actual_scan) / actual_scan, 0.5)
      << "predicted " << predicted_scan << " actual " << actual_scan;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelCounterTest, ::testing::Range(0, 3));

// --- EMD metric properties ----------------------------------------------------

std::vector<double> RandomMass(Rng* rng, int bins, double total) {
  std::vector<double> mass(bins);
  double sum = 0.0;
  for (double& m : mass) {
    m = rng->NextDouble();
    sum += m;
  }
  for (double& m : mass) m *= total / sum;
  return mass;
}

class EmdMetricTest : public ::testing::TestWithParam<int> {};

TEST_P(EmdMetricTest, IdentitySymmetryTriangle) {
  Rng rng(500 + GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    int bins = 2 + static_cast<int>(rng.NextBelow(62));
    std::vector<double> p = RandomMass(&rng, bins, 10.0);
    std::vector<double> q = RandomMass(&rng, bins, 10.0);
    std::vector<double> r = RandomMass(&rng, bins, 10.0);
    EXPECT_NEAR(Emd(p, p), 0.0, 1e-9);
    EXPECT_NEAR(Emd(p, q), Emd(q, p), 1e-9);
    EXPECT_LE(Emd(p, r), Emd(p, q) + Emd(q, r) + 1e-9);
    EXPECT_GE(Emd(p, q), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmdMetricTest, ::testing::Range(0, 4));

TEST(EmdTest, MovingMassFurtherCostsMore) {
  // One unit moved k bins costs k/n: EMD grows linearly with distance.
  const int n = 10;
  std::vector<double> src(n, 0.0);
  src[0] = 1.0;
  double prev = 0.0;
  for (int k = 1; k < n; ++k) {
    std::vector<double> dst(n, 0.0);
    dst[k] = 1.0;
    double d = Emd(src, dst);
    EXPECT_NEAR(d, static_cast<double>(k) / n, 1e-9);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(EmdTest, SkewBoundsAndExtremes) {
  // Uniform mass has zero skew; a point mass has maximal skew; skew is
  // bounded by total mass.
  std::vector<double> uniform(16, 2.0);
  EXPECT_NEAR(SkewOfMass(uniform), 0.0, 1e-9);

  std::vector<double> point(16, 0.0);
  point[0] = 32.0;
  double point_skew = SkewOfMass(point);
  EXPECT_GT(point_skew, 0.0);
  EXPECT_LE(point_skew, 32.0);

  Rng rng(501);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<double> mass = RandomMass(&rng, 32, 7.0);
    double skew = SkewOfMass(mass);
    EXPECT_GE(skew, -1e-9);
    EXPECT_LE(skew, 7.0);
    EXPECT_LE(skew, point_skew / 32.0 * 7.0 + 1e-9)
        << "point mass maximizes skew";
  }
}

// --- Skeleton validation sweep -------------------------------------------------

// Reference implementation of §5.2's restrictions, written independently
// of Skeleton::Validate.
bool ReferenceValid(const Skeleton& s) {
  int d = s.num_dims();
  int in_grid = 0;
  for (int i = 0; i < d; ++i) {
    const DimSpec& spec = s.dims[i];
    if (spec.strategy == PartitionStrategy::kIndependent) {
      if (spec.other != -1) return false;
      ++in_grid;
      continue;
    }
    if (spec.other < 0 || spec.other >= d || spec.other == i) return false;
    const DimSpec& other = s.dims[spec.other];
    if (spec.strategy == PartitionStrategy::kMapped) {
      // Target must not be mapped itself.
      if (other.strategy == PartitionStrategy::kMapped) return false;
    } else {  // kConditional
      // Base must be independent (not mapped, not conditional).
      if (other.strategy != PartitionStrategy::kIndependent) return false;
      ++in_grid;
    }
  }
  // A mapped dimension must not be the base of a conditional dimension.
  for (int i = 0; i < d; ++i) {
    if (s.dims[i].strategy != PartitionStrategy::kConditional) continue;
    if (s.dims[s.dims[i].other].strategy == PartitionStrategy::kMapped) {
      return false;
    }
  }
  return in_grid >= 1;
}

class SkeletonSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SkeletonSweepTest, ValidateAgreesWithReference) {
  const int d = 2 + GetParam();
  // Exhaustive over all strategy/other assignments for small d.
  std::vector<Skeleton> all;
  int64_t combos = 1;
  for (int i = 0; i < d; ++i) combos *= 1 + 2 * d;  // indep | (map|cond) x d
  for (int64_t code = 0; code < combos; ++code) {
    Skeleton s;
    s.dims.resize(d);
    int64_t c = code;
    for (int i = 0; i < d; ++i) {
      int choice = static_cast<int>(c % (1 + 2 * d));
      c /= 1 + 2 * d;
      if (choice == 0) {
        s.dims[i] = DimSpec{PartitionStrategy::kIndependent, -1};
      } else if (choice <= d) {
        s.dims[i] = DimSpec{PartitionStrategy::kMapped, choice - 1};
      } else {
        s.dims[i] = DimSpec{PartitionStrategy::kConditional, choice - d - 1};
      }
    }
    all.push_back(std::move(s));
  }
  int valid_count = 0;
  for (const Skeleton& s : all) {
    bool got = s.Validate();
    bool want = ReferenceValid(s);
    ASSERT_EQ(got, want) << s.ToString();
    valid_count += got;
  }
  // Sanity: the space contains both valid and invalid skeletons.
  EXPECT_GT(valid_count, 0);
  EXPECT_LT(valid_count, static_cast<int>(all.size()));
}

INSTANTIATE_TEST_SUITE_P(Dims, SkeletonSweepTest, ::testing::Range(0, 2));

}  // namespace
}  // namespace tsunami
