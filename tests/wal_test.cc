// Durability suite (ROADMAP "Durable ingest"): WAL record framing and the
// truncate-at-every-byte torn-tail sweep, group-commit ack ordering and
// coalescing, segment rotation, and DurableIngestStore end-to-end — bootstrap
// / reopen bit-identity against a never-crashed store, checkpoint truncation
// of the log, per-row replay-cursor skipping for batches straddling a fold
// boundary, tolerated torn tails, and corrupt manifest / checkpoint refusal.
// Fault-injection builds additionally drive wal.fsync_fail and wal.torn_write
// (the log must fail closed: nothing acked that is not on stable storage) and
// durability.checkpoint_throw (the WAL must retain everything and the next
// fold must retry).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/fault_injection.h"
#include "src/common/random.h"
#include "src/durability/durable_store.h"
#include "src/durability/wal.h"
#include "src/ingest/ingest_store.h"
#include "src/io/serializer.h"

namespace tsunami {
namespace {

using durability::DurabilityOptions;
using durability::DurableIngestStore;
using durability::EncodeRowBatchRecord;
using durability::EncodeWalRecord;
using durability::ReadWalSegment;
using durability::WalRecord;
using durability::WalRecordType;
using durability::WalSegmentContents;
using durability::WalWriter;
using durability::WalWriterOptions;
using ingest::IngestOptions;
using ingest::IngestStore;

IngestOptions SmallIngestOptions() {
  IngestOptions options;
  options.index.sample_rows = 20000;
  options.index.agd.max_sample_points = 512;
  options.index.agd.max_sample_queries = 32;
  options.index.agd.max_iters = 2;
  options.index.agd.max_cells = 1 << 12;
  options.background_compaction = false;
  return options;
}

Query RangeCount(int dim, Value lo, Value hi) {
  Query q;
  q.filters.push_back(Predicate{dim, lo, hi});
  q.SetAggregates({{AggKind::kCount, 0}});
  return q;
}

void ExpectSameAnswer(const QueryResult& got, const QueryResult& want) {
  EXPECT_EQ(got.agg, want.agg);
  EXPECT_EQ(got.matched, want.matched);
  EXPECT_EQ(got.extra, want.extra);
}

void CheckAgainstReference(const IngestStore& store, const Dataset& expect,
                           const std::vector<Query>& queries) {
  FullScanIndex reference(expect);
  for (const Query& q : queries) {
    ExpectSameAnswer(store.Execute(q), reference.Execute(q));
  }
}

/// Fresh per-test scratch directory under the system temp root.
std::string TestDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tsunami_wal_test_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void WriteBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void AppendBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

int CountWalSegments(const std::string& dir) {
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) ++n;
  }
  return n;
}

/// Base table + workload shared by the DurableIngestStore tests; mirrors the
/// ingest suite's fixture so recovered stores can be checked against the
/// same full-scan reference.
struct DurableFixture {
  Dataset data{2, {}};
  Workload workload;
  Rng rng{17};

  explicit DurableFixture(int64_t base_rows) {
    for (int64_t i = 0; i < base_rows; ++i) {
      Value x = rng.UniformValue(0, 100000);
      data.AppendRow({x, rng.UniformValue(0, 1000)});
    }
    for (int i = 0; i < 12; ++i) {
      Query q;
      Value lo = rng.UniformValue(0, 90000);
      q.filters.push_back(Predicate{0, lo, lo + 8000});
      workload.push_back(q);
    }
  }

  std::vector<Value> RandomRow() {
    return {rng.UniformValue(0, 100000), rng.UniformValue(0, 1000)};
  }

  std::vector<std::vector<Value>> RandomBatch(int n) {
    std::vector<std::vector<Value>> rows;
    rows.reserve(n);
    for (int i = 0; i < n; ++i) rows.push_back(RandomRow());
    return rows;
  }

  std::vector<Query> CheckQueries() {
    std::vector<Query> queries;
    for (int i = 0; i < 16; ++i) {
      Query q;
      Value lo = rng.UniformValue(0, 80000);
      q.filters.push_back(Predicate{0, lo, lo + 15000});
      q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
      queries.push_back(q);
    }
    queries.push_back(RangeCount(0, 0, 200000));
    return queries;
  }

  DurabilityOptions Options(const std::string& dir) {
    DurabilityOptions o;
    o.dir = dir;
    o.ingest = SmallIngestOptions();
    return o;
  }
};

// ---- Record framing -------------------------------------------------------

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalRecord record;
  record.first_ordinal = 41;
  record.rows = {{7, -100}, {0, 0}, {99999, 1000000007}};
  const std::string frame = EncodeWalRecord(record);
  ASSERT_GT(frame.size(), durability::kWalFrameHeaderSize);

  // The no-copy hot-path encoder frames identically.
  EXPECT_EQ(EncodeRowBatchRecord(41, record.rows), frame);

  WalRecord got;
  size_t offset = 0;
  ASSERT_EQ(durability::DecodeWalFrame(frame, &offset, &got),
            FileError::kNone);
  EXPECT_EQ(offset, frame.size());
  EXPECT_EQ(got.type, WalRecordType::kRowBatch);
  EXPECT_EQ(got.first_ordinal, 41);
  EXPECT_EQ(got.dims, 2);
  EXPECT_EQ(got.rows, record.rows);
}

TEST(WalRecordTest, DecodeTypesShortAndCorruptTails) {
  const std::string frame = EncodeRowBatchRecord(0, {{1, 2}});

  // Any strict prefix is a torn frame, and offset stays at the frame start.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    WalRecord got;
    size_t offset = 0;
    EXPECT_EQ(durability::DecodeWalFrame(std::string_view(frame).substr(0, cut),
                                         &offset, &got),
              FileError::kTruncated);
    EXPECT_EQ(offset, 0u);
  }

  // A complete frame whose header declares an absurd body is corruption, not
  // an allocation request.
  std::string absurd = frame;
  absurd[0] = '\xFF';
  absurd[1] = '\xFF';
  absurd[2] = '\xFF';
  absurd[3] = '\xFF';
  WalRecord got;
  size_t offset = 0;
  EXPECT_EQ(durability::DecodeWalFrame(absurd, &offset, &got),
            FileError::kChecksumMismatch);
  EXPECT_EQ(offset, 0u);
}

TEST(WalRecordTest, FileErrorToStringNames) {
  EXPECT_STREQ(ToString(FileError::kNone), "none");
  EXPECT_STREQ(ToString(FileError::kTruncated), "truncated");
  EXPECT_STREQ(ToString(FileError::kChecksumMismatch), "checksum_mismatch");
}

// ---- Segment reading: the torn-tail sweep ---------------------------------

// Satellite: mirror io_test's truncation sweep at the WAL layer. For a
// multi-record segment cut at EVERY byte offset, replay must return exactly
// the records whose frames are complete, type the tail as kTruncated (unless
// the cut lands on a frame boundary — that is a clean EOF), and report the
// boundary offset where reading stopped.
TEST(WalSegmentTest, TruncateAtEveryByteRecoversIntactPrefix) {
  const std::string dir = TestDir("sweep");
  const std::string path = dir + "/wal-000001.log";

  std::string full;
  std::vector<size_t> boundary = {0};  // boundary[k] = bytes of first k frames.
  int64_t ordinal = 0;
  for (int i = 0; i < 4; ++i) {
    std::vector<std::vector<Value>> rows;
    for (int r = 0; r <= i; ++r) rows.push_back({100 * i + r, -r});
    full += EncodeRowBatchRecord(ordinal, rows);
    ordinal += static_cast<int64_t>(rows.size());
    boundary.push_back(full.size());
  }

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteBytes(path, std::string_view(full).substr(0, cut));
    const WalSegmentContents seg = ReadWalSegment(path);

    size_t intact = 0;
    while (intact + 1 < boundary.size() && boundary[intact + 1] <= cut) {
      ++intact;
    }
    ASSERT_EQ(seg.records.size(), intact) << "cut=" << cut;
    EXPECT_EQ(seg.tail_offset, boundary[intact]) << "cut=" << cut;
    if (cut == boundary[intact]) {
      EXPECT_EQ(seg.tail_status, FileError::kNone) << "cut=" << cut;
    } else {
      EXPECT_EQ(seg.tail_status, FileError::kTruncated) << "cut=" << cut;
      EXPECT_NE(seg.message.find("offset"), std::string::npos);
    }
    // The surviving prefix is bit-intact, not merely counted.
    int64_t expect_ordinal = 0;
    for (size_t k = 0; k < intact; ++k) {
      EXPECT_EQ(seg.records[k].first_ordinal, expect_ordinal);
      expect_ordinal += static_cast<int64_t>(seg.records[k].rows.size());
      EXPECT_EQ(seg.records[k].rows.size(), k + 1);
    }
  }
}

TEST(WalSegmentTest, FlippedByteTypesChecksumMismatch) {
  const std::string dir = TestDir("flip");
  const std::string path = dir + "/wal-000001.log";

  const std::string f0 = EncodeRowBatchRecord(0, {{1, 2}, {3, 4}});
  const std::string f1 = EncodeRowBatchRecord(2, {{5, 6}, {7, 8}, {9, 10}});
  const std::string full = f0 + f1;

  // Flip every byte of the second frame in turn: the first record must
  // always survive, and the read must always stop exactly at its boundary.
  for (size_t p = f0.size(); p < full.size(); ++p) {
    std::string bytes = full;
    bytes[p] = static_cast<char>(bytes[p] ^ 0x5A);
    WriteBytes(path, bytes);
    const WalSegmentContents seg = ReadWalSegment(path);
    ASSERT_EQ(seg.records.size(), 1u) << "flip at " << p;
    EXPECT_EQ(seg.records[0].rows.size(), 2u);
    EXPECT_EQ(seg.tail_offset, f0.size()) << "flip at " << p;
    EXPECT_NE(seg.tail_status, FileError::kNone) << "flip at " << p;
  }

  // A mid-body flip specifically is a complete frame failing its hash.
  std::string bytes = full;
  bytes[f0.size() + durability::kWalFrameHeaderSize + 2] =
      static_cast<char>(bytes[f0.size() + durability::kWalFrameHeaderSize + 2] ^
                        0x5A);
  WriteBytes(path, bytes);
  const WalSegmentContents seg = ReadWalSegment(path);
  EXPECT_EQ(seg.tail_status, FileError::kChecksumMismatch);
  EXPECT_NE(seg.message.find("checksum"), std::string::npos);

  const WalSegmentContents missing = ReadWalSegment(dir + "/absent.log");
  EXPECT_EQ(missing.tail_status, FileError::kIoError);
}

// ---- WalWriter: group commit ----------------------------------------------

TEST(WalWriterTest, ManualModeGroupsEverythingPendingIntoOneCommit) {
  const std::string dir = TestDir("manual");
  WalWriterOptions options;
  options.background = false;
  WalWriter wal(dir + "/wal-000001.log", options);
  ASSERT_TRUE(wal.ok());

  for (int i = 0; i < 5; ++i) {
    const uint64_t lsn = wal.Append(EncodeRowBatchRecord(i, {{i, i}}));
    EXPECT_EQ(lsn, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(wal.durable_lsn(), 0u);  // Nothing commits until asked.
  EXPECT_TRUE(wal.CommitPending());
  EXPECT_EQ(wal.durable_lsn(), 5u);
  EXPECT_TRUE(wal.WaitDurable(5));

  const WalWriter::Stats stats = wal.stats();
  EXPECT_EQ(stats.appends, 5);
  EXPECT_EQ(stats.records_committed, 5);
  EXPECT_EQ(stats.group_commits, 1);  // One write+fsync for all five.
  EXPECT_EQ(stats.max_group_records, 5);
  wal.Close();

  const WalSegmentContents seg = ReadWalSegment(dir + "/wal-000001.log");
  EXPECT_EQ(seg.tail_status, FileError::kNone);
  ASSERT_EQ(seg.records.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(seg.records[i].first_ordinal, i);
}

TEST(WalWriterTest, AckIsReleasedOnlyByTheCommit) {
  const std::string dir = TestDir("ack_order");
  WalWriterOptions options;
  options.background = false;
  WalWriter wal(dir + "/wal-000001.log", options);
  ASSERT_TRUE(wal.ok());

  wal.Append(EncodeRowBatchRecord(0, {{1, 1}}));
  const uint64_t lsn = wal.Append(EncodeRowBatchRecord(1, {{2, 2}}));

  std::atomic<bool> acked{false};
  std::atomic<bool> durable{false};
  std::thread waiter([&] {
    durable.store(wal.WaitDurable(lsn));
    acked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acked.load());  // No commit issued: the ack must not release.
  EXPECT_TRUE(wal.CommitPending());
  waiter.join();
  EXPECT_TRUE(acked.load());
  EXPECT_TRUE(durable.load());
  EXPECT_GE(wal.durable_lsn(), lsn);
}

TEST(WalWriterTest, ConcurrentWritersShareCommitsAndAllBecomeDurable) {
  const std::string dir = TestDir("concurrent");
  WalWriter wal(dir + "/wal-000001.log");  // Background committer.
  ASSERT_TRUE(wal.ok());

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 32;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&wal, &failures, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int64_t ordinal = w * kPerWriter + i;
        const uint64_t lsn =
            wal.Append(EncodeRowBatchRecord(ordinal, {{ordinal, w}}));
        if (lsn == 0 || !wal.WaitDurable(lsn)) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal.durable_lsn(), static_cast<uint64_t>(kWriters * kPerWriter));

  const WalWriter::Stats stats = wal.stats();
  EXPECT_EQ(stats.records_committed, kWriters * kPerWriter);
  EXPECT_LE(stats.group_commits, stats.records_committed);
  wal.Close();

  const WalSegmentContents seg = ReadWalSegment(wal.path());
  EXPECT_EQ(seg.tail_status, FileError::kNone);
  EXPECT_EQ(seg.records.size(), static_cast<size_t>(kWriters * kPerWriter));
}

TEST(WalWriterTest, RotationSplitsSegmentsAndLsnsKeepCounting) {
  const std::string dir = TestDir("rotate");
  WalWriterOptions options;
  options.background = false;
  WalWriter wal(dir + "/wal-000001.log", options);
  ASSERT_TRUE(wal.ok());

  wal.Append(EncodeRowBatchRecord(0, {{1, 1}}));
  wal.Append(EncodeRowBatchRecord(1, {{2, 2}}));
  ASSERT_TRUE(wal.RotateTo(dir + "/wal-000002.log"));
  EXPECT_EQ(wal.durable_lsn(), 2u);  // Rotation flushes the old segment.
  const uint64_t lsn = wal.Append(EncodeRowBatchRecord(2, {{3, 3}}));
  EXPECT_EQ(lsn, 3u);  // LSNs are monotone across segment boundaries.
  EXPECT_TRUE(wal.CommitPending());
  wal.Close();

  const WalSegmentContents first = ReadWalSegment(dir + "/wal-000001.log");
  const WalSegmentContents second = ReadWalSegment(dir + "/wal-000002.log");
  ASSERT_EQ(first.records.size(), 2u);
  ASSERT_EQ(second.records.size(), 1u);
  EXPECT_EQ(second.records[0].first_ordinal, 2);
}

// ---- DurableIngestStore ---------------------------------------------------

// Tentpole acceptance: reopen after a clean close and answer every query
// bit-identically to a never-crashed IngestStore fed the same inserts (and
// to the full-scan ground truth).
TEST(DurableStoreTest, ReopenIsBitIdenticalToNeverCrashedStore) {
  DurableFixture fx(2500);
  const std::string dir = TestDir("reopen");
  Dataset expect = fx.data;
  IngestStore never_crashed(fx.data, fx.workload, SmallIngestOptions());

  std::string error;
  std::unique_ptr<DurableIngestStore> durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_FALSE(durable->recovery().recovered);

  for (int b = 0; b < 40; ++b) {
    const std::vector<std::vector<Value>> batch = fx.RandomBatch(13);
    ASSERT_TRUE(durable->InsertBatch(batch));
    ASSERT_EQ(never_crashed.InsertBatch(batch), 13);
    for (const std::vector<Value>& row : batch) expect.AppendRow(row);
  }
  EXPECT_EQ(durable->next_ordinal(), 40 * 13);
  const DurableIngestStore::Stats stats = durable->stats();
  EXPECT_EQ(stats.rows_logged, 40 * 13);
  EXPECT_EQ(stats.durable_acks, 40);
  EXPECT_EQ(stats.failed_acks, 0);
  durable.reset();  // Clean close.

  durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  const durability::RecoveryInfo& rec = durable->recovery();
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.wal_tail_status, FileError::kNone);
  EXPECT_EQ(rec.replayed_rows, 40 * 13);
  EXPECT_EQ(rec.skipped_rows, 0);
  EXPECT_EQ(durable->next_ordinal(), 40 * 13);

  const std::vector<Query> queries = fx.CheckQueries();
  for (const Query& q : queries) {
    ExpectSameAnswer(durable->store().Execute(q), never_crashed.Execute(q));
  }
  CheckAgainstReference(durable->store(), expect, queries);
}

TEST(DurableStoreTest, CheckpointTruncatesWalAndReplayResumesAfterCursor) {
  DurableFixture fx(2500);
  const std::string dir = TestDir("checkpoint");
  Dataset expect = fx.data;

  std::string error;
  std::unique_ptr<DurableIngestStore> durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;

  for (const std::vector<Value>& row : fx.RandomBatch(300)) {
    ASSERT_TRUE(durable->Insert(row));
    expect.AppendRow(row);
  }
  ASSERT_TRUE(durable->CheckpointNow());
  EXPECT_EQ(durable->stats().checkpoints, 1);
  // Every logged row folded into the durable snapshot: the old segment is
  // deletable and only the fresh post-rotation segment remains.
  EXPECT_GE(durable->stats().segments_deleted, 1);
  EXPECT_EQ(CountWalSegments(dir), 1);
  EXPECT_FALSE(std::filesystem::exists(durability::WalSegmentPath(dir, 1)));

  // Rows after the checkpoint live only in the WAL tail.
  for (const std::vector<Value>& row : fx.RandomBatch(75)) {
    ASSERT_TRUE(durable->Insert(row));
    expect.AppendRow(row);
  }
  durable.reset();

  durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  const durability::RecoveryInfo& rec = durable->recovery();
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.checkpoint_rows, static_cast<int64_t>(fx.data.size()) + 300);
  EXPECT_EQ(rec.replay_cursor, 300);
  EXPECT_EQ(rec.replayed_rows, 75);
  EXPECT_EQ(rec.skipped_rows, 0);  // The covered segment is gone entirely.
  EXPECT_EQ(durable->next_ordinal(), 375);
  CheckAgainstReference(durable->store(), expect, fx.CheckQueries());
}

// A fold consumes whole chunks, so a batch larger than the chunk capacity
// can straddle the fold boundary: part of it is in the checkpoint, the rest
// only in the WAL. Replay must skip exactly the folded prefix of the batch
// record — per row, never double-applying and never dropping.
TEST(DurableStoreTest, BatchStraddlingFoldBoundaryReplaysExactRemainder) {
  DurableFixture fx(2000);
  const std::string dir = TestDir("straddle");
  Dataset expect = fx.data;

  DurabilityOptions options = fx.Options(dir);
  options.ingest.chunk_capacity = 64;
  std::string error;
  std::unique_ptr<DurableIngestStore> durable =
      DurableIngestStore::Open(fx.data, fx.workload, options, &error);
  ASSERT_NE(durable, nullptr) << error;

  // One 150-row batch = one WAL record spanning two full chunks (128 rows)
  // plus 22 rows in the open chunk.
  const std::vector<std::vector<Value>> batch = fx.RandomBatch(150);
  ASSERT_TRUE(durable->InsertBatch(batch));
  for (const std::vector<Value>& row : batch) expect.AppendRow(row);

  // Fold WITHOUT rolling the open chunk: the replay cursor lands mid-batch.
  durable->store().CompactNow();
  durable.reset();

  durable = DurableIngestStore::Open(fx.data, fx.workload, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  const durability::RecoveryInfo& rec = durable->recovery();
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.replay_cursor, 128);
  EXPECT_EQ(rec.skipped_rows, 128);  // The folded prefix of the batch.
  EXPECT_EQ(rec.replayed_rows, 22);  // The unfolded remainder, exactly once.
  EXPECT_EQ(durable->next_ordinal(), 150);

  // No row dropped, none double-applied: the count over everything is exact.
  FullScanIndex reference(expect);
  const Query all = RangeCount(0, 0, 200000);
  ExpectSameAnswer(durable->store().Execute(all), reference.Execute(all));
  CheckAgainstReference(durable->store(), expect, fx.CheckQueries());
}

TEST(DurableStoreTest, TornTailIsToleratedAcrossSegments) {
  DurableFixture fx(2000);
  const std::string dir = TestDir("torn_tail");
  Dataset expect = fx.data;

  std::string error;
  std::unique_ptr<DurableIngestStore> durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  for (const std::vector<Value>& row : fx.RandomBatch(90)) {
    ASSERT_TRUE(durable->Insert(row));
    expect.AppendRow(row);
  }
  durable.reset();

  // Simulate a crash tearing the tail: a partial frame header (claims 7
  // body bytes, delivers 4) after the last committed record.
  AppendBytes(durability::WalSegmentPath(dir, 1),
              std::string_view("\x07\x00\x00\x00garb", 8));
  durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->recovery().wal_tail_status, FileError::kTruncated);
  EXPECT_NE(durable->recovery().wal_tail_message.find("offset"),
            std::string::npos);
  EXPECT_EQ(durable->next_ordinal(), 90);  // Every acked row survived.
  CheckAgainstReference(durable->store(), expect, fx.CheckQueries());
  durable.reset();

  // Recovery rotated to a fresh segment; corrupt THAT one with a complete
  // frame whose hash is garbage. Replay must still walk segment 1 (with its
  // old torn tail), carry the cursor into segment 2, and stop typed.
  const std::string seg2 = durability::WalSegmentPath(dir, 2);
  ASSERT_TRUE(std::filesystem::exists(seg2));
  std::string bogus = EncodeRowBatchRecord(90, {{1, 2}});
  bogus[durability::kWalFrameHeaderSize + 3] =
      static_cast<char>(bogus[durability::kWalFrameHeaderSize + 3] ^ 0x5A);
  AppendBytes(seg2, bogus);
  durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->recovery().wal_tail_status, FileError::kChecksumMismatch);
  EXPECT_EQ(durable->next_ordinal(), 90);
  CheckAgainstReference(durable->store(), expect, fx.CheckQueries());
}

TEST(DurableStoreTest, CorruptManifestOrCheckpointRefusesToOpen) {
  DurableFixture fx(2000);
  const std::string dir = TestDir("corrupt_meta");

  std::string error;
  std::unique_ptr<DurableIngestStore> durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  ASSERT_TRUE(durable->Insert(fx.RandomRow()));
  durable.reset();

  // Garbage manifest: Open must fail with a typed complaint, never silently
  // bootstrap over data it cannot read.
  const std::string manifest_path = dir + "/MANIFEST";
  std::string saved;
  {
    std::ifstream in(manifest_path, std::ios::binary);
    saved.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  WriteBytes(manifest_path, "garbage");
  error.clear();
  EXPECT_EQ(
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error),
      nullptr);
  EXPECT_FALSE(error.empty());

  // Restore the manifest but corrupt the checkpoint payload: same refusal.
  WriteBytes(manifest_path, saved);
  std::string ckpt;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0) ckpt = entry.path().string();
  }
  ASSERT_FALSE(ckpt.empty());
  std::string bytes;
  {
    std::ifstream in(ckpt, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5A);
  WriteBytes(ckpt, bytes);
  error.clear();
  EXPECT_EQ(
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error),
      nullptr);
  EXPECT_FALSE(error.empty());
}

// ---- Fault injection ------------------------------------------------------

#if defined(TSUNAMI_FAULT_INJECTION)

class WalFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

// Satellite: wal.fsync_fail must fail the log CLOSED — the pending ack
// returns false, later appends are refused, and the log never revives
// in-process.
TEST_F(WalFaultTest, FsyncFailureFailsTheLogClosed) {
  const std::string dir = TestDir("fi_fsync");
  WalWriterOptions options;
  options.background = false;
  WalWriter wal(dir + "/wal-000001.log", options);
  ASSERT_TRUE(wal.ok());

  const uint64_t lsn = wal.Append(EncodeRowBatchRecord(0, {{1, 1}}));
  fault::FaultSpec spec;
  spec.max_fires = 1;
  fault::Arm("wal.fsync_fail", spec);
  EXPECT_FALSE(wal.CommitPending());
  EXPECT_EQ(fault::FireCount("wal.fsync_fail"), 1);

  EXPECT_TRUE(wal.failed());
  EXPECT_FALSE(wal.WaitDurable(lsn));  // Never acked.
  EXPECT_EQ(wal.durable_lsn(), 0u);
  EXPECT_EQ(wal.Append(EncodeRowBatchRecord(1, {{2, 2}})), 0u);  // Latched.
  EXPECT_EQ(wal.stats().fsync_failures, 1);
}

TEST_F(WalFaultTest, StoreFailsClosedOnFsyncFailureAndNeverLosesAckedRows) {
  DurableFixture fx(2000);
  const std::string dir = TestDir("fi_store_fsync");
  Dataset expect = fx.data;

  std::string error;
  std::unique_ptr<DurableIngestStore> durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;

  const std::vector<std::vector<Value>> acked = fx.RandomBatch(20);
  ASSERT_TRUE(durable->InsertBatch(acked));
  for (const std::vector<Value>& row : acked) expect.AppendRow(row);

  fault::FaultSpec spec;
  spec.max_fires = 1;
  fault::Arm("wal.fsync_fail", spec);
  // The write lands but the fsync "fails": the batch is applied in memory
  // yet must NOT be acked.
  const std::vector<std::vector<Value>> unacked = fx.RandomBatch(10);
  EXPECT_FALSE(durable->InsertBatch(unacked));
  // Latched: the store is write-disabled, nothing further applies or logs.
  EXPECT_FALSE(durable->InsertBatch(fx.RandomBatch(5)));
  const DurableIngestStore::Stats stats = durable->stats();
  EXPECT_EQ(stats.durable_acks, 1);
  EXPECT_EQ(stats.failed_acks, 1);
  EXPECT_GE(stats.rejected_batches, 1);
  durable.reset();
  fault::DisarmAll();

  // Recovery: every acked row present; the rejected batch is gone; nothing
  // applied twice. (The unacked batch's bytes DID hit the file before the
  // failed fsync, so replay legitimately resurrects it — durability
  // promises acked rows survive, not that unacked ones vanish.)
  durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->next_ordinal(), 30);
  for (const std::vector<Value>& row : unacked) expect.AppendRow(row);
  CheckAgainstReference(durable->store(), expect, fx.CheckQueries());
}

TEST_F(WalFaultTest, TornWriteLosesOnlyTheUnackedTail) {
  DurableFixture fx(2000);
  const std::string dir = TestDir("fi_torn");
  Dataset expect = fx.data;

  std::string error;
  std::unique_ptr<DurableIngestStore> durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;

  const std::vector<std::vector<Value>> acked = fx.RandomBatch(25);
  ASSERT_TRUE(durable->InsertBatch(acked));
  for (const std::vector<Value>& row : acked) expect.AppendRow(row);

  fault::FaultSpec spec;
  spec.max_fires = 1;
  fault::Arm("wal.torn_write", spec);  // Default: keep half the group bytes.
  EXPECT_FALSE(durable->InsertBatch(fx.RandomBatch(10)));
  EXPECT_EQ(durable->stats().wal.torn_writes, 1);
  EXPECT_FALSE(durable->Insert(fx.RandomRow()));  // Fail closed, latched.
  durable.reset();
  fault::DisarmAll();

  durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  // The torn record is dropped at the typed tail; every acked row survives.
  EXPECT_NE(durable->recovery().wal_tail_status, FileError::kNone);
  EXPECT_EQ(durable->next_ordinal(), 25);
  CheckAgainstReference(durable->store(), expect, fx.CheckQueries());
}

TEST_F(WalFaultTest, CheckpointThrowRetainsWalAndNextFoldRetries) {
  DurableFixture fx(2000);
  const std::string dir = TestDir("fi_ckpt");
  Dataset expect = fx.data;

  std::string error;
  std::unique_ptr<DurableIngestStore> durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;

  for (const std::vector<Value>& row : fx.RandomBatch(120)) {
    ASSERT_TRUE(durable->Insert(row));
    expect.AppendRow(row);
  }
  fault::FaultSpec spec;
  spec.max_fires = 1;
  fault::Arm("durability.checkpoint_throw", spec);
  EXPECT_FALSE(durable->CheckpointNow());  // No new manifest landed.
  EXPECT_EQ(fault::FireCount("durability.checkpoint_throw"), 1);
  EXPECT_EQ(durable->stats().checkpoint_failures, 1);
  EXPECT_EQ(durable->stats().checkpoints, 0);
  // The WAL retained every record; nothing was truncated on the failure.
  EXPECT_TRUE(std::filesystem::exists(durability::WalSegmentPath(dir, 1)));

  // The next fold (with fresh rows to fold) retries and succeeds.
  for (const std::vector<Value>& row : fx.RandomBatch(40)) {
    ASSERT_TRUE(durable->Insert(row));
    expect.AppendRow(row);
  }
  EXPECT_TRUE(durable->CheckpointNow());
  EXPECT_EQ(durable->stats().checkpoints, 1);
  durable.reset();

  durable =
      DurableIngestStore::Open(fx.data, fx.workload, fx.Options(dir), &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->next_ordinal(), 160);
  CheckAgainstReference(durable->store(), expect, fx.CheckQueries());
}

#endif  // TSUNAMI_FAULT_INJECTION

}  // namespace
}  // namespace tsunami
